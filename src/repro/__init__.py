"""eXACML+: flexible fine-grained access control over data streams.

A from-scratch Python reproduction of

    Wang, Dinh, Lim, Datta — "Cloud and the City: Facilitating Flexible
    Access Control over Data Streams" (2012, arXiv:1205.6349).

Subsystems
----------
``repro.streams``
    An Aurora-model DSMS: typed streams, filter/map/window-aggregation
    boxes, query graphs, a StreamSQL dialect, and an engine with
    stream-handle URIs (the StreamBase stand-in).
``repro.expr``
    Boolean condition toolkit: parsing, NOT-elimination, DNF, pairwise
    satisfiability — the machinery behind filters and NR/PR analysis.
``repro.xacml``
    An XACML subset: policies, targets, rules, combining algorithms,
    obligations, PDP, XML round-trip.
``repro.core``
    The paper's contribution: stream obligations, user queries, query-
    graph merging, NR/PR warnings, single-access enforcement, the
    reconstruction attack, PEP, and graph lifecycle management.
``repro.framework``
    The cloud deployment: data server, proxy with handle cache, client
    interface, direct-query baseline, simulated network and metrics.
``repro.workload``
    The Table 3 workload generator, Zipf sequences, experiment runner
    and report rendering.

Quickstart
----------
>>> from repro import XacmlPlusInstance, UserQuery, stream_policy
>>> from repro.streams import QueryGraph
>>> from repro.streams.schema import WEATHER_SCHEMA
>>> from repro.streams.operators import FilterOperator
>>> from repro.xacml import Request
>>> instance = XacmlPlusInstance()
>>> _ = instance.engine.register_input_stream("weather", WEATHER_SCHEMA)
>>> graph = QueryGraph("weather").append(FilterOperator("rainrate > 5"))
>>> _ = instance.load_policy(stream_policy("p1", "weather", graph, subject="LTA"))
>>> result = instance.request_stream(Request.simple("LTA", "weather"))
>>> result.handle.uri.startswith("stream://")
True
"""

from repro.errors import (
    AccessControlError,
    AccessDeniedError,
    ConcurrentAccessError,
    EmptyResultWarning,
    MergeError,
    PartialResultWarning,
    ReproError,
    StreamError,
    WindowRefinementError,
    XacmlError,
)
from repro.core import (
    AccessRegistry,
    MergeOptions,
    MergeResult,
    MultiWindowAttack,
    PepResult,
    PolicyEnforcementPoint,
    QueryGraphManager,
    UserQuery,
    XacmlPlusInstance,
    merge_query_graphs,
    check_query_against_policy,
    graph_to_obligations,
    obligations_to_graph,
    reconstruct_from_windows,
    stream_policy,
)
from repro.streams import QueryGraph, StreamEngine, StreamHandle
from repro.xacml import PolicyDecisionPoint, PolicyStore, Request

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "StreamError",
    "XacmlError",
    "AccessControlError",
    "AccessDeniedError",
    "ConcurrentAccessError",
    "EmptyResultWarning",
    "PartialResultWarning",
    "MergeError",
    "WindowRefinementError",
    # core
    "AccessRegistry",
    "MergeOptions",
    "MergeResult",
    "MultiWindowAttack",
    "PepResult",
    "PolicyEnforcementPoint",
    "QueryGraphManager",
    "UserQuery",
    "XacmlPlusInstance",
    "merge_query_graphs",
    "check_query_against_policy",
    "graph_to_obligations",
    "obligations_to_graph",
    "reconstruct_from_windows",
    "stream_policy",
    # substrates
    "QueryGraph",
    "StreamEngine",
    "StreamHandle",
    "PolicyDecisionPoint",
    "PolicyStore",
    "Request",
]
