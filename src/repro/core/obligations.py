"""The stream-obligation vocabulary and its query-graph translation.

Section 2.2 of the paper defines three obligation types (Table 1), one
per Aurora box, with fine-grained constraints carried in attribute
assignments:

========================  ==============================================
Operator                  Obligation id
========================  ==============================================
Filter                    ``exacml:obligation:stream-filter``
Map                       ``exacml:obligation:stream-map``
Window-Based Aggregation  ``exacml:obligation:stream-window``
========================  ==============================================

(The paper's Table 1 spells the ids ``stream-filtering`` /
``stream-mapping`` / ``stream-window-aggregation`` while its Figure 2
uses the short forms above; this module accepts both and emits the
Figure 2 forms, which are the ones shown inside an actual policy.)

:func:`obligations_to_graph` is the PEP-side decoder: it turns the
obligations returned by the PDP into the policy's Aurora query graph.
:func:`graph_to_obligations` is the policy-authoring-side encoder, and
:func:`stream_policy` builds a complete XACML policy for a stream
resource in one call.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from repro.errors import ObligationError
from repro.expr.ast import BooleanExpression
from repro.expr.parser import parse_condition
from repro.streams.graph import QueryGraph
from repro.streams.operators.filter import FilterOperator
from repro.streams.operators.map import MapOperator
from repro.streams.operators.window import (
    AggregateOperator,
    AggregationSpec,
    WindowSpec,
    WindowType,
)
from repro.xacml.attributes import AttributeValue
from repro.xacml.policy import Policy, Rule, Target
from repro.xacml.response import AttributeAssignment, Effect, Obligation

# -- Obligation ids (Figure 2 short forms, Table 1 long forms accepted) ------

FILTER_OBLIGATION = "exacml:obligation:stream-filter"
MAP_OBLIGATION = "exacml:obligation:stream-map"
WINDOW_OBLIGATION = "exacml:obligation:stream-window"

_FILTER_IDS = {FILTER_OBLIGATION, "exacml:obligation:stream-filtering"}
_MAP_IDS = {MAP_OBLIGATION, "exacml:obligation:stream-mapping"}
_WINDOW_IDS = {WINDOW_OBLIGATION, "exacml:obligation:stream-window-aggregation"}

# -- Attribute-assignment ids (both "exacml:" and "pCloud:" prefixes occur
#    in the paper; both are accepted, "exacml:" is emitted) ------------------

FILTER_CONDITION_ID = "exacml:obligation:stream-filter-condition-id"
MAP_ATTRIBUTE_ID = "exacml:obligation:stream-map-attribute-id"
WINDOW_TYPE_ID = "exacml:obligation:stream-window-type-id"
WINDOW_SIZE_ID = "exacml:obligation:stream-window-size-id"
WINDOW_STEP_ID = "exacml:obligation:stream-window-step-id"
WINDOW_ATTR_ID = "exacml:obligation:stream-window-attr-id"


def _suffix(attribute_id: str) -> str:
    """Normalise an assignment id to its suffix after the prefix."""
    for prefix in ("exacml:obligation:", "pCloud:obligation:", "pcloud:obligation:"):
        if attribute_id.startswith(prefix):
            return attribute_id[len(prefix):]
    return attribute_id


# ---------------------------------------------------------------------------
# Decoding: obligations → query graph
# ---------------------------------------------------------------------------

def obligations_to_graph(
    obligations: Iterable[Obligation],
    stream_name: str,
    name: Optional[str] = None,
) -> QueryGraph:
    """Build the policy's query graph from PDP obligations.

    Operators are installed in the canonical Aurora order of the paper's
    Figure 1: filter, then map, then window aggregation.  Obligations
    with unrelated ids are ignored (a policy may carry other obligations,
    e.g. audit requirements, that the stream PEP does not interpret).
    """
    filter_op: Optional[FilterOperator] = None
    map_op: Optional[MapOperator] = None
    aggregate_op: Optional[AggregateOperator] = None
    for obligation in obligations:
        if obligation.obligation_id in _FILTER_IDS:
            if filter_op is not None:
                raise ObligationError("duplicate stream-filter obligation")
            filter_op = _decode_filter(obligation)
        elif obligation.obligation_id in _MAP_IDS:
            if map_op is not None:
                raise ObligationError("duplicate stream-map obligation")
            map_op = _decode_map(obligation)
        elif obligation.obligation_id in _WINDOW_IDS:
            if aggregate_op is not None:
                raise ObligationError("duplicate stream-window obligation")
            aggregate_op = _decode_window(obligation)
    graph = QueryGraph(stream_name, name=name)
    for operator in (filter_op, map_op, aggregate_op):
        if operator is not None:
            graph.append(operator)
    return graph


def _decode_filter(obligation: Obligation) -> FilterOperator:
    conditions = [
        assignment.value.value
        for assignment in obligation.assignments
        if _suffix(assignment.attribute_id) == "stream-filter-condition-id"
    ]
    if len(conditions) != 1:
        raise ObligationError(
            f"stream-filter obligation needs exactly one condition, got "
            f"{len(conditions)}"
        )
    return FilterOperator(parse_condition(str(conditions[0])))


def _decode_map(obligation: Obligation) -> MapOperator:
    attributes = [
        str(assignment.value.value)
        for assignment in obligation.assignments
        if _suffix(assignment.attribute_id) == "stream-map-attribute-id"
    ]
    if not attributes:
        raise ObligationError("stream-map obligation has no attributes")
    return MapOperator(attributes)


def _decode_window(obligation: Obligation) -> AggregateOperator:
    window_type: Optional[WindowType] = None
    size: Optional[int] = None
    step: Optional[int] = None
    aggregations: List[AggregationSpec] = []
    for assignment in obligation.assignments:
        suffix = _suffix(assignment.attribute_id)
        value = assignment.value.value
        if suffix == "stream-window-type-id":
            window_type = WindowType.parse(str(value))
        elif suffix == "stream-window-size-id":
            size = _as_int(value, "window size")
        elif suffix == "stream-window-step-id":
            step = _as_int(value, "window advance step")
        elif suffix == "stream-window-attr-id":
            aggregations.append(AggregationSpec.parse(str(value)))
    if window_type is None or size is None or step is None:
        raise ObligationError(
            "stream-window obligation needs window type, size and step"
        )
    if not aggregations:
        raise ObligationError("stream-window obligation has no attribute:function pairs")
    return AggregateOperator(WindowSpec(window_type, size, step), aggregations)


def _as_int(value, what: str) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ObligationError(f"bad {what}: {value!r}") from None


# ---------------------------------------------------------------------------
# Encoding: query graph → obligations
# ---------------------------------------------------------------------------

def graph_to_obligations(graph: QueryGraph) -> List[Obligation]:
    """Encode a policy query graph as XACML obligations (Figure 2 layout)."""
    obligations: List[Obligation] = []
    filter_op = graph.filter_operator
    if filter_op is not None:
        obligations.append(
            Obligation(
                FILTER_OBLIGATION,
                Effect.PERMIT,
                [
                    AttributeAssignment(
                        FILTER_CONDITION_ID,
                        AttributeValue.string(
                            filter_op.condition.to_condition_string()
                        ),
                    )
                ],
            )
        )
    map_op = graph.map_operator
    if map_op is not None:
        obligations.append(
            Obligation(
                MAP_OBLIGATION,
                Effect.PERMIT,
                [
                    AttributeAssignment(MAP_ATTRIBUTE_ID, AttributeValue.string(a))
                    for a in map_op.attributes
                ],
            )
        )
    aggregate_op = graph.aggregate_operator
    if aggregate_op is not None:
        window = aggregate_op.window
        assignments = [
            AttributeAssignment(WINDOW_STEP_ID, AttributeValue.integer(window.step)),
            AttributeAssignment(WINDOW_SIZE_ID, AttributeValue.integer(window.size)),
            AttributeAssignment(
                WINDOW_TYPE_ID, AttributeValue.string(window.window_type.value)
            ),
        ]
        assignments.extend(
            AttributeAssignment(
                WINDOW_ATTR_ID, AttributeValue.string(spec.to_obligation_value())
            )
            for spec in aggregate_op.aggregations
        )
        obligations.append(Obligation(WINDOW_OBLIGATION, Effect.PERMIT, assignments))
    return obligations


def stream_policy(
    policy_id: str,
    stream_name: str,
    graph: QueryGraph,
    subject: Optional[str] = None,
    action: str = "read",
    description: str = "",
) -> Policy:
    """Build a complete Permit policy for *stream_name* from a query graph.

    The policy's target matches the stream resource (and optionally a
    subject); its single Permit rule carries no condition; the graph is
    encoded into the obligations block exactly as in the paper's Figure 2.
    """
    target = Target.for_ids(subject=subject, resource=stream_name, action=action)
    rule = Rule(f"{policy_id}:rule", Effect.PERMIT)
    return Policy(
        policy_id,
        target=target,
        rules=[rule],
        obligations=graph_to_obligations(graph),
        description=description,
    )
