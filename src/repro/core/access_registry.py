"""The single-access constraint (Section 3.4).

"Only a single access is permitted on a particular data stream for one
user at any time" — otherwise a user holding several aggregation windows
with different sizes over the same stream can difference the aggregate
streams and reconstruct the raw data (see :mod:`repro.core.attack`).

The registry tracks live (subject, stream) → handle bindings.  The PEP
consults it in step 3 of its workflow; the query-graph manager releases
bindings when graphs are withdrawn.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ConcurrentAccessError
from repro.streams.handles import StreamHandle


class AccessRegistry:
    """Tracks which subject currently holds a query on which stream."""

    def __init__(self, enforce: bool = True):
        #: Enforcement switch — disabling it reproduces the vulnerable
        #: configuration the Section 3.4 attack exploits.  Only examples
        #: and tests should ever turn this off.
        self.enforce = enforce
        self._active: Dict[Tuple[str, str], StreamHandle] = {}

    @staticmethod
    def _key(subject: str, stream: str) -> Tuple[str, str]:
        return (subject, stream.lower())

    def acquire(self, subject: str, stream: str, handle: StreamHandle) -> None:
        """Bind (subject, stream) to *handle*.

        Raises :class:`ConcurrentAccessError` when the subject already
        holds a live query on the stream and enforcement is on.
        """
        key = self._key(subject, stream)
        if self.enforce and key in self._active:
            raise ConcurrentAccessError(subject, stream)
        self._active[key] = handle

    def check(self, subject: str, stream: str) -> None:
        """Step-3 check only (no binding)."""
        if self.enforce and self._key(subject, stream) in self._active:
            raise ConcurrentAccessError(subject, stream)

    def release(self, subject: str, stream: str) -> Optional[StreamHandle]:
        """Release the binding; returns the handle that was bound, if any."""
        return self._active.pop(self._key(subject, stream), None)

    def release_handle(self, handle: StreamHandle) -> List[Tuple[str, str]]:
        """Release every binding pointing at *handle* (revocation path)."""
        keys = [key for key, bound in self._active.items() if bound == handle]
        for key in keys:
            del self._active[key]
        return keys

    def holder(self, subject: str, stream: str) -> Optional[StreamHandle]:
        return self._active.get(self._key(subject, stream))

    def active_count(self) -> int:
        return len(self._active)

    def __repr__(self) -> str:
        return f"AccessRegistry(active={len(self._active)}, enforce={self.enforce})"
