"""Merging policy and user query graphs (Section 3.1).

"One could simply concatenate the two graphs, but properly merging them
together gains advantages such as reducing the number of operators in
query graph and therefore improving efficiency."

Merge rules (per operator type):

- **Filter** — conditions are conjoined, ``C3 = (C1) AND (C2)``, then
  simplified (``x > 5 AND x > 8`` → ``x > 8``).
- **Map** — the paper's text says union, its NR/PR rule and worked
  StreamSQL imply intersection.  The default here is the *safe*
  intersection semantics (union would widen the projection beyond what
  the policy permits); the literal union semantics is available via
  ``MergeOptions(map_semantics="union")`` for verbatim reproduction.
  Attributes needed by the merged aggregation are retained in the map
  (that is how the paper's Figure 4(b) keeps ``samplingtime``).
- **Window aggregation** — merged only when the window types match and
  the policy's size and step are ≤ the user's (the user must not see
  finer granularity than permitted; violating refinements raise
  :class:`WindowRefinementError`).  The merged operator takes the user's
  window geometry and the *intersection* of the (attribute, function)
  sets, plus — matching Figure 4(b) — the policy's timestamp carrier
  aggregation when the user query omitted it.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence

from repro.errors import MergeError, WindowRefinementError
from repro.expr.simplify import simplify_merged_condition
from repro.streams.graph import QueryGraph
from repro.streams.operators.filter import FilterOperator
from repro.streams.operators.map import MapOperator
from repro.streams.operators.window import AggregateOperator, AggregationSpec
from repro.streams.schema import DataType, Schema
from repro.core.warnings_check import WarningReport, check_query_against_policy


class MergeOptions(NamedTuple):
    """Switches controlling merge semantics.

    ``map_semantics``
        ``"intersection"`` (safe default) or ``"union"`` (the literal
        Section 3.1 text; leaks policy-withheld attributes — provided for
        verbatim-paper reproduction and the ablation benchmark).
    ``keep_policy_time_attribute``
        Keep the policy's aggregation on the stream's timestamp attribute
        when the user query omits it, as the paper's Figure 4(b) does.
    ``simplify_filters``
        Apply pairwise-subsumption simplification to the merged filter
        condition.
    """

    map_semantics: str = "intersection"
    keep_policy_time_attribute: bool = True
    simplify_filters: bool = True


class MergeResult(NamedTuple):
    """The merged graph plus the NR/PR findings discovered on the way."""

    graph: QueryGraph
    warnings: List[WarningReport]

    @property
    def has_nr(self) -> bool:
        return any(w.is_nr for w in self.warnings)

    @property
    def has_pr(self) -> bool:
        return any(w.is_pr for w in self.warnings)


def merge_query_graphs(
    policy_graph: QueryGraph,
    user_graph: QueryGraph,
    schema: Optional[Schema] = None,
    options: MergeOptions = MergeOptions(),
) -> MergeResult:
    """Merge *user_graph* into *policy_graph* under the Section 3.1 rules.

    *schema* (the source stream's schema) enables the timestamp-carrier
    behaviour and final validation; pass None to skip both.  NR/PR
    analysis runs on the original graphs (Section 3.2, step 4) and its
    findings are returned — deciding whether warnings block registration
    is the PEP's job, not the merger's.
    """
    if policy_graph.source.lower() != user_graph.source.lower():
        raise MergeError(
            f"cannot merge graphs over different streams: policy reads "
            f"{policy_graph.source!r}, user reads {user_graph.source!r}"
        )
    warnings = check_query_against_policy(policy_graph, user_graph)

    merged_filter = _merge_filters(
        policy_graph.filter_operator, user_graph.filter_operator, options
    )
    merged_aggregate = _merge_aggregates(
        policy_graph.aggregate_operator,
        user_graph.aggregate_operator,
        schema,
        options,
    )
    merged_map = _merge_maps(
        policy_graph.map_operator,
        user_graph.map_operator,
        merged_aggregate,
        options,
    )

    merged = QueryGraph(
        policy_graph.source, name=f"{policy_graph.name}+{user_graph.name}"
    )
    if merged_filter is not None:
        merged.append(merged_filter)
    if merged_map is not None:
        merged.append(merged_map)
    if merged_aggregate is not None:
        merged.append(merged_aggregate)
    if schema is not None and not merged.is_passthrough:
        merged.validate(schema)
    return MergeResult(merged, warnings)


def _merge_filters(
    policy_filter: Optional[FilterOperator],
    user_filter: Optional[FilterOperator],
    options: MergeOptions,
) -> Optional[FilterOperator]:
    if policy_filter is None and user_filter is None:
        return None
    if policy_filter is None:
        return user_filter.fresh_copy()
    if user_filter is None:
        return policy_filter.fresh_copy()
    if options.simplify_filters:
        condition = simplify_merged_condition(
            policy_filter.condition, user_filter.condition
        )
    else:
        from repro.expr.simplify import conjoin

        condition = conjoin(policy_filter.condition, user_filter.condition)
    return FilterOperator(condition)


def _merge_aggregates(
    policy_aggregate: Optional[AggregateOperator],
    user_aggregate: Optional[AggregateOperator],
    schema: Optional[Schema],
    options: MergeOptions,
) -> Optional[AggregateOperator]:
    if policy_aggregate is None and user_aggregate is None:
        return None
    if policy_aggregate is None:
        return user_aggregate.fresh_copy()
    if user_aggregate is None:
        return policy_aggregate.fresh_copy()
    if not user_aggregate.window.refines(policy_aggregate.window):
        raise WindowRefinementError(
            f"user window {user_aggregate.window!r} is finer-grained than "
            f"policy window {policy_aggregate.window!r} permits "
            f"(types must match; policy size/step must be <= user's)"
        )
    policy_keys = {spec.key: spec for spec in policy_aggregate.aggregations}
    intersection: List[AggregationSpec] = [
        spec for spec in user_aggregate.aggregations if spec.key in policy_keys
    ]
    if options.keep_policy_time_attribute and schema is not None:
        carrier = _policy_time_carrier(policy_aggregate, schema)
        if carrier is not None and all(
            spec.attribute != carrier.attribute for spec in intersection
        ):
            intersection.insert(0, carrier)
    if not intersection:
        raise MergeError(
            "merged aggregation is empty: no (attribute, function) pair is "
            "shared by policy and user query"
        )
    return AggregateOperator(
        user_aggregate.window, intersection, user_aggregate.time_attribute
    )


def _policy_time_carrier(
    policy_aggregate: AggregateOperator, schema: Schema
) -> Optional[AggregationSpec]:
    """The policy's aggregation over the stream's timestamp attribute."""
    for spec in policy_aggregate.aggregations:
        if spec.attribute in schema:
            if schema.field(spec.attribute).dtype is DataType.TIMESTAMP:
                return spec
    return None


def _merge_maps(
    policy_map: Optional[MapOperator],
    user_map: Optional[MapOperator],
    merged_aggregate: Optional[AggregateOperator],
    options: MergeOptions,
) -> Optional[MapOperator]:
    if policy_map is None and user_map is None:
        return None
    if policy_map is None:
        merged_set = set(user_map.attribute_set())
        ordered: Sequence[str] = user_map.attributes
    elif user_map is None:
        merged_set = set(policy_map.attribute_set())
        ordered = policy_map.attributes
    elif options.map_semantics == "union":
        merged_set = set(policy_map.attribute_set()) | set(user_map.attribute_set())
        ordered = list(policy_map.attributes) + [
            a for a in user_map.attributes if a.lower() not in policy_map.attribute_set()
        ]
    elif options.map_semantics == "intersection":
        merged_set = set(policy_map.attribute_set()) & set(user_map.attribute_set())
        ordered = [a for a in policy_map.attributes if a.lower() in merged_set]
    else:
        raise MergeError(f"unknown map_semantics {options.map_semantics!r}")

    # Retain attributes the merged aggregation needs (Figure 4(b) keeps
    # samplingtime in the map because lastval(samplingtime) survives).
    if merged_aggregate is not None:
        needed = [spec.attribute for spec in merged_aggregate.aggregations]
        extra = [a for a in needed if a not in merged_set]
        if extra:
            if policy_map is not None:
                leaked = [a for a in extra if a not in policy_map.attribute_set()]
                if leaked:
                    raise MergeError(
                        f"merged aggregation needs attributes outside the "
                        f"policy projection: {leaked}"
                    )
            ordered = list(ordered) + extra
            merged_set.update(extra)
    if not merged_set:
        raise MergeError(
            "merged projection is empty: the policy and user attribute sets "
            "do not overlap"
        )
    return MapOperator(ordered)
