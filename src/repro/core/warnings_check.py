"""NR/PR detection: empty and partial result-set warnings (Section 3.5).

When the PEP merges the policy's query graph with the user's customised
query, conflicts between the two can silently shrink the user's result:

- **PR (Partial Result)** — "some tuples in the requested stream may not
  be returned to the user due to conflict between the user query and some
  policies enforced on the streams";
- **NR (Empty Result)** — "none of the tuples in the request stream will
  be returned ... This must be differed from the case where the user does
  not have access to the stream."

Detection is per-operator, exactly as the paper describes:

*Map*: NR when the attribute sets are disjoint; PR when they differ.

*Aggregation*: six ordered rules (window size, advance step, type,
function conflicts, matching pairs, everything else).

*Filter*: ``P = C_policy AND C_user`` → NOT elimination (Table 2) →
postfix → DNF → pairwise ``checkTwoSimpleExpression`` inside every
conjunction; aggregate per Step 3.  Cost is ``O(k·n²)`` for ``k``
conjunctions of at most ``n`` literals.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple

from repro.expr.ast import BooleanExpression, SimpleExpression, TrueExpression
from repro.expr.normalize import to_dnf
from repro.expr.satisfiability import (
    PairVerdict,
    conjunction_verdict,
    dnf_verdict,
)
from repro.streams.graph import QueryGraph
from repro.streams.operators.filter import FilterOperator
from repro.streams.operators.map import MapOperator
from repro.streams.operators.window import AggregateOperator


class WarningReport(NamedTuple):
    """One NR/PR finding: which operator pair produced which verdict."""

    operator: str          # "filter" | "map" | "aggregate"
    verdict: PairVerdict
    detail: str

    @property
    def is_nr(self) -> bool:
        return self.verdict is PairVerdict.NR

    @property
    def is_pr(self) -> bool:
        return self.verdict is PairVerdict.PR


# ---------------------------------------------------------------------------
# Map operator (Section 3.5, "Map Operator")
# ---------------------------------------------------------------------------

def check_map_merge(
    policy_map: Optional[MapOperator], user_map: Optional[MapOperator]
) -> Optional[WarningReport]:
    """NR when S1 ∩ S2 = ∅; PR when S1 ≠ S2; nothing otherwise.

    A missing operator on either side means that side projects nothing
    away, so only the both-present case can conflict.  When only the
    policy projects, the user implicitly asked for the full schema and a
    PR warning is appropriate — the user query's expectations include
    attributes the policy withholds.
    """
    if user_map is None and policy_map is None:
        return None
    if user_map is None:
        return WarningReport(
            "map",
            PairVerdict.PR,
            f"policy restricts attributes to {sorted(policy_map.attribute_set())}; "
            f"the full schema will not be returned",
        )
    if policy_map is None:
        return None  # the user narrows the stream voluntarily
    policy_set = policy_map.attribute_set()
    user_set = user_map.attribute_set()
    if not (policy_set & user_set):
        return WarningReport(
            "map",
            PairVerdict.NR,
            f"no overlap between policy attributes {sorted(policy_set)} and "
            f"user attributes {sorted(user_set)}",
        )
    if policy_set != user_set:
        missing = sorted(user_set - policy_set)
        detail = (
            f"user attributes {missing} are withheld by policy"
            if missing
            else f"policy exposes only {sorted(policy_set & user_set)}"
        )
        return WarningReport("map", PairVerdict.PR, detail)
    return None


# ---------------------------------------------------------------------------
# Aggregate operator (Section 3.5, "Aggregate Operator", rules 1–6)
# ---------------------------------------------------------------------------

def check_aggregate_merge(
    policy_aggregate: Optional[AggregateOperator],
    user_aggregate: Optional[AggregateOperator],
) -> Optional[WarningReport]:
    """Apply the paper's six aggregation rules in order."""
    if policy_aggregate is None or user_aggregate is None:
        if policy_aggregate is not None and user_aggregate is None:
            # The user asked for raw tuples but will receive aggregates.
            return WarningReport(
                "aggregate",
                PairVerdict.PR,
                "policy aggregates the stream; raw tuples will not be returned",
            )
        return None
    a1, a2 = policy_aggregate, user_aggregate
    # Rule 1: policy window larger than requested → windows can never fit.
    if a1.window.size > a2.window.size:
        return WarningReport(
            "aggregate",
            PairVerdict.NR,
            f"policy window size {a1.window.size} exceeds user window size "
            f"{a2.window.size}",
        )
    # Rule 2: policy advances faster than the user's step allows.
    if a1.window.step > a2.window.step:
        return WarningReport(
            "aggregate",
            PairVerdict.NR,
            f"policy advance step {a1.window.step} exceeds user step {a2.window.step}",
        )
    # Rule 3: incompatible window types.
    if a1.window.window_type is not a2.window.window_type:
        return WarningReport(
            "aggregate",
            PairVerdict.NR,
            f"window types differ: policy {a1.window.window_type.value}, "
            f"user {a2.window.window_type.value}",
        )
    # Rule 4: same attribute aggregated with different functions → that
    # request can never be satisfied.
    policy_by_attr = {}
    for spec in a1.aggregations:
        policy_by_attr.setdefault(spec.attribute, set()).add(spec.function.name)
    conflicts = []
    matches = 0
    extras = []
    for spec in a2.aggregations:
        allowed = policy_by_attr.get(spec.attribute)
        if allowed is None:
            extras.append(spec.to_call_syntax())
        elif spec.function.name in allowed:
            matches += 1  # Rule 5: exact (attribute, function) match
        else:
            conflicts.append(spec.to_call_syntax())
    if conflicts and matches == 0 and not extras:
        return WarningReport(
            "aggregate",
            PairVerdict.NR,
            f"every requested aggregation conflicts with policy functions: "
            f"{conflicts}",
        )
    if conflicts or extras:
        # Rule 6: anything not covered by rule 5.
        details = []
        if conflicts:
            details.append(f"function conflicts: {conflicts}")
        if extras:
            details.append(f"attributes not aggregatable under policy: {extras}")
        return WarningReport("aggregate", PairVerdict.PR, "; ".join(details))
    return None


# ---------------------------------------------------------------------------
# Filter operator (Section 3.5, Steps 1–3)
# ---------------------------------------------------------------------------

def check_filter_merge(
    policy_filter: Optional[FilterOperator],
    user_filter: Optional[FilterOperator],
) -> Optional[WarningReport]:
    """The three-step filter procedure of Section 3.5.

    Literals are tagged with their origin so a PR verdict can only arise
    from policy-vs-user constraint pairs, while any contradictory pair —
    including two literals from the same condition — still yields NR for
    its conjunction.
    """
    policy_condition = policy_filter.condition if policy_filter else TrueExpression()
    user_condition = user_filter.condition if user_filter else TrueExpression()
    verdict, conjunction_count = _filter_verdict(policy_condition, user_condition)
    if verdict is PairVerdict.NR:
        return WarningReport(
            "filter",
            PairVerdict.NR,
            f"policy condition "
            f"{policy_condition.to_condition_string()!r} contradicts user "
            f"condition {user_condition.to_condition_string()!r} in every "
            f"of the {conjunction_count} DNF conjunction(s)",
        )
    if verdict is PairVerdict.PR:
        return WarningReport(
            "filter",
            PairVerdict.PR,
            f"policy condition {policy_condition.to_condition_string()!r} "
            f"may withhold tuples matching user condition "
            f"{user_condition.to_condition_string()!r}",
        )
    return None


def _filter_verdict(
    policy_condition: BooleanExpression, user_condition: BooleanExpression
) -> Tuple[PairVerdict, int]:
    """Steps 1–3 on origin-tagged DNF conjunctions."""
    policy_dnf = to_dnf(policy_condition)
    user_dnf = to_dnf(user_condition)
    # Distribute (policy ∨ ...) AND (user ∨ ...) while tracking origins.
    tagged_conjunctions: List[List[Tuple[SimpleExpression, str]]] = []
    for policy_conjunction in policy_dnf:
        for user_conjunction in user_dnf:
            tagged: List[Tuple[SimpleExpression, str]] = [
                (literal, "policy") for literal in policy_conjunction
            ]
            tagged.extend((literal, "user") for literal in user_conjunction)
            tagged_conjunctions.append(tagged)
    verdicts = [conjunction_verdict(tagged) for tagged in tagged_conjunctions]
    return dnf_verdict(verdicts), len(tagged_conjunctions)


# ---------------------------------------------------------------------------
# Whole-graph check
# ---------------------------------------------------------------------------

def check_query_against_policy(
    policy_graph: QueryGraph, user_graph: QueryGraph
) -> List[WarningReport]:
    """Run all three per-operator checks; return every finding.

    An empty list means the merged query will faithfully produce what the
    user asked for (no NR, no PR).
    """
    reports: List[WarningReport] = []
    map_report = check_map_merge(policy_graph.map_operator, user_graph.map_operator)
    if map_report is not None:
        reports.append(map_report)
    aggregate_report = check_aggregate_merge(
        policy_graph.aggregate_operator, user_graph.aggregate_operator
    )
    if aggregate_report is not None:
        reports.append(aggregate_report)
    filter_report = check_filter_merge(
        policy_graph.filter_operator, user_graph.filter_operator
    )
    if filter_report is not None:
        reports.append(filter_report)
    return reports
