"""The Policy Enforcement Point (Section 3.2 workflow).

The PEP work-flow, verbatim from the paper:

1. receive a user's request for a stream together with a customised
   query; forward the request to the PDP and convert the query into an
   Aurora query graph;
2. the PDP evaluates the request; on Permit, generate a query graph from
   the returned obligations;
3. check that the credentials hold no other live query on the same
   stream (Section 3.4's single-access constraint);
4. merge the obligation graph with the user-query graph, checking for
   PR/NR on the way;
5. if no PR or NR warning was detected, convert the merged graph into a
   StreamSQL script, send it to the stream engine, and return a handle
   (URI) to the user.

:class:`PepResult` carries the handle plus per-stage timings so the
framework's metrics layer can reproduce the paper's Figure 7 breakdown
(PDP / QueryGraph / StreamBase).
"""

from __future__ import annotations

import time
from typing import List, NamedTuple, Optional

from repro.errors import (
    AccessDeniedError,
    EmptyResultWarning,
    MergeError,
    PartialResultWarning,
)
from repro.core.access_registry import AccessRegistry
from repro.core.graph_manager import QueryGraphManager
from repro.core.merge import MergeOptions, merge_query_graphs
from repro.core.obligations import obligations_to_graph
from repro.core.user_query import UserQuery
from repro.core.warnings_check import WarningReport
from repro.streams.engine import StreamEngine
from repro.streams.graph import QueryGraph
from repro.streams.handles import StreamHandle
from repro.streams.streamsql.generator import generate_streamsql
from repro.xacml.pdp import PolicyDecisionPoint
from repro.xacml.request import Request
from repro.xacml.response import Decision, Response


class PepTimings(NamedTuple):
    """Wall-clock seconds spent in each stage of one request.

    ``pdp``          — PDP evaluation (Figure 7's "PDP" series);
    ``query_graph``  — graph construction, single-access check, merge and
                       NR/PR analysis (Figure 7's "QueryGraph" series);
    ``dsms_submit``  — StreamSQL generation and engine registration
                       (Figure 7's "StreamBase" series).
    """

    pdp: float
    query_graph: float
    dsms_submit: float

    @property
    def total(self) -> float:
        return self.pdp + self.query_graph + self.dsms_submit


class PepResult(NamedTuple):
    """Outcome of one authorized request."""

    handle: StreamHandle
    streamsql: str
    merged_graph: QueryGraph
    response: Response
    warnings: List[WarningReport]
    timings: PepTimings


class PolicyEnforcementPoint:
    """Marshals requests, PDP results and the stream engine."""

    def __init__(
        self,
        pdp: PolicyDecisionPoint,
        engine: StreamEngine,
        access_registry: Optional[AccessRegistry] = None,
        graph_manager: Optional[QueryGraphManager] = None,
        merge_options: MergeOptions = MergeOptions(),
        allow_partial_results: bool = False,
        clock=time.perf_counter,
    ):
        self.pdp = pdp
        self.engine = engine
        self.access_registry = access_registry if access_registry is not None else AccessRegistry()
        self.graph_manager = graph_manager
        self.merge_options = merge_options
        #: When True, PR findings are reported in the result instead of
        #: aborting the request.  The paper's step 5 submits the graph
        #: only "if there is no PR or NR warning detected", which is the
        #: default behaviour.
        self.allow_partial_results = allow_partial_results
        self._clock = clock

    def handle_request(
        self,
        request: Request,
        user_query: Optional[UserQuery] = None,
        pdp_response: Optional[Response] = None,
    ) -> PepResult:
        """Run the five-step workflow for one request.

        Raises :class:`AccessDeniedError`, :class:`ConcurrentAccessError`,
        :class:`EmptyResultWarning` or :class:`PartialResultWarning` on
        the corresponding failures; on success returns a
        :class:`PepResult` with the stream handle.

        *pdp_response* short-circuits step 2 with a decision already
        computed elsewhere (a shard worker pool, an async front-end's
        executor) — the enforcement workflow is otherwise identical, and
        the skipped evaluation charges zero PDP time.
        """
        subject = request.require_subject()
        stream_name = request.resource_id
        if stream_name is None:
            raise AccessDeniedError(
                Decision.NOT_APPLICABLE, "request names no resource stream"
            )

        # Step 1/2: PDP evaluation (unless a precomputed decision rides in).
        started = self._clock()
        response = pdp_response if pdp_response is not None else self.pdp.evaluate(request)
        pdp_elapsed = self._clock() - started
        if response.decision is not Decision.PERMIT:
            raise AccessDeniedError(response.decision)

        # Step 2 (cont.): obligations → policy graph; step 1 (cont.):
        # user query → graph; step 3: single-access check; step 4: merge.
        started = self._clock()
        policy_graph = obligations_to_graph(
            response.obligations, stream_name, name=f"policy:{response.policy_id}"
        )
        if user_query is not None and user_query.stream.lower() != stream_name.lower():
            raise AccessDeniedError(
                Decision.NOT_APPLICABLE,
                f"user query targets stream {user_query.stream!r} but the "
                f"request names {stream_name!r}",
            )
        has_user_query = user_query is not None and not user_query.is_empty
        user_graph = (
            user_query.to_query_graph(name=f"user:{subject}")
            if has_user_query
            else QueryGraph(stream_name, name=f"user:{subject}:empty")
        )
        self.access_registry.check(subject, stream_name)
        schema = self.engine.catalog.schema(stream_name)
        try:
            merge_result = merge_query_graphs(
                policy_graph, user_graph, schema=schema, options=self.merge_options
            )
        except MergeError as error:
            # Impossible merges (finer-than-policy windows, disjoint
            # projections, empty aggregation intersections) mean no tuple
            # can ever be returned — the NR case of Section 3.5.
            raise EmptyResultWarning(str(error)) from error
        if not has_user_query:
            # NR/PR describe conflicts between the *user's expectations*
            # and policy (Section 3.5); a bare request has no expectations
            # beyond "whatever the policy allows", so findings are moot.
            merge_result = merge_result._replace(warnings=[])
        if merge_result.has_nr:
            raise EmptyResultWarning(
                "user query conflicts with policy: no tuples can ever be "
                "returned (NR)",
                conflicts=merge_result.warnings,
            )
        if merge_result.has_pr and not self.allow_partial_results:
            raise PartialResultWarning(
                "user query partially conflicts with policy: some expected "
                "tuples will be withheld (PR)",
                conflicts=merge_result.warnings,
            )
        graph_elapsed = self._clock() - started

        # Step 5: StreamSQL generation, submission, handle return.
        started = self._clock()
        script = generate_streamsql(merge_result.graph)
        handle = self.engine.register_query(merge_result.graph)
        self.access_registry.acquire(subject, stream_name, handle)
        if self.graph_manager is not None:
            self.graph_manager.record(
                handle, response.policy_id, subject, stream_name, merge_result.graph
            )
        submit_elapsed = self._clock() - started

        return PepResult(
            handle=handle,
            streamsql=script,
            merged_graph=merge_result.graph,
            response=response,
            warnings=merge_result.warnings,
            timings=PepTimings(pdp_elapsed, graph_elapsed, submit_elapsed),
        )

    def release(self, handle: StreamHandle) -> None:
        """User-initiated release of a stream handle."""
        if self.graph_manager is not None:
            self.graph_manager.withdraw(handle)
        else:
            self.engine.withdraw(handle)
            self.access_registry.release_handle(handle)
