"""Query-graph lifecycle management (Section 3.3).

With bounded data, access ends when the query result is returned; with
streams the user holds a *handle* to a standing query, so "if the data
stream owner for some reason has removed or modified the policy ... the
user may still [be] connected to the data stream though he is not
supposed to be able to access [it] any longer".

The manager keeps the policy-id → spawned-query-graphs index and, "whenever
a policy has been removed or modified by user, all query graphs that are
spawned by the policy are immediately withdrawn from back-end data stream
engines".  It subscribes to :class:`~repro.xacml.store.PolicyStore`
change events so revocation is automatic.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from repro.core.access_registry import AccessRegistry
from repro.streams.engine import StreamEngine
from repro.streams.graph import QueryGraph
from repro.streams.handles import StreamHandle
from repro.xacml.policy import Policy
from repro.xacml.store import PolicyStore


class SpawnedGraph(NamedTuple):
    """Book-keeping record for one registered query graph."""

    handle: StreamHandle
    policy_id: str
    subject: str
    stream: str
    graph: QueryGraph


class QueryGraphManager:
    """Tracks spawned graphs and revokes them on policy change."""

    def __init__(
        self,
        engine: StreamEngine,
        store: PolicyStore,
        access_registry: Optional[AccessRegistry] = None,
    ):
        self._engine = engine
        self._registry = access_registry
        self._by_policy: Dict[str, List[SpawnedGraph]] = {}
        self._by_handle: Dict[str, SpawnedGraph] = {}
        #: Total graphs withdrawn due to policy changes (for monitoring).
        self.revocations = 0
        store.add_listener(self._on_policy_event)

    # -- registration -----------------------------------------------------------

    def record(
        self,
        handle: StreamHandle,
        policy_id: str,
        subject: str,
        stream: str,
        graph: QueryGraph,
    ) -> SpawnedGraph:
        spawned = SpawnedGraph(handle, policy_id, subject, stream, graph)
        self._by_policy.setdefault(policy_id, []).append(spawned)
        self._by_handle[handle.uri] = spawned
        return spawned

    def spawned_by(self, policy_id: str) -> List[SpawnedGraph]:
        return list(self._by_policy.get(policy_id, []))

    def for_handle(self, handle: StreamHandle) -> Optional[SpawnedGraph]:
        return self._by_handle.get(handle.uri)

    def active_count(self) -> int:
        return len(self._by_handle)

    # -- withdrawal ---------------------------------------------------------------

    def withdraw(self, handle: StreamHandle) -> None:
        """Withdraw one query (user-initiated release)."""
        spawned = self._by_handle.pop(handle.uri, None)
        if spawned is None:
            return
        self._by_policy.get(spawned.policy_id, []).remove(spawned)
        self._engine.withdraw(handle)
        if self._registry is not None:
            self._registry.release(spawned.subject, spawned.stream)

    def _on_policy_event(self, event: str, policy: Policy) -> None:
        if event not in ("removed", "updated"):
            return
        for spawned in self._by_policy.pop(policy.policy_id, []):
            del self._by_handle[spawned.handle.uri]
            self._engine.withdraw(spawned.handle)
            if self._registry is not None:
                self._registry.release(spawned.subject, spawned.stream)
            self.revocations += 1
