"""Customised user queries (the paper's Figure 4(a) XML format).

"The user sends a customised query to the PEP.  The query acts as a
request to apply additional operation on the authorized stream.  We
implement the query in XML form." (Section 3.1)

Format::

    <UserQuery>
      <Stream name="weather" />
      <Filter><FilterCondition> RainRate > 50 </FilterCondition></Filter>
      <Map><Attribute>RainRate</Attribute></Map>
      <Aggregation>
        <WindowType>tuple</WindowType>
        <WindowSize>10</WindowSize>
        <WindowStep>2</WindowStep>
        <Attribute>avg(RainRate)</Attribute>
      </Aggregation>
    </UserQuery>

All three operator sections are optional; an empty ``<UserQuery>`` (or a
``None`` user query at the PEP) means "give me the stream exactly as the
policy allows".
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List, Optional, Sequence, Union

from repro.errors import PolicyParseError
from repro.expr.ast import BooleanExpression
from repro.expr.parser import parse_condition
from repro.streams.graph import QueryGraph
from repro.streams.operators.filter import FilterOperator
from repro.streams.operators.map import MapOperator
from repro.streams.operators.window import (
    AggregateOperator,
    AggregationSpec,
    WindowSpec,
    WindowType,
)


class UserQuery:
    """A parsed customised query: stream + optional filter/map/aggregation."""

    def __init__(
        self,
        stream: str,
        filter_condition: Optional[Union[str, BooleanExpression]] = None,
        map_attributes: Sequence[str] = (),
        window: Optional[WindowSpec] = None,
        aggregations: Sequence[Union[str, AggregationSpec]] = (),
    ):
        if not stream:
            raise PolicyParseError("user query needs a stream name")
        if (window is None) != (not aggregations):
            raise PolicyParseError(
                "user query aggregation needs both a window and attribute functions"
            )
        self.stream = stream
        if isinstance(filter_condition, str):
            filter_condition = parse_condition(filter_condition)
        self.filter_condition = filter_condition
        self.map_attributes = tuple(map_attributes)
        self.window = window
        self.aggregations = tuple(
            spec if isinstance(spec, AggregationSpec) else AggregationSpec.parse(spec)
            for spec in aggregations
        )

    # -- conversion -----------------------------------------------------------

    def to_query_graph(self, name: Optional[str] = None) -> QueryGraph:
        """Lower to an Aurora query graph (Section 3.2, step 1)."""
        graph = QueryGraph(self.stream, name=name)
        if self.filter_condition is not None:
            graph.append(FilterOperator(self.filter_condition))
        if self.map_attributes:
            graph.append(MapOperator(self.map_attributes))
        if self.window is not None:
            graph.append(AggregateOperator(self.window, self.aggregations))
        return graph

    @property
    def is_empty(self) -> bool:
        return (
            self.filter_condition is None
            and not self.map_attributes
            and self.window is None
        )

    # -- XML ------------------------------------------------------------------

    def to_xml(self) -> str:
        root = ET.Element("UserQuery")
        ET.SubElement(root, "Stream", name=self.stream)
        if self.filter_condition is not None:
            filter_element = ET.SubElement(root, "Filter")
            condition = ET.SubElement(filter_element, "FilterCondition")
            condition.text = self.filter_condition.to_condition_string()
        if self.map_attributes:
            map_element = ET.SubElement(root, "Map")
            for attribute in self.map_attributes:
                ET.SubElement(map_element, "Attribute").text = attribute
        if self.window is not None:
            aggregation = ET.SubElement(root, "Aggregation")
            ET.SubElement(aggregation, "WindowType").text = self.window.window_type.value
            ET.SubElement(aggregation, "WindowSize").text = str(self.window.size)
            ET.SubElement(aggregation, "WindowStep").text = str(self.window.step)
            for spec in self.aggregations:
                ET.SubElement(aggregation, "Attribute").text = spec.to_call_syntax()
        ET.indent(root)
        return ET.tostring(root, encoding="unicode") + "\n"

    @classmethod
    def from_xml(cls, text: str) -> "UserQuery":
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise PolicyParseError(f"malformed user query XML: {exc}") from exc
        if root.tag != "UserQuery":
            raise PolicyParseError(f"expected <UserQuery> root, found <{root.tag}>")
        stream_element = root.find("Stream")
        if stream_element is None or not stream_element.get("name"):
            raise PolicyParseError("user query is missing <Stream name=.../>")
        stream = stream_element.get("name")

        filter_condition: Optional[BooleanExpression] = None
        filter_element = root.find("Filter")
        if filter_element is not None:
            condition_element = filter_element.find("FilterCondition")
            if condition_element is None or not (condition_element.text or "").strip():
                raise PolicyParseError("<Filter> needs a <FilterCondition>")
            filter_condition = parse_condition(condition_element.text.strip())

        map_attributes: List[str] = []
        map_element = root.find("Map")
        if map_element is not None:
            for attribute_element in map_element.findall("Attribute"):
                text_value = (attribute_element.text or "").strip()
                if not text_value:
                    raise PolicyParseError("<Map> has an empty <Attribute>")
                map_attributes.append(text_value)
            if not map_attributes:
                raise PolicyParseError("<Map> needs at least one <Attribute>")

        window: Optional[WindowSpec] = None
        aggregations: List[AggregationSpec] = []
        aggregation_element = root.find("Aggregation")
        if aggregation_element is not None:
            window_type = _required_text(aggregation_element, "WindowType")
            size = _required_int(aggregation_element, "WindowSize")
            step = _required_int(aggregation_element, "WindowStep")
            window = WindowSpec(WindowType.parse(window_type), size, step)
            for attribute_element in aggregation_element.findall("Attribute"):
                text_value = (attribute_element.text or "").strip()
                if text_value:
                    aggregations.append(AggregationSpec.parse(text_value))
            if not aggregations:
                raise PolicyParseError("<Aggregation> needs at least one <Attribute>")

        return cls(stream, filter_condition, map_attributes, window, aggregations)

    def __repr__(self) -> str:
        parts = [f"stream={self.stream!r}"]
        if self.filter_condition is not None:
            parts.append(f"filter={self.filter_condition.to_condition_string()!r}")
        if self.map_attributes:
            parts.append(f"map={list(self.map_attributes)!r}")
        if self.window is not None:
            parts.append(f"window={self.window!r}")
        return f"UserQuery({', '.join(parts)})"


def _required_text(parent: ET.Element, tag: str) -> str:
    element = parent.find(tag)
    if element is None or not (element.text or "").strip():
        raise PolicyParseError(f"<Aggregation> is missing <{tag}>")
    return element.text.strip()


def _required_int(parent: ET.Element, tag: str) -> int:
    text = _required_text(parent, tag)
    try:
        return int(text)
    except ValueError:
        raise PolicyParseError(f"<{tag}> must be an integer, got {text!r}") from None
