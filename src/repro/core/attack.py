"""The multi-window reconstruction attack (Section 3.4).

The paper justifies the single-access constraint with an attack: a user
granted *sum* aggregation windows of sizes ``N, N+1, ..., N+M`` (all with
advance step ``M``) over the same stream can difference consecutive
aggregate streams and interleave the results to recover every raw tuple
from ``a_N`` onwards.

With three windows of sizes 3, 4, 5 and step 2 (the paper's Example 2)::

    S1 = (a0+a1+a2), (a2+a3+a4), (a4+a5+a6), ...
    S2 = (a0+..+a3), (a2+..+a5), (a4+..+a7), ...
    S3 = (a0+..+a4), (a2+..+a6), (a4+..+a8), ...
    S2-S1 = a3, a5, a7, ...      S3-S2 = a4, a6, a8, ...

interleaved: ``a3, a4, a5, a6, ...`` — the raw stream minus its first
three tuples.

:func:`reconstruct_from_windows` implements the pure arithmetic;
:class:`MultiWindowAttack` drives it end-to-end against an
:class:`~repro.core.xacml_plus.XacmlPlusInstance`, demonstrating both the
leak (single-access enforcement off) and the defence (enforcement on →
:class:`~repro.errors.ConcurrentAccessError` on the second request).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ConcurrentAccessError, ReproError
from repro.core.obligations import stream_policy
from repro.core.user_query import UserQuery
from repro.core.xacml_plus import XacmlPlusInstance
from repro.streams.graph import QueryGraph
from repro.streams.operators.window import (
    AggregateOperator,
    AggregationSpec,
    WindowSpec,
    WindowType,
)
from repro.streams.schema import DataType, Field, Schema
from repro.xacml.request import Request


def reconstruct_from_windows(
    aggregate_streams: Sequence[Sequence[float]],
    base_size: int,
    step: int,
) -> Dict[int, float]:
    """Recover raw tuples from sum-window outputs of sizes N, N+1, ..., N+M.

    *aggregate_streams* must be ordered by window size (``N`` first) and
    all share advance step *step* = M; there must be exactly M+1 of them.
    Returns ``{stream_index: value}`` for every recoverable position —
    every index from ``base_size`` up to the data horizon.

    The arithmetic: with ``S_i`` the stream for window size ``N+i``,
    ``T_i[k] = S_i[k] - S_{i-1}[k] = a[N + k·M + (i-1)]``.
    """
    if len(aggregate_streams) != step + 1:
        raise ReproError(
            f"need exactly step+1 = {step + 1} aggregate streams (sizes "
            f"N..N+M), got {len(aggregate_streams)}"
        )
    recovered: Dict[int, float] = {}
    for i in range(1, len(aggregate_streams)):
        finer = aggregate_streams[i - 1]
        coarser = aggregate_streams[i]
        usable = min(len(finer), len(coarser))
        for k in range(usable):
            index = base_size + k * step + (i - 1)
            recovered[index] = coarser[k] - finer[k]
    return recovered


#: Schema used by the attack demo (the paper's single-attribute stream S).
ATTACK_SCHEMA = Schema("s", [Field("a", DataType.INT)])


class MultiWindowAttack:
    """End-to-end Section 3.4 attack against an XACML+ instance.

    The instance must serve a stream whose policy permits sum-window
    aggregation with window ``(size=base_size, step=step)`` on attribute
    *attribute*.  :meth:`run` issues ``step+1`` concurrent requests with
    window sizes ``base_size .. base_size+step`` and differences the
    outputs.
    """

    def __init__(
        self,
        instance: XacmlPlusInstance,
        stream_name: str = "s",
        attribute: str = "a",
        subject: str = "attacker",
        base_size: int = 3,
        step: int = 2,
    ):
        self.instance = instance
        self.stream_name = stream_name
        self.attribute = attribute
        self.subject = subject
        self.base_size = base_size
        self.step = step

    @classmethod
    def build_victim_instance(
        cls,
        enforce_single_access: bool,
        base_size: int = 3,
        step: int = 2,
        stream_name: str = "s",
        attribute: str = "a",
    ) -> XacmlPlusInstance:
        """Set up a data server with the Example 2 policy loaded."""
        instance = XacmlPlusInstance(enforce_single_access=enforce_single_access)
        schema = Schema(stream_name, [Field(attribute, DataType.INT)])
        instance.engine.register_input_stream(stream_name, schema)
        policy_graph = QueryGraph(stream_name).append(
            AggregateOperator(
                WindowSpec(WindowType.TUPLE, base_size, step),
                [AggregationSpec.parse(f"{attribute}:sum")],
            )
        )
        instance.load_policy(
            stream_policy(
                f"policy:{stream_name}",
                stream_name,
                policy_graph,
                description="Example 2 policy: sum windows only",
            )
        )
        return instance

    def _window_request(self, size: int):
        request = Request.simple(self.subject, self.stream_name)
        user_query = UserQuery(
            self.stream_name,
            window=WindowSpec(WindowType.TUPLE, size, self.step),
            aggregations=[f"{self.attribute}:sum"],
        )
        return self.instance.request_stream(request, user_query)

    def run(self, values: Sequence[int]) -> Dict[int, float]:
        """Execute the attack over *values*; return recovered tuples.

        Raises :class:`ConcurrentAccessError` when the instance enforces
        the single-access constraint — the defended configuration.
        """
        handles = []
        for extra in range(self.step + 1):
            result = self._window_request(self.base_size + extra)
            handles.append(result.handle)
        for value in values:
            self.instance.engine.push(self.stream_name, {self.attribute: value})
        aggregate_streams: List[List[float]] = []
        for handle in handles:
            output = self.instance.engine.read(handle)
            aggregate_streams.append(
                [tup[f"sum{self.attribute}"] for tup in output]
            )
        return reconstruct_from_windows(aggregate_streams, self.base_size, self.step)

    def is_blocked(self) -> bool:
        """True when the defence stops the second concurrent request."""
        first = self._window_request(self.base_size)
        try:
            self._window_request(self.base_size + 1)
        except ConcurrentAccessError:
            return True
        finally:
            self.instance.release_stream(first.handle)
        return False
