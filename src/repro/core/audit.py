"""Accountability: an append-only audit log of access-control events.

The paper's conclusion names "relaxing the trusted cloud model to
incorporate more accountability mechanisms" as its primary next
challenge.  This module implements the first building block: a tamper-
evident (hash-chained) audit log that records every decision and
enforcement action, so a data owner can later verify what the cloud did
with their policies.

Events recorded (``kind``):

- ``policy-loaded`` / ``policy-updated`` / ``policy-removed``
- ``decision`` — every PDP evaluation (decision, policy id, subject,
  resource)
- ``grant`` — a handle issued (with the StreamSQL actually submitted)
- ``warning`` — an NR/PR rejection
- ``revocation`` — a query graph withdrawn because its policy changed
- ``release`` — a user-initiated handle release

Each entry carries the SHA-256 of its predecessor, making retroactive
tampering detectable with :meth:`AuditLog.verify_chain`.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from typing import Callable, Dict, Iterator, List, NamedTuple, Optional

#: Hash of the (non-existent) entry before the first one.
GENESIS = "0" * 64


class AuditEntry(NamedTuple):
    """One immutable audit record."""

    sequence: int
    kind: str
    subject: Optional[str]
    resource: Optional[str]
    detail: Dict[str, object]
    previous_hash: str
    entry_hash: str

    def payload(self) -> str:
        """The canonical JSON the entry hash covers."""
        return json.dumps(
            {
                "sequence": self.sequence,
                "kind": self.kind,
                "subject": self.subject,
                "resource": self.resource,
                "detail": self.detail,
                "previous_hash": self.previous_hash,
            },
            sort_keys=True,
        )


def _hash_payload(payload: str) -> str:
    return hashlib.sha256(payload.encode()).hexdigest()


class AuditLog:
    """An append-only, hash-chained sequence of audit entries."""

    def __init__(self):
        self._entries: List[AuditEntry] = []
        self._counter = itertools.count(1)

    # -- recording --------------------------------------------------------------

    def record(
        self,
        kind: str,
        subject: Optional[str] = None,
        resource: Optional[str] = None,
        **detail,
    ) -> AuditEntry:
        """Append one event; returns the sealed entry."""
        previous_hash = self._entries[-1].entry_hash if self._entries else GENESIS
        provisional = AuditEntry(
            sequence=next(self._counter),
            kind=kind,
            subject=subject,
            resource=resource,
            detail=dict(detail),
            previous_hash=previous_hash,
            entry_hash="",
        )
        sealed = provisional._replace(entry_hash=_hash_payload(provisional.payload()))
        self._entries.append(sealed)
        return sealed

    # -- querying ----------------------------------------------------------------

    def entries(
        self,
        kind: Optional[str] = None,
        subject: Optional[str] = None,
        resource: Optional[str] = None,
    ) -> List[AuditEntry]:
        """Entries filtered by any combination of kind/subject/resource."""
        result = []
        for entry in self._entries:
            if kind is not None and entry.kind != kind:
                continue
            if subject is not None and entry.subject != subject:
                continue
            if resource is not None and entry.resource != resource:
                continue
            result.append(entry)
        return result

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[AuditEntry]:
        return iter(self._entries)

    # -- accountability -------------------------------------------------------------

    def verify_chain(self) -> bool:
        """True when no entry has been altered, removed or reordered."""
        previous_hash = GENESIS
        for expected_sequence, entry in enumerate(self._entries, start=1):
            if entry.sequence != expected_sequence:
                return False
            if entry.previous_hash != previous_hash:
                return False
            if _hash_payload(entry.payload()) != entry.entry_hash:
                return False
            previous_hash = entry.entry_hash
        return True

    def export_json(self) -> str:
        """Serialise the full log (for the data owner's offline audit)."""
        return json.dumps([entry._asdict() for entry in self._entries], indent=2)

    @classmethod
    def import_json(cls, text: str) -> "AuditLog":
        """Load an exported log; callers should :meth:`verify_chain` it."""
        log = cls()
        entries = [AuditEntry(**record) for record in json.loads(text)]
        log._entries = entries
        log._counter = itertools.count(len(entries) + 1)
        return log


class AuditedXacmlPlus:
    """Wrap an :class:`~repro.core.xacml_plus.XacmlPlusInstance` with auditing.

    Every policy-management call, every decision and every enforcement
    outcome lands in the :class:`AuditLog`.  The wrapper is deliberately
    thin — the audited instance is used exactly like a bare one.
    """

    def __init__(self, instance, log: Optional[AuditLog] = None):
        self.instance = instance
        self.log = log if log is not None else AuditLog()
        instance.store.add_listener(self._on_policy_event)

    def _on_policy_event(self, event: str, policy) -> None:
        self.log.record(f"policy-{event}", resource=None, policy_id=policy.policy_id)

    # -- audited operations ---------------------------------------------------------

    def load_policy(self, policy):
        return self.instance.load_policy(policy)

    def update_policy(self, policy):
        before = {
            spawned.handle.uri
            for spawned in self.instance.graph_manager.spawned_by(
                policy.policy_id if hasattr(policy, "policy_id") else ""
            )
        }
        result = self.instance.update_policy(policy)
        for uri in before:
            self.log.record("revocation", detail_handle=uri,
                            policy_id=result.policy_id)
        return result

    def remove_policy(self, policy_id: str):
        revoked = [
            spawned.handle.uri
            for spawned in self.instance.graph_manager.spawned_by(policy_id)
        ]
        self.instance.remove_policy(policy_id)
        for uri in revoked:
            self.log.record("revocation", detail_handle=uri, policy_id=policy_id)

    def request_stream(self, request, user_query=None):
        from repro.errors import (
            AccessDeniedError,
            ConcurrentAccessError,
            EmptyResultWarning,
            PartialResultWarning,
        )

        subject = request.subject_id if hasattr(request, "subject_id") else None
        resource = request.resource_id if hasattr(request, "resource_id") else None
        try:
            result = self.instance.request_stream(request, user_query)
        except AccessDeniedError as error:
            self.log.record(
                "decision", subject, resource,
                decision=error.decision.value,
            )
            raise
        except ConcurrentAccessError:
            self.log.record("warning", subject, resource, warning_kind="concurrent-access")
            raise
        except EmptyResultWarning:
            self.log.record("warning", subject, resource, warning_kind="NR")
            raise
        except PartialResultWarning:
            self.log.record("warning", subject, resource, warning_kind="PR")
            raise
        self.log.record(
            "decision", subject, resource,
            decision="Permit", policy_id=result.response.policy_id,
        )
        self.log.record(
            "grant", subject, resource,
            handle=result.handle.uri, streamsql=result.streamsql,
        )
        return result

    def release_stream(self, handle) -> None:
        self.instance.release_stream(handle)
        self.log.record("release", detail_handle=handle.uri)

    def __getattr__(self, name):
        return getattr(self.instance, name)
