"""eXACML+ core: fine-grained access control for continuous queries.

This package is the paper's primary contribution:

- :mod:`repro.core.obligations` — the stream-obligation vocabulary
  (Table 1 / Figure 2) and the obligations ⇄ query-graph translation,
- :mod:`repro.core.user_query` — customised user queries (Figure 4(a)),
- :mod:`repro.core.merge` — the Section 3.1 query-graph merge rules,
- :mod:`repro.core.warnings_check` — NR/PR detection (Section 3.5),
- :mod:`repro.core.access_registry` — the Section 3.4 single-access guard,
- :mod:`repro.core.attack` — the multi-window reconstruction attack the
  guard defends against,
- :mod:`repro.core.pep` — the Policy Enforcement Point workflow
  (Section 3.2),
- :mod:`repro.core.graph_manager` — query-graph lifecycle management and
  revocation on policy change (Section 3.3),
- :mod:`repro.core.xacml_plus` — the assembled XACML+ instance
  (Figure 3(b)).
"""

from repro.core.obligations import (
    graph_to_obligations,
    obligations_to_graph,
    stream_policy,
)
from repro.core.user_query import UserQuery
from repro.core.merge import MergeOptions, MergeResult, merge_query_graphs
from repro.core.warnings_check import (
    WarningReport,
    check_filter_merge,
    check_aggregate_merge,
    check_map_merge,
    check_query_against_policy,
)
from repro.core.access_registry import AccessRegistry
from repro.core.pep import PepResult, PolicyEnforcementPoint
from repro.core.graph_manager import QueryGraphManager
from repro.core.xacml_plus import XacmlPlusInstance
from repro.core.attack import MultiWindowAttack, reconstruct_from_windows
from repro.core.audit import AuditedXacmlPlus, AuditLog

__all__ = [
    "graph_to_obligations",
    "obligations_to_graph",
    "stream_policy",
    "UserQuery",
    "MergeOptions",
    "MergeResult",
    "merge_query_graphs",
    "WarningReport",
    "check_filter_merge",
    "check_aggregate_merge",
    "check_map_merge",
    "check_query_against_policy",
    "AccessRegistry",
    "PepResult",
    "PolicyEnforcementPoint",
    "QueryGraphManager",
    "XacmlPlusInstance",
    "MultiWindowAttack",
    "reconstruct_from_windows",
    "AuditedXacmlPlus",
    "AuditLog",
]
