"""The assembled XACML+ instance (the paper's Figure 3(b)).

An :class:`XacmlPlusInstance` wires together a policy store, a PDP, an
access registry, a query-graph manager and a PEP over one stream engine.
It is the unit the eXACML+ framework deploys on the data server — "new
XACML+ instances are added into the framework to handle access control
needs on data streams".

``pdp_shards=N`` swaps the store/PDP pair for the sharded analogues of
:mod:`repro.xacml.sharding` (N hash-partitioned shard stores, requests
routed to the owning shard's PDP — scatter-cached with single-flight
when they span shards — one invalidation bus feeding graph revocation
and every cross-shard observer).  ``pdp_partitioner`` selects the
placement strategy (``"resource"`` — the default — ``"subject"`` or
``"composite"``, or a :class:`~repro.xacml.sharding.PartitionStrategy`
instance), so subject-heavy policy populations can co-partition on
subject keys and keep routing single-shard.  The default single-store
wiring is unchanged and remains the reference mode the sharding
differential harness compares against.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.core.access_registry import AccessRegistry
from repro.core.graph_manager import QueryGraphManager
from repro.core.merge import MergeOptions
from repro.core.pep import PepResult, PolicyEnforcementPoint
from repro.core.user_query import UserQuery
from repro.streams.engine import StreamEngine
from repro.streams.handles import StreamHandle
from repro.xacml.pdp import DEFAULT_CACHE_SIZE, PolicyDecisionPoint
from repro.xacml.policy import Policy
from repro.xacml.request import Request
from repro.xacml.store import PolicyStore
from repro.xacml.xml_io import parse_policy_xml, parse_request_xml


class XacmlPlusInstance:
    """One PDP+PEP pair bound to a stream engine."""

    def __init__(
        self,
        engine: Optional[StreamEngine] = None,
        merge_options: MergeOptions = MergeOptions(),
        enforce_single_access: bool = True,
        allow_partial_results: bool = False,
        clock=None,
        pdp_use_index: bool = True,
        pdp_cache_size: Optional[int] = None,
        pdp_shards: Optional[int] = None,
        pdp_partitioner=None,
    ):
        self.engine = engine if engine is not None else StreamEngine()
        cache_size = DEFAULT_CACHE_SIZE if pdp_cache_size is None else pdp_cache_size
        if pdp_shards is not None and pdp_shards > 1:
            if not pdp_use_index:
                # Shard PDPs are always indexed — routing itself relies
                # on the index's over-approximation guarantee, so a
                # linear-scan sharded PDP does not exist.  Refuse rather
                # than silently change candidate-selection semantics
                # (a NotApplicable-sensitive custom combining algorithm
                # needs the single-store reference PDP).
                raise ValueError(
                    "pdp_use_index=False is incompatible with pdp_shards: "
                    "use the unsharded instance for linear-scan semantics"
                )
            from repro.xacml.sharding import ShardedPDP, ShardedPolicyStore

            # The sharded store presents the PolicyStore listener/mutation
            # contract, so the graph manager, audit trails and proxies
            # subscribe to it exactly as to a single store (they observe
            # one logical event per mutation via the invalidation bus).
            self.store = ShardedPolicyStore(pdp_shards, partitioner=pdp_partitioner)
            self.pdp = ShardedPDP(self.store, cache_size=cache_size)
        else:
            if pdp_partitioner is not None:
                raise ValueError(
                    "pdp_partitioner requires pdp_shards > 1 (the single-store "
                    "instance has nothing to partition)"
                )
            self.store = PolicyStore()
            self.pdp = PolicyDecisionPoint(
                self.store,
                use_index=pdp_use_index,
                cache_size=cache_size,
            )
        self.access_registry = AccessRegistry(enforce=enforce_single_access)
        self.graph_manager = QueryGraphManager(
            self.engine, self.store, self.access_registry
        )
        import time

        self.pep = PolicyEnforcementPoint(
            self.pdp,
            self.engine,
            access_registry=self.access_registry,
            graph_manager=self.graph_manager,
            merge_options=merge_options,
            allow_partial_results=allow_partial_results,
            clock=clock if clock is not None else time.perf_counter,
        )

    # -- policy management (data-owner side) -----------------------------------

    def load_policy(self, policy: Union[Policy, str]) -> Policy:
        """Load a policy object or an XML policy document."""
        if isinstance(policy, str):
            policy = parse_policy_xml(policy)
        self.store.load(policy)
        return policy

    def update_policy(self, policy: Union[Policy, str]) -> Policy:
        """Replace a policy; spawned query graphs are revoked immediately."""
        if isinstance(policy, str):
            policy = parse_policy_xml(policy)
        self.store.update(policy)
        return policy

    def remove_policy(self, policy_id: str) -> None:
        """Remove a policy; spawned query graphs are revoked immediately."""
        self.store.remove(policy_id)

    # -- request path (user side) ------------------------------------------------

    def request_stream(
        self,
        request: Union[Request, str],
        user_query: Optional[Union[UserQuery, str]] = None,
        pdp_response=None,
    ) -> PepResult:
        """Process one access request (optionally with a customised query).

        Accepts live objects or the XML documents of the paper's workload
        files.  *pdp_response* feeds a decision evaluated out-of-band
        (e.g. on a shard worker pool) into the PEP workflow.
        """
        if isinstance(request, str):
            request = parse_request_xml(request)
        if isinstance(user_query, str):
            user_query = UserQuery.from_xml(user_query)
        return self.pep.handle_request(request, user_query, pdp_response=pdp_response)

    def release_stream(self, handle: StreamHandle) -> None:
        self.pep.release(handle)

    # -- introspection -------------------------------------------------------------

    def active_handles(self) -> List[StreamHandle]:
        return [query.handle for query in self.engine.active_queries()]

    def __repr__(self) -> str:
        return (
            f"XacmlPlusInstance(policies={len(self.store)}, "
            f"active_queries={len(self.engine.active_queries())})"
        )
