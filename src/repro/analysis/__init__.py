"""Concurrency-aware static analysis for the repro codebase.

Run ``python -m repro.analysis --check`` (with ``src`` on the path)
to lint ``src/`` and ``benchmarks/``; see ``docs/static-analysis.md``
for the rule catalog and the annotation / suppression syntax.
"""

from repro.analysis.core import (
    AnalysisReport,
    Finding,
    ModuleContext,
    Rule,
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from repro.analysis.rules import build_default_rules

__all__ = [
    "AnalysisReport",
    "Finding",
    "ModuleContext",
    "Rule",
    "analyze_paths",
    "analyze_source",
    "build_default_rules",
    "iter_python_files",
]
