"""The rule engine for the concurrency-aware static-analysis suite.

The analyzer is AST-based and deliberately self-contained (stdlib
only): each rule receives a parsed :class:`ModuleContext` — source,
AST, and the comment map the annotation/suppression syntax lives in —
and yields :class:`Finding`\\ s.  The engine applies per-line
suppressions and renders the findings table / JSON artifact the CLI
and the CI gate consume.

Annotation syntax (consumed by the guarded-by rule)::

    self._pending = {}   # guarded by: self._pending_lock
    self.read_pauses = 0 # guarded by: event-loop
    self._buffer = []    # guarded by: owner

Suppression syntax (consumed by the engine)::

    q.put(item)  # analysis: allow[async-blocking] unbounded mp queue

A suppression applies to findings on its own line, or — when written
as a standalone comment line — to the line below.  A suppression with
no written reason is itself a finding (``suppression-reason``): every
silenced rule must say *why*.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "AnalysisReport",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
]

_SUPPRESS_RE = re.compile(
    r"analysis:\s*allow\[([A-Za-z0-9_,\- ]+)\]\s*(.*)\s*$"
)


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    reason: str = ""

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }


@dataclass
class Suppression:
    """One parsed ``analysis: allow[...]`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str
    #: Lines this suppression covers (its own, plus the next line when
    #: it stands alone on a comment-only line).
    covers: Tuple[int, ...] = ()


class ModuleContext:
    """A parsed module: source, AST, comments, and suppressions."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        #: line number → comment text (without the leading ``#``).
        self.comments: Dict[int, str] = _extract_comments(source)
        self.suppressions: List[Suppression] = _extract_suppressions(
            self.comments, self.lines
        )
        #: line number → suppressions covering it.
        self._by_line: Dict[int, List[Suppression]] = {}
        for suppression in self.suppressions:
            for covered in suppression.covers:
                self._by_line.setdefault(covered, []).append(suppression)

    def suppression_for(self, rule: str, line: int) -> Optional[Suppression]:
        for suppression in self._by_line.get(line, ()):
            if rule in suppression.rules:
                return suppression
        return None

    def comment_on(self, line: int) -> str:
        return self.comments.get(line, "")


def _extract_comments(source: str) -> Dict[int, str]:
    comments: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string.lstrip("#").strip()
    except tokenize.TokenError:
        pass  # a truncated final token loses trailing comments only
    return comments


def _extract_suppressions(
    comments: Dict[int, str], lines: Sequence[str]
) -> List[Suppression]:
    suppressions = []
    for line, text in comments.items():
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            rule.strip() for rule in match.group(1).split(",") if rule.strip()
        )
        covers = [line]
        source_line = lines[line - 1] if line - 1 < len(lines) else ""
        if source_line.strip().startswith("#"):
            covers.append(line + 1)  # standalone comment guards the next line
        suppressions.append(
            Suppression(line, rules, match.group(2).strip(), tuple(covers))
        )
    return suppressions


class Rule:
    """Base class for analysis rules.

    Subclasses set :attr:`rule_id` / :attr:`description` and implement
    :meth:`check`, yielding :class:`Finding`\\ s (``path`` may be left
    empty; the engine fills it in).  A rule may emit findings under
    secondary ids; list them in :attr:`also_emits` so suppression
    validation knows the full vocabulary.
    """

    rule_id: str = ""
    description: str = ""
    also_emits: Tuple[str, ...] = ()

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def emitted_ids(self) -> Tuple[str, ...]:
        return (self.rule_id,) + tuple(self.also_emits)


class AnalysisReport:
    """Everything one analysis run produced."""

    def __init__(self, rules: Sequence[Rule]):
        self.rules = list(rules)
        self.findings: List[Finding] = []
        self.files_analyzed = 0
        self.parse_errors: List[Tuple[str, str]] = []

    @property
    def active(self) -> List[Finding]:
        return [finding for finding in self.findings if not finding.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.active:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "files_analyzed": self.files_analyzed,
            "rules": [
                {"id": rule.rule_id, "description": rule.description}
                for rule in self.rules
            ],
            "counts": self.counts(),
            "findings": [finding.to_dict() for finding in self.active],
            "suppressed": [finding.to_dict() for finding in self.suppressed],
            "parse_errors": [
                {"path": path, "error": error}
                for path, error in self.parse_errors
            ],
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def table(self) -> str:
        rows = [
            (finding.rule, finding.location, finding.message)
            for finding in self.active
        ]
        if not rows:
            return (
                f"no findings "
                f"({self.files_analyzed} files, "
                f"{len(self.suppressed)} suppressed)"
            )
        widths = [
            max(len(row[column]) for row in rows + [("rule", "location", "")])
            for column in (0, 1)
        ]
        lines = [f"{'rule':<{widths[0]}}  {'location':<{widths[1]}}  message"]
        for rule, location, message in rows:
            lines.append(f"{rule:<{widths[0]}}  {location:<{widths[1]}}  {message}")
        lines.append(
            f"{len(rows)} finding(s) in {self.files_analyzed} files "
            f"({len(self.suppressed)} suppressed)"
        )
        return "\n".join(lines)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Yield every ``.py`` file under *paths* (files pass through)."""
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if d not in ("__pycache__", ".git")
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def _known_rule_ids(rules: Sequence[Rule]) -> Set[str]:
    known: Set[str] = {"suppression-reason", "suppression-unknown-rule"}
    for rule in rules:
        known.update(rule.emitted_ids())
    return known


def _analyze_module(
    module: ModuleContext, rules: Sequence[Rule], known_ids: Set[str]
) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(module):
            finding.path = module.path
            findings.append(finding)
    for suppression in module.suppressions:
        if not suppression.reason:
            findings.append(
                Finding(
                    "suppression-reason",
                    module.path,
                    suppression.line,
                    "suppression without a written reason: every "
                    "analysis: allow[...] must say why",
                )
            )
        for rule_id in suppression.rules:
            if rule_id not in known_ids:
                findings.append(
                    Finding(
                        "suppression-unknown-rule",
                        module.path,
                        suppression.line,
                        f"suppression names unknown rule {rule_id!r}",
                    )
                )
    for finding in findings:
        if finding.rule in ("suppression-reason", "suppression-unknown-rule"):
            continue  # meta-findings cannot be silenced
        suppression = module.suppression_for(finding.rule, finding.line)
        if suppression is not None and suppression.reason:
            finding.suppressed = True
            finding.reason = suppression.reason
    return findings


def default_rules() -> List[Rule]:
    from repro.analysis.rules import build_default_rules

    return build_default_rules()


def analyze_paths(
    paths: Iterable[str], rules: Optional[Sequence[Rule]] = None
) -> AnalysisReport:
    """Run *rules* (default: the full suite) over every module under
    *paths*; returns the combined report."""
    if rules is None:
        rules = default_rules()
    report = AnalysisReport(rules)
    known_ids = _known_rule_ids(rules)
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            module = ModuleContext(path, source)
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            report.parse_errors.append((path, str(error)))
            report.findings.append(
                Finding("parse-error", path, 1, f"could not analyze: {error}")
            )
            continue
        report.files_analyzed += 1
        report.findings.extend(_analyze_module(module, rules, known_ids))
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report


def analyze_source(
    source: str,
    rules: Optional[Sequence[Rule]] = None,
    filename: str = "<fixture>.py",
) -> List[Finding]:
    """Analyze one in-memory module (the fixture-test entry point)."""
    if rules is None:
        rules = default_rules()
    module = ModuleContext(filename, source)
    return _analyze_module(module, rules, _known_rule_ids(rules))
