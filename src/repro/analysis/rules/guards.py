"""The guarded-by checker.

Attributes are declared guarded with a trailing comment on the
assignment that introduces them (conventionally in ``__init__``)::

    self._pending = {}       # guarded by: self._pending_lock
    self.read_pauses = 0     # guarded by: event-loop
    self._buffer = []        # guarded by: owner

Three guard kinds, each with a statically checkable discipline:

``self.<lock>`` (a lock attribute)
    Every mutation of the attribute — assignment, augmented
    assignment, ``del``, or a mutating container-method call
    (``append``/``pop``/``update``/...) — must be lexically inside a
    ``with`` on *the same receiver's* lock: ``self.x`` needs
    ``with self._lock``, ``runtime.x`` needs ``with runtime._lock``.
    Receiver matching is what lets a supervisor class honour another
    object's lock (``runtime.status`` under ``with runtime.lock``).

``event-loop``
    The attribute belongs to one asyncio event loop: it may only be
    mutated inside ``async def`` bodies (everything on the loop is
    serialized) or the declaring function.

``owner``
    Serial state encapsulated by its class: it may only be mutated
    from methods of the declaring class — external writers would break
    the single-owner serialization argument.

Known false positive (by design, documented in the fixture tests): a
mutation inside a helper *function* called while the lock is held is
flagged — the checker reasons lexically, not interprocedurally.
Annotate such helpers with a reasoned suppression.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, ModuleContext, Rule

GUARD_RE = re.compile(r"guarded by:\s*([A-Za-z_][A-Za-z0-9_.\-]*)")

#: Container/object methods that mutate their receiver.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popleft", "appendleft",
    "clear", "add", "discard", "update", "setdefault", "popitem", "sort",
    "reverse", "put", "put_nowait",
})


class GuardSpec:
    """One guarded attribute: its kind and where it was declared."""

    __slots__ = ("attr", "kind", "lock_attr", "decl_line", "decl_classes",
                 "decl_funcs")

    def __init__(self, attr: str, kind: str, lock_attr: Optional[str],
                 decl_line: int):
        self.attr = attr
        self.kind = kind  # "lock" | "event-loop" | "owner"
        self.lock_attr = lock_attr
        self.decl_line = decl_line
        self.decl_classes: Set[str] = set()
        self.decl_funcs: Set[int] = set()  # id() of declaring function nodes


def _parse_guard(comment: str) -> Optional[Tuple[str, Optional[str]]]:
    """``(kind, lock_attr)`` from a ``guarded by:`` comment, or None."""
    match = GUARD_RE.search(comment)
    if match is None:
        return None
    target = match.group(1)
    if target == "event-loop":
        return ("event-loop", None)
    if target == "owner":
        return ("owner", None)
    return ("lock", target.rsplit(".", 1)[-1])


def _self_attr_target(node: ast.AST) -> Optional[str]:
    """The attribute name when *node* is ``self.<attr>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _iter_mutations(
    node: ast.stmt,
) -> Iterator[Tuple[ast.expr, str, int]]:
    """``(receiver, attr, line)`` for every attribute mutated by *node*.

    Handles plain/augmented/annotated assignment, ``del``, tuple
    unpacking, subscript stores (``self.d[k] = v`` mutates ``d``), and
    mutating method calls (``self.d.pop(k)``).
    """
    def resolve(target: ast.expr) -> Iterator[Tuple[ast.expr, str, int]]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from resolve(element)
        elif isinstance(target, ast.Starred):
            yield from resolve(target.value)
        elif isinstance(target, ast.Subscript):
            yield from resolve(target.value)
        elif isinstance(target, ast.Attribute):
            yield (target.value, target.attr, target.lineno)

    if isinstance(node, ast.Assign):
        for target in node.targets:
            yield from resolve(target)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        if isinstance(node, ast.AnnAssign) and node.value is None:
            return
        yield from resolve(node.target)
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            yield from resolve(target)


def _call_mutation(node: ast.Call) -> Optional[Tuple[ast.expr, str, int]]:
    """``self.x.append(...)``-style mutation, if *node* is one."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in MUTATOR_METHODS
        and isinstance(func.value, ast.Attribute)
    ):
        receiver = func.value
        return (receiver.value, receiver.attr, node.lineno)
    return None


class GuardedByRule(Rule):
    rule_id = "guarded-by"
    description = (
        "attributes declared `# guarded by: <lock>` may only be mutated "
        "under a `with` on that lock (or, for event-loop/owner guards, "
        "from async bodies / the declaring class)"
    )
    also_emits = ("guard-conflict",)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        registry, conflicts = self._collect(module)
        yield from conflicts
        if registry:
            checker = _MutationChecker(module, registry)
            checker.visit(module.tree)
            yield from checker.findings

    # -- declaration pass --------------------------------------------------------

    def _collect(
        self, module: ModuleContext
    ) -> Tuple[Dict[str, GuardSpec], List[Finding]]:
        registry: Dict[str, GuardSpec] = {}
        conflicts: List[Finding] = []
        class_stack: List[str] = []
        func_stack: List[ast.AST] = []

        def walk(node: ast.AST) -> None:
            if isinstance(node, ast.ClassDef):
                class_stack.append(node.name)
                for child in node.body:
                    walk(child)
                class_stack.pop()
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func_stack.append(node)
                for child in node.body:
                    walk(child)
                func_stack.pop()
                return
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                comment = module.comment_on(node.lineno)
                parsed = _parse_guard(comment) if comment else None
                if parsed is not None:
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        attr = _self_attr_target(target)
                        if attr is None:
                            continue
                        kind, lock_attr = parsed
                        spec = registry.get(attr)
                        if spec is None:
                            spec = GuardSpec(attr, kind, lock_attr, node.lineno)
                            registry[attr] = spec
                        elif (spec.kind, spec.lock_attr) != (kind, lock_attr):
                            conflicts.append(Finding(
                                "guard-conflict", module.path, node.lineno,
                                f"attribute {attr!r} re-declared with a "
                                f"different guard (was {spec.kind}"
                                f"/{spec.lock_attr}, line {spec.decl_line})",
                            ))
                            continue
                        if class_stack:
                            spec.decl_classes.add(class_stack[-1])
                        if func_stack:
                            spec.decl_funcs.add(id(func_stack[-1]))
            for child in ast.iter_child_nodes(node):
                walk(child)

        walk(module.tree)
        return registry, conflicts


class _MutationChecker(ast.NodeVisitor):
    """The checking pass: tracks lexical `with` / class / function
    context and validates every mutation of a registered attribute."""

    def __init__(self, module: ModuleContext, registry: Dict[str, GuardSpec]):
        self.module = module
        self.registry = registry
        self.findings: List[Finding] = []
        self.class_stack: List[str] = []
        self.func_stack: List[ast.AST] = []
        self.held: List[str] = []  # unparsed `with` context expressions
        self.reported: Set[Tuple[str, int]] = set()

    # -- context ----------------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    def _visit_function(self, node) -> None:
        self.func_stack.append(node)
        held = self.held
        self.held = []  # a nested function does not inherit held locks
        self.generic_visit(node)
        self.held = held
        self.func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _visit_with(self, node) -> None:
        acquired = [ast.unparse(item.context_expr) for item in node.items]
        self.held.extend(acquired)
        self.generic_visit(node)
        del self.held[len(self.held) - len(acquired):]

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    # -- mutations ---------------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_stmt(node)
        self.generic_visit(node)

    visit_AugAssign = visit_Assign
    visit_AnnAssign = visit_Assign
    visit_Delete = visit_Assign

    def visit_Call(self, node: ast.Call) -> None:
        mutation = _call_mutation(node)
        if mutation is not None:
            self._check_mutation(*mutation)
        self.generic_visit(node)

    def _check_stmt(self, node: ast.stmt) -> None:
        for receiver, attr, line in _iter_mutations(node):
            self._check_mutation(receiver, attr, line)

    def _check_mutation(
        self, receiver: ast.expr, attr: str, line: int
    ) -> None:
        spec = self.registry.get(attr)
        if spec is None:
            return
        if self.func_stack and id(self.func_stack[-1]) in spec.decl_funcs:
            return  # the declaring function (construction) is exempt
        if not self.func_stack:
            return  # module-level statements run before concurrency exists
        if (attr, line) in self.reported:
            return
        receiver_text = ast.unparse(receiver)
        if spec.kind == "lock":
            required = f"{receiver_text}.{spec.lock_attr}"
            if required not in self.held:
                self.reported.add((attr, line))
                self.findings.append(Finding(
                    "guarded-by", self.module.path, line,
                    f"{receiver_text}.{attr} is guarded by "
                    f"{required!r} but mutated without holding it "
                    f"(held: {self.held or 'none'})",
                ))
        elif spec.kind == "event-loop":
            on_loop = any(
                isinstance(func, ast.AsyncFunctionDef)
                for func in self.func_stack
            )
            if not on_loop:
                self.reported.add((attr, line))
                self.findings.append(Finding(
                    "guarded-by", self.module.path, line,
                    f"{receiver_text}.{attr} is event-loop state but "
                    f"mutated from a synchronous function",
                ))
        elif spec.kind == "owner":
            if not (set(self.class_stack) & spec.decl_classes):
                self.reported.add((attr, line))
                owners = ", ".join(sorted(spec.decl_classes)) or "its class"
                self.findings.append(Finding(
                    "guarded-by", self.module.path, line,
                    f"{receiver_text}.{attr} is owner-serial state of "
                    f"{owners} but mutated outside the owning class",
                ))
