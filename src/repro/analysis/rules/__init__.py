"""The rule suite: one module per rule, assembled here."""

from __future__ import annotations

from typing import List

from repro.analysis.core import Rule
from repro.analysis.rules.async_blocking import AsyncBlockingRule
from repro.analysis.rules.exceptions import ExceptionDisciplineRule
from repro.analysis.rules.guards import GuardedByRule
from repro.analysis.rules.lock_order import LockOrderRule
from repro.analysis.rules.seed_hygiene import SeedHygieneRule

__all__ = [
    "AsyncBlockingRule",
    "ExceptionDisciplineRule",
    "GuardedByRule",
    "LockOrderRule",
    "SeedHygieneRule",
    "build_default_rules",
]


def build_default_rules() -> List[Rule]:
    return [
        GuardedByRule(),
        LockOrderRule(),
        AsyncBlockingRule(),
        ExceptionDisciplineRule(),
        SeedHygieneRule(),
    ]
