"""The seed-hygiene lint.

Reproducibility rules for randomness and hashing:

``seed-random``
    Calls to the module-level :mod:`random` samplers
    (``random.random()``, ``random.choice(...)``, ...) share one
    unseeded global generator — benchmark runs stop being
    reproducible and parallel workers correlate.  Construct a
    ``random.Random(derived_seed)`` instead (see
    ``repro.loadgen.mix.derive_seed``).  ``random.Random()`` called
    with *no* arguments is flagged for the same reason.

``seed-hash``
    The builtin ``hash()`` on most types is salted per process
    (``PYTHONHASHSEED``): using it to derive seeds, shard keys, or
    anything that crosses a process boundary silently diverges
    between workers.  Flagged outside ``__hash__`` method bodies
    (where delegating to ``hash()`` is the point); explicit
    ``x.__hash__()`` calls are flagged everywhere.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.core import Finding, ModuleContext, Rule

#: Samplers on the shared module-level generator.
GLOBAL_SAMPLERS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "gammavariate", "lognormvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "triangular", "getrandbits",
    "randbytes", "seed",
})


class SeedHygieneRule(Rule):
    rule_id = "seed-random"
    description = (
        "no module-level random.* sampling (shared unseeded generator) "
        "and no builtin hash() for cross-process values (per-process "
        "salt); derive seeds explicitly"
    )
    also_emits = ("seed-hash",)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        random_aliases = self._random_aliases(module)
        in_hash_method: List[bool] = [False]

        def scan(node: ast.AST) -> Iterator[Finding]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                in_hash_method.append(node.name == "__hash__")
                for child in ast.iter_child_nodes(node):
                    yield from scan(child)
                in_hash_method.pop()
                return
            if isinstance(node, ast.Call):
                yield from self._check_call(
                    node, random_aliases, in_hash_method[-1]
                )
            for child in ast.iter_child_nodes(node):
                yield from scan(child)

        yield from scan(module.tree)

    def _random_aliases(self, module: ModuleContext) -> set:
        """Names the stdlib ``random`` module is bound to here."""
        aliases = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        aliases.add(alias.asname or "random")
        return aliases

    def _check_call(
        self, node: ast.Call, random_aliases: set, in_hash: bool
    ) -> Iterator[Finding]:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in random_aliases
        ):
            if func.attr in GLOBAL_SAMPLERS:
                yield Finding(
                    "seed-random", "", node.lineno,
                    f"module-level random.{func.attr}() uses the shared "
                    f"unseeded generator — construct "
                    f"random.Random(derive_seed(...)) instead",
                )
            elif func.attr == "Random" and not node.args and not node.keywords:
                yield Finding(
                    "seed-random", "", node.lineno,
                    "random.Random() without a seed is not reproducible — "
                    "pass a derived seed",
                )
        elif isinstance(func, ast.Name) and func.id == "hash":
            if not in_hash:
                yield Finding(
                    "seed-hash", "", node.lineno,
                    "builtin hash() is salted per process "
                    "(PYTHONHASHSEED) — use a stable mixer "
                    "(derive_seed / hashlib) for cross-process values",
                )
        elif isinstance(func, ast.Attribute) and func.attr == "__hash__":
            yield Finding(
                "seed-hash", "", node.lineno,
                "explicit .__hash__() is salted per process — use a "
                "stable mixer (derive_seed / hashlib) instead",
            )
