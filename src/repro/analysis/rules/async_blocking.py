"""The async-blocking lint.

Flags calls that block the calling thread when they appear inside an
``async def`` body without being shipped off the event loop: one slow
handler stalls *every* connection the loop serves.  Checked patterns:

- ``time.sleep`` (use ``await asyncio.sleep``);
- blocking stdlib entry points (``socket.create_connection``,
  ``subprocess.run``/``check_*``/``call``, ``os.system``/``popen``);
- bare ``<lock>.acquire()`` / ``<semaphore>.acquire()`` — use
  ``async with`` or an executor;
- ``.get(...)`` / ``.put(...)`` on queue-shaped receivers (name
  contains ``queue`` or is ``q``) that are *not* awaited — a plain
  ``queue.Queue``/``multiprocessing.Queue`` round-trip blocks, while
  ``await queue.get()`` on an ``asyncio.Queue`` is fine;
- blocking socket methods (``recv``/``accept``/``sendall``, plus
  ``connect`` on ``sock``-named receivers) not awaited;
- ``.join(...)`` on thread/process/worker-named receivers;
- builtin ``open(...)`` (synchronous file I/O).

A call that is the direct operand of ``await`` is exempt (it returned
an awaitable, so it is the loop-friendly variant), as is anything
referenced — not called — inside a ``run_in_executor(...)`` argument
list, which is precisely the sanctioned escape hatch.  Calls inside
nested *synchronous* ``def``\\ s are not attributed to the enclosing
coroutine (they run wherever the helper is invoked).
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.core import Finding, ModuleContext, Rule

BLOCKING_DOTTED = {
    "time.sleep": "use `await asyncio.sleep(...)`",
    "socket.create_connection": "use `loop.sock_connect` or an executor",
    "subprocess.run": "use `asyncio.create_subprocess_exec`",
    "subprocess.call": "use `asyncio.create_subprocess_exec`",
    "subprocess.check_call": "use `asyncio.create_subprocess_exec`",
    "subprocess.check_output": "use `asyncio.create_subprocess_exec`",
    "os.system": "use `asyncio.create_subprocess_shell`",
    "os.popen": "use `asyncio.create_subprocess_shell`",
}

SOCKET_METHODS = frozenset({"recv", "recv_into", "accept", "sendall"})
QUEUE_METHODS = frozenset({"get", "put"})
JOIN_RECEIVERS = ("thread", "process", "worker")


def _receiver_text(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except ValueError:  # pragma: no cover - unparse covers all exprs
        return ""


def _looks_like_queue(text: str) -> bool:
    lowered = text.rsplit(".", 1)[-1].lower()
    return "queue" in lowered or lowered == "q"


def _looks_like_lock(text: str) -> bool:
    lowered = text.rsplit(".", 1)[-1].lower()
    return "lock" in lowered or "sem" in lowered


class AsyncBlockingRule(Rule):
    rule_id = "async-blocking"
    description = (
        "blocking calls (time.sleep, queue get/put, socket/file ops, "
        "lock.acquire) reachable from async def bodies must be awaited "
        "variants or shipped through run_in_executor"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                findings: List[Finding] = []
                for statement in node.body:
                    self._scan(statement, node.name, findings, awaited=False)
                yield from findings

    def _scan(
        self, node: ast.AST, coroutine: str, findings: List[Finding],
        awaited: bool,
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs run in their own context
        if isinstance(node, ast.Await):
            value = node.value
            if isinstance(value, ast.Call):
                # the awaited call itself is sanctioned; its arguments
                # are evaluated synchronously and still checked.
                for child in ast.iter_child_nodes(value):
                    if child is not value.func:
                        self._scan(child, coroutine, findings, awaited=False)
                return
            self._scan(value, coroutine, findings, awaited=False)
            return
        if isinstance(node, ast.Call) and not awaited:
            finding = self._check_call(node, coroutine)
            if finding is not None:
                findings.append(finding)
        for child in ast.iter_child_nodes(node):
            self._scan(child, coroutine, findings, awaited=False)

    def _check_call(
        self, node: ast.Call, coroutine: str
    ) -> "Finding | None":
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                return self._finding(
                    node, coroutine, "builtin open() blocks on file I/O",
                    "wrap it in run_in_executor",
                )
            return None
        if not isinstance(func, ast.Attribute):
            return None
        dotted = _receiver_text(func)
        if dotted in BLOCKING_DOTTED:
            return self._finding(
                node, coroutine, f"{dotted}() blocks the event loop",
                BLOCKING_DOTTED[dotted],
            )
        receiver = _receiver_text(func.value)
        method = func.attr
        if method == "acquire" and _looks_like_lock(receiver):
            return self._finding(
                node, coroutine,
                f"bare {receiver}.acquire() blocks the event loop",
                "use `async with`, a non-blocking acquire, or an executor",
            )
        if method in QUEUE_METHODS and _looks_like_queue(receiver):
            return self._finding(
                node, coroutine,
                f"{receiver}.{method}() on a queue blocks unless awaited",
                "await an asyncio.Queue, or use an executor for "
                "thread/process queues",
            )
        if method in SOCKET_METHODS:
            return self._finding(
                node, coroutine,
                f"{receiver}.{method}() is a blocking socket call",
                "use the loop's sock_* coroutines or a transport",
            )
        if method == "connect" and "sock" in receiver.lower():
            return self._finding(
                node, coroutine,
                f"{receiver}.connect() is a blocking socket call",
                "use `await loop.sock_connect(...)`",
            )
        if method == "join" and any(
            hint in receiver.lower() for hint in JOIN_RECEIVERS
        ):
            return self._finding(
                node, coroutine,
                f"{receiver}.join() blocks on another thread/process",
                "wrap it in run_in_executor",
            )
        return None

    def _finding(
        self, node: ast.Call, coroutine: str, problem: str, fix: str
    ) -> Finding:
        return Finding(
            "async-blocking", "", node.lineno,
            f"in `async def {coroutine}`: {problem} — {fix}",
        )
