"""The exception-discipline lint.

Two findings:

``except-silent``
    A broad handler (``except Exception``, ``except BaseException``,
    or a bare ``except:``) that silently swallows: it neither
    re-raises, nor logs, nor counts (augmented assignment), nor uses
    the bound exception object.  Silent broad swallows are how worker
    deaths, torn-down queues and protocol bugs disappear — every one
    must either handle the failure observably or carry a reasoned
    suppression.

``raise-untyped``
    A ``raise SomeName(...)`` where ``SomeName`` is not a builtin
    exception, not imported from :mod:`repro.errors` (the typed
    hierarchy retryable errors must derive from), and not a class
    defined in the module.  Raising ``Exception``/``BaseException``
    directly is always flagged.  Dotted raises (``asyncio.TimeoutError``)
    and dynamic raises (``raise self._error()``) are not checked.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator, Set

from repro.analysis.core import Finding, ModuleContext, Rule

LOG_METHODS = frozenset({
    "debug", "info", "warning", "error", "exception", "critical", "log",
})

BROAD_NAMES = frozenset({"Exception", "BaseException"})

#: Every builtin exception type, by name (Exception/BaseException are
#: excluded on purpose: raising them is the untyped case).
BUILTIN_EXCEPTIONS: Set[str] = {
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
} - BROAD_NAMES


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for type_node in types:
        if isinstance(type_node, ast.Name) and type_node.id in BROAD_NAMES:
            return True
    return False


def _handler_is_observant(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises, logs, counts, or inspects the
    bound exception."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.AugAssign):
            return True  # a counter (`self.failures += 1`)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in LOG_METHODS:
                return True
        if (
            handler.name is not None
            and isinstance(node, ast.Name)
            and node.id == handler.name
            and isinstance(node.ctx, ast.Load)
        ):
            return True
    return False


class ExceptionDisciplineRule(Rule):
    rule_id = "except-silent"
    description = (
        "broad `except Exception` handlers must re-raise, log, count, or "
        "use the exception; raised error classes must come from "
        "repro.errors, builtins, or the module itself"
    )
    also_emits = ("raise-untyped",)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        allowed = self._allowed_names(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                if _is_broad(node) and not _handler_is_observant(node):
                    caught = (
                        ast.unparse(node.type) if node.type is not None
                        else "<bare except>"
                    )
                    yield Finding(
                        "except-silent", "", node.lineno,
                        f"broad `except {caught}` swallows silently — "
                        f"re-raise, log, count, or suppress with a reason",
                    )
            elif isinstance(node, ast.Raise) and node.exc is not None:
                yield from self._check_raise(node, allowed)

    def _allowed_names(self, module: ModuleContext) -> Set[str]:
        allowed = set(BUILTIN_EXCEPTIONS)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module is not None and "errors" in node.module:
                    allowed.update(
                        alias.asname or alias.name for alias in node.names
                    )
            elif isinstance(node, ast.ClassDef):
                allowed.add(node.name)
        return allowed

    def _check_raise(
        self, node: ast.Raise, allowed: Set[str]
    ) -> Iterator[Finding]:
        exc = node.exc
        name_node = exc.func if isinstance(exc, ast.Call) else exc
        if not isinstance(name_node, ast.Name):
            return  # dotted or dynamic raise: out of scope
        name = name_node.id
        if not isinstance(exc, ast.Call) and name not in BROAD_NAMES:
            # `raise stored_error` re-raises an instance built (and
            # typed) elsewhere; only the construction site is checked.
            return
        if name in BROAD_NAMES:
            yield Finding(
                "raise-untyped", "", node.lineno,
                f"raising bare {name} — use a typed class from "
                f"repro.errors so callers can make retry decisions",
            )
        elif name not in allowed:
            yield Finding(
                "raise-untyped", "", node.lineno,
                f"raising {name}, which is neither a builtin, imported "
                f"from repro.errors, nor defined in this module — "
                f"retryable errors must derive from the typed hierarchy",
            )
