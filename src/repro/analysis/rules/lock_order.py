"""The lock-order detector.

Walks every function and records each *lexically nested* lock
acquisition pair: entering ``with B`` while ``with A`` is open adds
the directed edge ``A → B`` to the module's acquisition graph.  Locks
are identified by the last segment of the context expression
(``runtime.lock`` → ``lock``, ``self.store._mutation_lock`` →
``_mutation_lock``), so the same lock acquired through different
receivers unifies; an expression counts as a lock when that segment
ends in (or is) ``lock``.

Findings:

- ``lock-order`` — the acquisition graph has a cycle: two code paths
  acquire the same pair of locks in opposite orders, the classic
  ABBA deadlock shape.  Acquiring a lock while a lock of the *same*
  identity is held (a length-1 cycle) is reported too.
- ``lock-order-edge`` — a documented ordering (see
  :data:`REQUIRED_EDGES`) is violated: the documented edge is missing
  from the code, or its reverse appeared.

Limitation (documented in the fixture tests): acquisitions made by a
*callee* while the caller holds a lock are invisible — the graph is
lexical, not interprocedural.  Document such orders in
:data:`REQUIRED_EDGES` where they matter.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, ModuleContext, Rule

#: Documented lock orders, keyed by module basename: (outer, inner)
#: pairs that must exist exactly in that direction.  The sharding
#: entry encodes the module's written invariant "acquire
#: ``runtime.lock`` before ``_pending_lock`` (never the reverse)".
REQUIRED_EDGES: Dict[str, List[Tuple[str, str]]] = {
    "sharding.py": [("lock", "_pending_lock")],
}


def _lock_identity(text: str) -> Optional[str]:
    """The lock name a with-context expression acquires, or None."""
    segment = text.rsplit(".", 1)[-1]
    # strip a call suffix: `self.lock_for(x)` is not an acquisition we
    # can identify; plain attribute/name access only.
    if not segment.isidentifier():
        return None
    if segment == "lock" or segment.endswith("_lock") or segment.endswith("Lock"):
        return segment
    return None


class _EdgeCollector(ast.NodeVisitor):
    def __init__(self) -> None:
        #: (outer, inner) → first (line, outer_text, inner_text) seen.
        self.edges: Dict[Tuple[str, str], Tuple[int, str, str]] = {}
        self.held: List[Tuple[str, str]] = []  # (identity, text)

    def _visit_function(self, node) -> None:
        held = self.held
        self.held = []
        self.generic_visit(node)
        self.held = held

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _visit_with(self, node) -> None:
        acquired: List[Tuple[str, str]] = []
        for item in node.items:
            text = ast.unparse(item.context_expr)
            identity = _lock_identity(text)
            if identity is None:
                continue
            for held_id, held_text in self.held + acquired:
                edge = (held_id, identity)
                self.edges.setdefault(
                    edge, (node.lineno, held_text, text)
                )
            acquired.append((identity, text))
        self.held.extend(acquired)
        self.generic_visit(node)
        del self.held[len(self.held) - len(acquired):]

    visit_With = _visit_with
    visit_AsyncWith = _visit_with


def _find_cycles(
    edges: Dict[Tuple[str, str], Tuple[int, str, str]]
) -> List[List[str]]:
    graph: Dict[str, Set[str]] = {}
    for a, b in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())
    cycles: List[List[str]] = []
    seen_cycles: Set[Tuple[str, ...]] = set()
    color: Dict[str, int] = {}
    stack: List[str] = []

    def dfs(node: str) -> None:
        color[node] = 1
        stack.append(node)
        for successor in sorted(graph[node]):
            if color.get(successor, 0) == 0:
                dfs(successor)
            elif color.get(successor) == 1:
                cycle = stack[stack.index(successor):] + [successor]
                key = tuple(sorted(set(cycle)))
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    cycles.append(cycle)
        stack.pop()
        color[node] = 2

    for node in sorted(graph):
        if color.get(node, 0) == 0:
            dfs(node)
    return cycles


class LockOrderRule(Rule):
    rule_id = "lock-order"
    description = (
        "nested lock acquisitions must form an acyclic order; documented "
        "orders (runtime.lock before _pending_lock in sharding.py) are "
        "checked as required edges"
    )
    also_emits = ("lock-order-edge",)

    def __init__(
        self, required: Optional[Dict[str, List[Tuple[str, str]]]] = None
    ):
        self.required = REQUIRED_EDGES if required is None else required

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        collector = _EdgeCollector()
        collector.visit(module.tree)
        edges = collector.edges
        for cycle in _find_cycles(edges):
            pairs = list(zip(cycle, cycle[1:]))
            line = min(edges[pair][0] for pair in pairs if pair in edges)
            yield Finding(
                "lock-order", module.path, line,
                "lock acquisition cycle (ABBA deadlock shape): "
                + " -> ".join(cycle),
            )
        basename = os.path.basename(module.path)
        for outer, inner in self.required.get(basename, ()):
            if (inner, outer) in edges:
                line, inner_text, outer_text = edges[(inner, outer)]
                yield Finding(
                    "lock-order-edge", module.path, line,
                    f"documented order {outer!r} before {inner!r} violated: "
                    f"{outer_text} acquired while holding {inner_text}",
                )
            if (outer, inner) not in edges:
                yield Finding(
                    "lock-order-edge", module.path, 1,
                    f"documented edge {outer!r} -> {inner!r} no longer "
                    f"appears in the code; update REQUIRED_EDGES (or the "
                    f"module docstring) if the discipline changed",
                )
