"""CLI: ``python -m repro.analysis [--check] [--json FILE] [paths...]``.

Prints the findings table; with ``--check`` exits non-zero when any
unsuppressed finding remains (the CI gate).  ``--json`` writes the
machine-readable artifact CI uploads.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.core import analyze_paths
from repro.analysis.rules import build_default_rules


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="concurrency-aware static analysis over the codebase",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "benchmarks"],
        help="files or directories to analyze (default: src benchmarks)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if any unsuppressed finding remains (CI gate)",
    )
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the JSON findings artifact to FILE",
    )
    parser.add_argument(
        "--rules", metavar="IDS", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    args = parser.parse_args(argv)

    rules = build_default_rules()
    if args.rules:
        wanted = {rule_id.strip() for rule_id in args.rules.split(",")}
        known = {rule.rule_id for rule in rules}
        unknown = wanted - known
        if unknown:
            parser.error(
                f"unknown rule id(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})"
            )
        rules = [rule for rule in rules if rule.rule_id in wanted]

    report = analyze_paths(args.paths, rules)
    print(report.table())
    if args.json:
        report.write_json(args.json)
        print(f"wrote {args.json}")
    if args.check and report.active:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
