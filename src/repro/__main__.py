"""Command-line front end: ``python -m repro <command>``.

Runs the paper's experiments (at full or reduced scale) and the security
demo without writing any code:

- ``python -m repro fig6a``            — unique-sequence CDF (Figure 6(a))
- ``python -m repro fig6b``            — Zipf + cache CDF (Figure 6(b))
- ``python -m repro fig7 --requests 100 --policies 50`` — breakdown (Figure 7)
- ``python -m repro policy-load``      — policy-loading statistics
- ``python -m repro attack``           — the Section 3.4 reconstruction attack
- ``python -m repro version``
"""

from __future__ import annotations

import argparse
import sys

from repro.workload.generator import WorkloadGenerator
from repro.workload.runner import ExperimentRunner
from repro.workload.report import (
    breakdown_summary,
    breakdown_table,
    cdf_table,
    improvement_histogram,
    policy_load_summary,
    summary_table,
)


def _make_runner(args, **kwargs):
    generator = WorkloadGenerator(seed=args.seed)
    generator.parameters = generator.parameters._replace(
        n_requests=args.requests, n_policies=args.policies
    )
    runner = ExperimentRunner(seed=args.seed, generator=generator, **kwargs)
    items = generator.generate()
    return runner, items


def cmd_fig6a(args) -> int:
    runner, items = _make_runner(args)
    runner.load_policies(items)
    runner.run_direct(items)
    traces = runner.run_unique(items)
    print(cdf_table(runner.metrics, ["direct", "exacml+"]))
    print()
    print(summary_table(runner.metrics, ["direct", "exacml+"]))
    stats = breakdown_summary(traces)
    print(f"\nnetwork share: {stats['network_share']:.2f}   "
          f"sub-second: {stats['sub_second_fraction']:.3f}")
    return 0


def cmd_fig6b(args) -> int:
    # Table 3's maxRank is 300; scale it down proportionally when the
    # experiment runs at reduced size (maxRank must not exceed the pool).
    max_rank = min(300, max(1, args.requests // 5))

    runner_off, items_off = _make_runner(args, cache_enabled=False)
    runner_off.load_policies(items_off)
    runner_off.run_direct(items_off)
    off = runner_off.run_zipf(
        items_off, max_rank=max_rank, system_label="exacml+ cache off"
    )

    runner_on, items_on = _make_runner(args, cache_enabled=True)
    runner_on.load_policies(items_on)
    on = runner_on.run_zipf(
        items_on, max_rank=max_rank, system_label="exacml+ cache on"
    )

    runner_off.metrics.extend(on)
    print(cdf_table(
        runner_off.metrics, ["direct", "exacml+ cache off", "exacml+ cache on"]
    ))
    histogram = improvement_histogram(on, off)
    print(f"\nhit rate: {runner_on.proxy.hit_rate:.2f}   "
          f">100% improvement: {histogram['fraction_over_100pct']:.2f}")
    return 0


def cmd_fig7(args) -> int:
    runner, items = _make_runner(args)
    runner.load_policies(items)
    traces = runner.run_unique(items)
    print(breakdown_table(traces, sample_every=max(1, len(traces) // 15)))
    stats = breakdown_summary(traces)
    print(f"\nPDP mean: {stats['pdp'].mean * 1000:.2f} ms   "
          f"graph mean: {stats['query_graph'].mean * 1000:.2f} ms   "
          f"submit share: {stats['submit_share']:.2f}")
    return 0


def cmd_policy_load(args) -> int:
    runner, items = _make_runner(args)
    load_times = runner.load_policies(items)
    mean, stdev = policy_load_summary(load_times)
    print(f"loaded {len(load_times)} policies: "
          f"mean {mean:.3f} s, stdev {stdev:.3f} s (paper: 0.25 ± 0.06)")
    return 0


def cmd_attack(args) -> int:
    from repro.core.attack import MultiWindowAttack
    from repro.errors import ConcurrentAccessError

    victim = MultiWindowAttack.build_victim_instance(enforce_single_access=False)
    recovered = MultiWindowAttack(victim).run(list(range(args.tuples)))
    exact = sum(1 for i, v in recovered.items() if v == i)
    print(f"unguarded: recovered {exact}/{len(recovered)} tuples exactly "
          f"(from a3 onward)")
    guarded = MultiWindowAttack.build_victim_instance(enforce_single_access=True)
    try:
        MultiWindowAttack(guarded).run(list(range(args.tuples)))
        print("guarded: ATTACK SUCCEEDED (this is a bug)")
        return 1
    except ConcurrentAccessError:
        print("guarded: second concurrent window rejected — attack blocked")
    return 0


def cmd_version(_args) -> int:
    import repro

    print(f"repro {repro.__version__} — eXACML+ reproduction")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the eXACML+ reproduction experiments.",
    )
    parser.add_argument("--seed", type=int, default=2012)
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add(name, handler, requests=1500, policies=1000):
        sub = subparsers.add_parser(name)
        sub.add_argument("--requests", type=int, default=requests)
        sub.add_argument("--policies", type=int, default=policies)
        sub.set_defaults(handler=handler)
        return sub

    add("fig6a", cmd_fig6a)
    add("fig6b", cmd_fig6b)
    add("fig7", cmd_fig7, requests=100, policies=50)
    add("policy-load", cmd_policy_load)
    attack = subparsers.add_parser("attack")
    attack.add_argument("--tuples", type=int, default=100)
    attack.set_defaults(handler=cmd_attack)
    version = subparsers.add_parser("version")
    version.set_defaults(handler=cmd_version)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
