"""Stream tuples: immutable, schema-validated records.

A :class:`StreamTuple` pairs a schema with one value per field.  Tuples are
immutable — the Aurora model treats streams as append-only sequences and
operators always emit *new* tuples rather than mutating inputs.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.errors import SchemaError
from repro.streams.schema import Schema


class StreamTuple:
    """One record of a data stream.

    Values are stored positionally in schema order; attribute access is
    case-insensitive, mirroring the engine's StreamSQL dialect.
    """

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: Schema, values: Tuple[Any, ...]):
        if len(values) != len(schema):
            raise SchemaError(
                f"tuple has {len(values)} values but schema {schema.name!r} "
                f"has {len(schema)} fields"
            )
        self._schema = schema
        self._values = values

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def values(self) -> Tuple[Any, ...]:
        return self._values

    def __getitem__(self, attribute: str) -> Any:
        return self._values[self._schema.position(attribute)]

    def get(self, attribute: str, default: Any = None) -> Any:
        """Return the value of *attribute*, or *default* when absent."""
        if attribute in self._schema:
            return self[attribute]
        return default

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._schema

    def as_dict(self) -> Dict[str, Any]:
        """Return the tuple as an ordered ``{attribute: value}`` dict."""
        return dict(zip(self._schema.attribute_names, self._values))

    def project(self, schema: Schema) -> "StreamTuple":
        """Re-shape this tuple onto *schema* (a projection of its own)."""
        return StreamTuple(schema, tuple(self[name] for name in schema.attribute_names))

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, StreamTuple)
            and self._schema == other._schema
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return hash((self._schema, self._values))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={value!r}"
            for name, value in zip(self._schema.attribute_names, self._values)
        )
        return f"StreamTuple({self._schema.name}: {inner})"


def make_tuple(schema: Schema, record: Mapping[str, Any]) -> StreamTuple:
    """Build a validated :class:`StreamTuple` from a mapping.

    Every schema field must be present in *record* (case-insensitive);
    extra keys are rejected so typos surface immediately.  Values are
    coerced via :meth:`DataType.coerce`.
    """
    lowered = {key.lower(): value for key, value in record.items()}
    if len(lowered) != len(record):
        raise SchemaError(f"record has duplicate keys (case-insensitive): {sorted(record)}")
    values = []
    for field in schema:
        key = field.name.lower()
        if key not in lowered:
            raise SchemaError(f"record is missing attribute {field.name!r}")
        values.append(field.dtype.coerce(lowered.pop(key)))
    if lowered:
        raise SchemaError(
            f"record has attributes not in schema {schema.name!r}: {sorted(lowered)}"
        )
    return StreamTuple(schema, tuple(values))


def make_tuples(schema: Schema, records: Iterable[Mapping[str, Any]]):
    """Build a list of validated tuples from an iterable of mappings."""
    return [make_tuple(schema, record) for record in records]


def extract_columns(
    tuples: Sequence[StreamTuple], positions: Sequence[int]
) -> List[List[Any]]:
    """Transpose a same-schema batch into per-position value columns.

    The row→column pivot shared by the batch execution paths: the
    columnar window buffers extend their per-attribute ring buffers
    with the result, and projection-style consumers get schema-ordered
    vectors without one name lookup per tuple per attribute.  The rows
    are materialized once, then each requested position is gathered in
    its own tight pass.
    """
    rows = [t.values for t in tuples]
    return [[row[position] for row in rows] for position in positions]
