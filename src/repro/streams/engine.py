"""The stream engine: registration and continuous execution of queries.

This is the reproduction's StreamBase stand-in.  The engine owns a
:class:`~repro.streams.catalog.StreamCatalog` of input streams, accepts
continuous queries either as :class:`~repro.streams.graph.QueryGraph`
objects or as StreamSQL scripts, runs each registered query continuously
(push-based: every appended input tuple flows through every attached
query), and exposes query outputs through
:class:`~repro.streams.handles.StreamHandle` URIs.

Queries can be *withdrawn* — the revocation primitive that Section 3.3's
query-graph management relies on when a policy is removed or modified.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.errors import EngineError, UnknownHandleError
from repro.streams.catalog import StreamCatalog
from repro.streams.graph import QueryGraph, QueryGraphInstance
from repro.streams.handles import StreamHandle
from repro.streams.plan import SharedQuery, StreamPlan
from repro.streams.schema import Schema
from repro.streams.stream import Stream
from repro.streams.tuples import StreamTuple, make_tuple


class RegisteredQuery:
    """A live continuous query: instance + output stream + handle.

    The query subscribes to its source as a *batch listener*: every
    appended batch triggers exactly one pipeline invocation
    (:meth:`QueryGraphInstance.process_many`), and single appends arrive
    as length-1 batches routed through the per-tuple fast path.
    """

    def __init__(
        self,
        handle: StreamHandle,
        instance: QueryGraphInstance,
        output: Stream,
        source: Stream,
    ):
        self.handle = handle
        self.instance = instance
        self.output = output
        self._source = source
        self._listener = self._on_batch
        self.active = True
        source.add_batch_listener(self._listener)

    def _on_batch(self, tuples: Sequence[StreamTuple]) -> None:
        # The guard makes mid-dispatch withdrawal safe: a withdrawn
        # query may still sit in an in-flight listener snapshot, and
        # must neither process tuples nor append to its closed output.
        # (Withdraw-mid-batch truncation is handled by the stream, which
        # flushes the already-dispatched prefix to this callback while
        # the query is still active — see Stream.remove_batch_listener.)
        if not self.active:
            return
        if len(tuples) == 1:
            outputs = self.instance.process(tuples[0])
        else:
            outputs = self.instance.process_many(tuples)
        if not outputs:
            return
        if len(outputs) == 1:
            self.output.append(outputs[0])
        else:
            self.output.append_batch(outputs)

    def withdraw(self) -> None:
        """Detach from the input stream and close the output.

        Removing the batch listener first lets the stream flush the
        in-flight prefix of a mid-batch withdrawal (while the query is
        still active and its output still open), so batched revocation
        is output-identical to the per-tuple path.
        """
        if self.active:
            self._source.remove_batch_listener(self._listener)
            self.output.close()
            self.active = False

    @property
    def output_schema(self) -> Schema:
        return self.instance.output_schema

    def __repr__(self) -> str:
        state = "active" if self.active else "withdrawn"
        return f"RegisteredQuery({self.handle.uri}, {state})"


class StreamEngine:
    """A single-host Aurora-model DSMS.

    By default queries run on the compiled + batched execution path
    (filter conditions compiled to closures per schema, pipelines
    evaluated batch-at-a-time, window aggregation on columnar buffers
    with incremental aggregate states) **and** on a shared execution
    plan per input stream (:class:`~repro.streams.plan.StreamPlan`):
    queries with identical — or provably subsuming — operator prefixes
    share DAG nodes, so a pushed batch is filtered/windowed once per
    distinct prefix instead of once per query.  ``shared=False`` keeps
    the compiled path but runs one private pipeline per query (the
    pre-plan execution model, and the baseline
    ``benchmarks/bench_multiquery.py`` measures against).

    ``compiled=False`` — or the :meth:`reference` constructor — pins
    every query to the seed per-tuple interpreted path (row-oriented
    window buffers, recompute-per-window aggregation, one pipeline per
    query), the reference mode for differential testing, mirroring
    ``PolicyDecisionPoint.reference()``.
    """

    def __init__(
        self,
        host: str = "dsms.local",
        compiled: bool = True,
        shared: Optional[bool] = None,
    ):
        self.host = host
        self.compiled = compiled
        #: Shared-plan execution defaults to following the compiled
        #: flag, so ``reference()`` stays the seed per-query path.
        self.shared = compiled if shared is None else shared
        self.catalog = StreamCatalog()
        self._queries: Dict[str, Union[RegisteredQuery, SharedQuery]] = {}
        #: One shared plan per input stream (keyed by stream identity),
        #: created lazily at first registration.
        self._plans: Dict[int, StreamPlan] = {}
        #: Count of queries ever registered (for monitoring/benchmarks).
        self.total_registered = 0
        #: Count of queries withdrawn; ``total_registered -
        #: total_withdrawn == active_query_count`` at all times.
        self.total_withdrawn = 0

    @classmethod
    def reference(cls, host: str = "dsms.local") -> "StreamEngine":
        """An engine on the seed interpreted per-tuple execution path."""
        return cls(host, compiled=False)

    # -- input streams ---------------------------------------------------------

    def register_input_stream(self, name: str, schema: Schema) -> Stream:
        """Declare an input stream; returns the backing :class:`Stream`."""
        return self.catalog.register(name, schema)

    def push(self, stream_name: str, record: Union[StreamTuple, Mapping[str, Any]]) -> None:
        """Append one record (tuple or mapping) to an input stream.

        Every query registered on the stream processes the record
        immediately — the continuous-query semantics of the Aurora model.
        """
        stream = self.catalog.get(stream_name)
        if not isinstance(record, StreamTuple):
            record = make_tuple(stream.schema, record)
        stream.append(record)

    #: Records per dispatch chunk: large enough to amortize the
    #: per-append overhead, small enough that an unbounded generator
    #: never materializes in memory (push stays O(chunk), like the old
    #: per-record loop).
    INGEST_CHUNK = 4096

    def push_batch(
        self, stream_name: str, records: Iterable[Union[StreamTuple, Mapping[str, Any]]]
    ) -> int:
        """Append many records with one catalog lookup and one dispatch
        per :attr:`INGEST_CHUNK` records.

        Output-equivalent to pushing each record individually (tuples are
        still delivered to every query in order, one at a time), but the
        per-push overhead — catalog lookup, listener snapshot, schema
        check, buffer trim — is amortized over each chunk.
        """
        stream = self.catalog.get(stream_name)
        schema = stream.schema
        count = 0
        chunk: List[StreamTuple] = []
        for record in records:
            chunk.append(
                record if isinstance(record, StreamTuple) else make_tuple(schema, record)
            )
            if len(chunk) >= self.INGEST_CHUNK:
                count += stream.append_batch(chunk)
                chunk = []
        if chunk:
            count += stream.append_batch(chunk)
        return count

    def push_many(
        self, stream_name: str, records: Iterable[Union[StreamTuple, Mapping[str, Any]]]
    ) -> int:
        return self.push_batch(stream_name, records)

    # -- continuous queries ------------------------------------------------------

    def register_query(
        self, graph: QueryGraph, handle: Optional[StreamHandle] = None
    ) -> StreamHandle:
        """Install a continuous query; returns its stream handle.

        The graph is validated against the source stream's schema before
        anything is installed, so an invalid graph changes no engine state.

        On a shared engine the query is attached to the source stream's
        :class:`~repro.streams.plan.StreamPlan`, sharing operator nodes
        with same-prefix queries; otherwise it gets a private pipeline.
        """
        source = self.catalog.get(graph.source)
        if handle is None:
            handle = StreamHandle.allocate(self.host)
        if handle.uri in self._queries:
            raise EngineError(f"handle {handle.uri!r} is already in use")
        if self.shared:
            plan = self._plans.get(id(source))
            if plan is None:
                plan = self._plans[id(source)] = StreamPlan(
                    source, compiled=self.compiled
                )
            query: Union[RegisteredQuery, SharedQuery] = plan.attach(graph, handle)
        else:
            instance = graph.instantiate(source.schema, compiled=self.compiled)
            output = Stream(handle.query_id, instance.output_schema)
            query = RegisteredQuery(handle, instance, output, source)
        self._queries[handle.uri] = query
        self.total_registered += 1
        return handle

    def register_streamsql(self, script: str) -> StreamHandle:
        """Parse a StreamSQL script and register the resulting query.

        ``CREATE INPUT STREAM`` statements in the script declare the input
        stream if it is not yet in the catalog (and are checked for schema
        agreement when it is).
        """
        from repro.streams.streamsql.parser import parse_streamsql

        parsed = parse_streamsql(script)
        if parsed.input_schema is not None:
            name = parsed.graph.source
            if name in self.catalog:
                existing = self.catalog.schema(name)
                if existing != parsed.input_schema:
                    raise EngineError(
                        f"script redeclares stream {name!r} with a different schema"
                    )
            else:
                self.register_input_stream(name, parsed.input_schema)
        return self.register_query(parsed.graph)

    def lookup(
        self, handle: Union[StreamHandle, str]
    ) -> Union[RegisteredQuery, SharedQuery]:
        uri = StreamHandle.uri_of(handle)
        query = self._queries.get(uri)
        if query is None or not query.active:
            raise UnknownHandleError(uri)
        return query

    def read(
        self, handle: Union[StreamHandle, str], limit: Optional[int] = None
    ) -> List[StreamTuple]:
        """Read the retained output of a query (non-consuming snapshot)."""
        query = self.lookup(handle)
        snapshot = query.output.snapshot()
        return snapshot if limit is None else snapshot[-limit:]

    def subscribe(self, handle: Union[StreamHandle, str], from_start: bool = True):
        """Subscribe a pull cursor to a query's output stream."""
        return self.lookup(handle).output.subscribe(from_start=from_start)

    def withdraw(self, handle: Union[StreamHandle, str]) -> None:
        """Remove a continuous query (revocation).

        Withdrawing an unknown or already-withdrawn handle raises
        :class:`UnknownHandleError` so revocation failures are loud.
        """
        uri = StreamHandle.uri_of(handle)
        query = self._queries.get(uri)
        if query is None:
            raise UnknownHandleError(uri)
        query.withdraw()
        del self._queries[uri]
        self.total_withdrawn += 1

    def active_queries(self) -> List[Union[RegisteredQuery, SharedQuery]]:
        return [q for q in self._queries.values() if q.active]

    @property
    def active_query_count(self) -> int:
        """Live queries right now (``total_registered - total_withdrawn``)."""
        return len(self._queries)

    def plan_stats(self) -> Dict[str, Dict[str, int]]:
        """Shared-plan shape per input stream (empty for per-query engines).

        Each entry reports ``queries`` (live sinks), ``live_nodes``
        (operator nodes currently in the DAG — the churn harness asserts
        this returns to zero once every handle withdraws),
        ``nodes_created`` / ``nodes_shared`` (prefix-merge hits) /
        ``nodes_subsumed`` (subsumption-fed filters), cumulatively.
        """
        return {plan.source.name: plan.stats() for plan in self._plans.values()}

    def __len__(self) -> int:
        return len(self._queries)
