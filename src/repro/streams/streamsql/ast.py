"""Statement-level AST for StreamSQL scripts."""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple

from repro.expr.ast import BooleanExpression
from repro.streams.operators.window import WindowSpec
from repro.streams.schema import Schema


class CreateInputStream(NamedTuple):
    """``CREATE INPUT STREAM name (field type, ...);``"""

    schema: Schema


class CreateStream(NamedTuple):
    """``CREATE [OUTPUT] STREAM name;``"""

    name: str
    is_output: bool


class CreateWindow(NamedTuple):
    """``CREATE WINDOW name (SIZE n ADVANCE m TUPLES|SECONDS);``"""

    name: str
    spec: WindowSpec


class SelectItem(NamedTuple):
    """One select-list entry.

    ``function`` is None for a plain attribute reference.  ``alias`` is
    the optional ``AS`` name.  A bare ``*`` select list is represented by
    ``SelectStatement.star``.
    """

    attribute: str
    function: Optional[str]
    alias: Optional[str]


class SelectStatement(NamedTuple):
    """``SELECT items FROM source[window] [WHERE cond] INTO target;``"""

    star: bool
    items: Tuple[SelectItem, ...]
    source: str
    window_name: Optional[str]
    condition: Optional[BooleanExpression]
    target: str


Statement = object  # union of the NamedTuples above


class Script(NamedTuple):
    """An ordered list of parsed statements."""

    statements: List[Statement]
