"""StreamSQL: the SQL-like surface syntax for query graphs.

StreamBase ships StreamSQL, "a SQL-like representation of query graphs"
(paper Section 2.1); the PEP converts merged query graphs into StreamSQL
scripts before submitting them to the DSMS (Section 3.2, step 5).  This
package implements the dialect exercised by the paper's Figure 4(b):

- ``CREATE INPUT STREAM name (field type, ...);``
- ``CREATE [OUTPUT] STREAM name;``
- ``CREATE WINDOW name (SIZE n ADVANCE m TUPLES|SECONDS);``
- ``SELECT select_list FROM source[window] [WHERE condition] INTO target;``

:func:`generate_streamsql` renders a :class:`~repro.streams.graph.QueryGraph`
into a script in exactly the paper's style; :func:`parse_streamsql` parses
a script back into a graph, so the two are inverse up to naming.
"""

from repro.streams.streamsql.generator import generate_streamsql
from repro.streams.streamsql.parser import ParsedScript, parse_streamsql

__all__ = ["generate_streamsql", "parse_streamsql", "ParsedScript"]
