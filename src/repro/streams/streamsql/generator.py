"""Generator: QueryGraph → StreamSQL script (the paper's Figure 4(b) style).

The PEP's final step converts the merged query graph into a StreamSQL
script and sends it to the data stream engine.  The emitted script uses
the exact statement shapes of the paper: a ``CREATE INPUT STREAM``
declaring the source schema, one internal stream per intermediate edge,
a named ``CREATE WINDOW`` for the aggregation, and a final stream named
``output``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import GraphError
from repro.streams.graph import QueryGraph
from repro.streams.operators.filter import FilterOperator
from repro.streams.operators.map import MapOperator
from repro.streams.operators.window import AggregateOperator, WindowType
from repro.streams.schema import Schema


def generate_streamsql(
    graph: QueryGraph,
    input_schema: Optional[Schema] = None,
    output_name: str = "output",
) -> str:
    """Render *graph* as a StreamSQL script.

    When *input_schema* is given, a ``CREATE INPUT STREAM`` statement
    declares it (needed when the engine has not seen the stream before);
    otherwise the script assumes the stream already exists.
    """
    lines: List[str] = []
    if input_schema is not None:
        fields = ", ".join(f"{f.name} {f.dtype.value}" for f in input_schema)
        lines.append(f"CREATE INPUT STREAM {graph.source} ({fields});")

    operators = graph.operators
    if not operators:
        # A passthrough still needs one statement so the engine creates an
        # output stream; emit an always-true filter.
        lines.append(f"CREATE OUTPUT STREAM {output_name};")
        lines.append(f"SELECT * FROM {graph.source} WHERE TRUE INTO {output_name};")
        return "\n".join(lines) + "\n"

    current = graph.source
    for index, operator in enumerate(operators):
        is_last = index == len(operators) - 1
        target = output_name if is_last else f"internal_{index}"
        create_kw = "OUTPUT STREAM" if is_last else "STREAM"
        if isinstance(operator, FilterOperator):
            lines.append(f"CREATE {create_kw} {target};")
            condition = operator.condition.to_condition_string()
            lines.append(f"SELECT * FROM {current} WHERE {condition} INTO {target};")
        elif isinstance(operator, MapOperator):
            lines.append(f"CREATE {create_kw} {target};")
            select_list = ", ".join(f"{current}.{a}" for a in operator.attributes)
            lines.append(f"SELECT {select_list} FROM {current} INTO {target};")
        elif isinstance(operator, AggregateOperator):
            window = operator.window
            unit = "TUPLES" if window.window_type is WindowType.TUPLE else "SECONDS"
            window_name = f"_{window.size}{window.window_type.value}_{index}"
            lines.append(f"CREATE {create_kw} {target};")
            lines.append(
                f"CREATE WINDOW {window_name} (SIZE {window.size} "
                f"ADVANCE {window.step} {unit});"
            )
            select_list = ", ".join(
                f"{spec.function.name}({spec.attribute}) AS "
                f"{spec.function.name}{spec.attribute}"
                for spec in operator.aggregations
            )
            lines.append(
                f"SELECT {select_list} FROM {current}[{window_name}] INTO {target};"
            )
        else:
            raise GraphError(
                f"cannot generate StreamSQL for operator kind {operator.kind!r}"
            )
        current = target
    return "\n".join(lines) + "\n"
