"""Parser: StreamSQL scripts → statements → a QueryGraph.

Parsing happens in two phases.  Phase 1 turns the token stream into
statement objects (:mod:`repro.streams.streamsql.ast`).  Phase 2 links the
``SELECT ... INTO ...`` chain from the input stream to the final output
stream and lowers each SELECT into Aurora boxes:

- ``SELECT * ... WHERE c``        → filter(c)
- ``SELECT a, b ...``             → map(a, b)   (with an optional filter first)
- ``SELECT f(a), g(b) FROM s[w]`` → window aggregation
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.errors import StreamSQLError
from repro.expr.ast import BooleanExpression
from repro.expr.parser import parse_condition
from repro.streams.graph import QueryGraph
from repro.streams.operators.aggregate import get_aggregate_function
from repro.streams.operators.filter import FilterOperator
from repro.streams.operators.map import MapOperator
from repro.streams.operators.window import (
    AggregateOperator,
    AggregationSpec,
    WindowSpec,
    WindowType,
)
from repro.streams.schema import Field, Schema
from repro.streams.streamsql import ast as sql_ast
from repro.streams.streamsql.lexer import SqlToken, SqlTokenType, tokenize_sql


class ParsedScript(NamedTuple):
    """Result of parsing one script: the query graph and input schema.

    ``input_schema`` is None when the script contains no
    ``CREATE INPUT STREAM`` (the stream is expected to pre-exist in the
    engine catalog).
    """

    graph: QueryGraph
    input_schema: Optional[Schema]
    output_name: str


class _TokenCursor:
    def __init__(self, text: str, tokens: List[SqlToken]):
        self.text = text
        self._tokens = tokens
        self._index = 0

    def peek(self, ahead: int = 0) -> SqlToken:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> SqlToken:
        token = self._tokens[self._index]
        if token.type is not SqlTokenType.END:
            self._index += 1
        return token

    def at_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.type is SqlTokenType.IDENT and token.upper in words

    def expect_keyword(self, word: str) -> SqlToken:
        token = self.peek()
        if token.type is not SqlTokenType.IDENT or token.upper != word:
            raise StreamSQLError(
                f"expected {word}, found {token.text or 'end of script'!r}",
                line=token.line,
                column=token.column,
            )
        return self.advance()

    def expect(self, token_type: SqlTokenType) -> SqlToken:
        token = self.peek()
        if token.type is not token_type:
            raise StreamSQLError(
                f"expected {token_type.value!r}, found {token.text or 'end of script'!r}",
                line=token.line,
                column=token.column,
            )
        return self.advance()

    def expect_ident(self) -> SqlToken:
        token = self.peek()
        if token.type is not SqlTokenType.IDENT:
            raise StreamSQLError(
                f"expected an identifier, found {token.text or 'end of script'!r}",
                line=token.line,
                column=token.column,
            )
        return self.advance()

    @property
    def done(self) -> bool:
        return self.peek().type is SqlTokenType.END


def parse_script(text: str) -> sql_ast.Script:
    """Phase 1: parse *text* into a list of statements."""
    cursor = _TokenCursor(text, tokenize_sql(text))
    statements: List[object] = []
    while not cursor.done:
        if cursor.at_keyword("CREATE"):
            statements.append(_parse_create(cursor))
        elif cursor.at_keyword("SELECT"):
            statements.append(_parse_select(cursor))
        else:
            token = cursor.peek()
            raise StreamSQLError(
                f"expected CREATE or SELECT, found {token.text!r}",
                line=token.line,
                column=token.column,
            )
    return sql_ast.Script(statements)


def _parse_create(cursor: _TokenCursor):
    cursor.expect_keyword("CREATE")
    if cursor.at_keyword("WINDOW"):
        return _parse_create_window(cursor)
    is_input = False
    is_output = False
    if cursor.at_keyword("INPUT"):
        cursor.advance()
        is_input = True
    elif cursor.at_keyword("OUTPUT"):
        cursor.advance()
        is_output = True
    cursor.expect_keyword("STREAM")
    name = cursor.expect_ident().text
    if is_input:
        schema = _parse_schema_fields(cursor, name)
        cursor.expect(SqlTokenType.SEMI)
        return sql_ast.CreateInputStream(schema)
    # CREATE [OUTPUT] STREAM name [(fields)] ;  — fields optional for
    # internal/output streams (the engine infers their schemas).
    if cursor.peek().type is SqlTokenType.LPAREN:
        _parse_schema_fields(cursor, name)
    cursor.expect(SqlTokenType.SEMI)
    return sql_ast.CreateStream(name, is_output)


def _parse_schema_fields(cursor: _TokenCursor, stream_name: str) -> Schema:
    cursor.expect(SqlTokenType.LPAREN)
    fields: List[Field] = []
    while True:
        field_name = cursor.expect_ident().text
        type_name = cursor.expect_ident().text
        fields.append(Field(field_name, type_name))
        if cursor.peek().type is SqlTokenType.COMMA:
            cursor.advance()
            continue
        break
    cursor.expect(SqlTokenType.RPAREN)
    return Schema(stream_name, fields)


def _parse_create_window(cursor: _TokenCursor) -> sql_ast.CreateWindow:
    cursor.expect_keyword("WINDOW")
    name = cursor.expect_ident().text
    cursor.expect(SqlTokenType.LPAREN)
    cursor.expect_keyword("SIZE")
    size = _expect_int(cursor)
    cursor.expect_keyword("ADVANCE")
    step = _expect_int(cursor)
    unit_token = cursor.expect_ident()
    if unit_token.upper in ("TUPLE", "TUPLES"):
        window_type = WindowType.TUPLE
    elif unit_token.upper in ("SECOND", "SECONDS", "TIME"):
        window_type = WindowType.TIME
    else:
        raise StreamSQLError(
            f"expected TUPLES or SECONDS, found {unit_token.text!r}",
            line=unit_token.line,
            column=unit_token.column,
        )
    cursor.expect(SqlTokenType.RPAREN)
    cursor.expect(SqlTokenType.SEMI)
    return sql_ast.CreateWindow(name, WindowSpec(window_type, size, step))


def _expect_int(cursor: _TokenCursor) -> int:
    token = cursor.expect(SqlTokenType.NUMBER)
    try:
        return int(token.text)
    except ValueError:
        raise StreamSQLError(
            f"expected an integer, found {token.text!r}",
            line=token.line,
            column=token.column,
        ) from None


def _parse_select(cursor: _TokenCursor) -> sql_ast.SelectStatement:
    cursor.expect_keyword("SELECT")
    star = False
    items: List[sql_ast.SelectItem] = []
    if cursor.peek().type is SqlTokenType.STAR:
        cursor.advance()
        star = True
    else:
        while True:
            items.append(_parse_select_item(cursor))
            if cursor.peek().type is SqlTokenType.COMMA:
                cursor.advance()
                # Tolerate a trailing comma before FROM (the paper's own
                # Figure 4(b) contains one).
                if cursor.at_keyword("FROM"):
                    break
                continue
            break
    cursor.expect_keyword("FROM")
    source = cursor.expect_ident().text
    window_name: Optional[str] = None
    if cursor.peek().type is SqlTokenType.LBRACKET:
        cursor.advance()
        window_name = cursor.expect_ident().text
        cursor.expect(SqlTokenType.RBRACKET)
    condition: Optional[BooleanExpression] = None
    if cursor.at_keyword("WHERE"):
        cursor.advance()
        condition = _parse_where(cursor)
    cursor.expect_keyword("INTO")
    target = cursor.expect_ident().text
    cursor.expect(SqlTokenType.SEMI)
    return sql_ast.SelectStatement(
        star, tuple(items), source, window_name, condition, target
    )


def _parse_select_item(cursor: _TokenCursor) -> sql_ast.SelectItem:
    first = cursor.expect_ident()
    function: Optional[str] = None
    attribute = first.text
    if cursor.peek().type is SqlTokenType.LPAREN:
        function = first.text
        cursor.advance()
        attribute = _parse_attribute_ref(cursor)
        cursor.expect(SqlTokenType.RPAREN)
    elif cursor.peek().type is SqlTokenType.DOT:
        cursor.advance()
        attribute = cursor.expect_ident().text  # drop the stream qualifier
    alias: Optional[str] = None
    if cursor.at_keyword("AS"):
        cursor.advance()
        alias = cursor.expect_ident().text
    return sql_ast.SelectItem(attribute, function, alias)


def _parse_attribute_ref(cursor: _TokenCursor) -> str:
    name = cursor.expect_ident().text
    if cursor.peek().type is SqlTokenType.DOT:
        cursor.advance()
        name = cursor.expect_ident().text
    return name


def _parse_where(cursor: _TokenCursor) -> BooleanExpression:
    """Parse a WHERE clause by delegating to the condition grammar.

    The clause runs until the INTO keyword; the raw substring between is
    handed to :func:`repro.expr.parser.parse_condition`, keeping one
    authoritative grammar for conditions.
    """
    start_token = cursor.peek()
    depth = 0
    end_position = start_token.position
    while True:
        token = cursor.peek()
        if token.type is SqlTokenType.END:
            raise StreamSQLError(
                "WHERE clause not terminated by INTO",
                line=token.line,
                column=token.column,
            )
        if token.type is SqlTokenType.LPAREN:
            depth += 1
        elif token.type is SqlTokenType.RPAREN:
            depth -= 1
        elif depth == 0 and token.type is SqlTokenType.IDENT and token.upper == "INTO":
            break
        end_position = token.position + len(token.text)
        cursor.advance()
    clause = cursor.text[start_token.position : end_position]
    # Strip stream qualifiers ("internal_0.rainrate" → "rainrate").
    return parse_condition(_strip_qualifiers(clause))


def _strip_qualifiers(clause: str) -> str:
    import re

    return re.sub(r"\b([A-Za-z_][A-Za-z0-9_]*)\s*\.\s*([A-Za-z_][A-Za-z0-9_]*)", r"\2", clause)


# ---------------------------------------------------------------------------
# Phase 2: lower statements into a QueryGraph
# ---------------------------------------------------------------------------

def parse_streamsql(text: str) -> ParsedScript:
    """Parse a full script into a :class:`ParsedScript`.

    The script must contain a single chain of SELECT statements leading
    from one source stream to one final target; branching scripts are
    rejected (the paper's PEP only ever emits chains).
    """
    script = parse_script(text)
    input_schema: Optional[Schema] = None
    windows: Dict[str, WindowSpec] = {}
    selects: List[sql_ast.SelectStatement] = []
    declared: Dict[str, bool] = {}

    for statement in script.statements:
        if isinstance(statement, sql_ast.CreateInputStream):
            if input_schema is not None:
                raise StreamSQLError("script declares more than one INPUT STREAM")
            input_schema = statement.schema
            declared[statement.schema.name.lower()] = True
        elif isinstance(statement, sql_ast.CreateStream):
            declared[statement.name.lower()] = True
        elif isinstance(statement, sql_ast.CreateWindow):
            windows[statement.name.lower()] = statement.spec
        elif isinstance(statement, sql_ast.SelectStatement):
            selects.append(statement)

    if not selects:
        raise StreamSQLError("script contains no SELECT statement")

    chain, source, output_name = _order_chain(selects)
    graph = QueryGraph(source)
    for select in chain:
        for operator in _lower_select(select, windows):
            graph.append(operator)
    return ParsedScript(graph, input_schema, output_name)


def _order_chain(
    selects: List[sql_ast.SelectStatement],
) -> Tuple[List[sql_ast.SelectStatement], str, str]:
    by_source: Dict[str, sql_ast.SelectStatement] = {}
    targets = set()
    for select in selects:
        key = select.source.lower()
        if key in by_source:
            raise StreamSQLError(f"stream {select.source!r} feeds two SELECT statements")
        by_source[key] = select
        targets.add(select.target.lower())
    roots = [s for s in selects if s.source.lower() not in targets]
    if len(roots) != 1:
        raise StreamSQLError(
            f"script must form a single SELECT chain; found {len(roots)} chain heads"
        )
    chain: List[sql_ast.SelectStatement] = []
    current = roots[0]
    seen = set()
    while True:
        if id(current) in seen:
            raise StreamSQLError("SELECT statements form a cycle")
        seen.add(id(current))
        chain.append(current)
        next_select = by_source.get(current.target.lower())
        if next_select is None:
            break
        current = next_select
    if len(chain) != len(selects):
        raise StreamSQLError("script contains SELECT statements outside the main chain")
    return chain, roots[0].source, chain[-1].target


def _lower_select(
    select: sql_ast.SelectStatement, windows: Dict[str, WindowSpec]
) -> List[object]:
    operators: List[object] = []
    if select.condition is not None:
        operators.append(FilterOperator(select.condition))
    if select.window_name is not None:
        spec = windows.get(select.window_name.lower())
        if spec is None:
            raise StreamSQLError(f"undefined window {select.window_name!r}")
        aggregations = []
        for item in select.items:
            if item.function is None:
                raise StreamSQLError(
                    f"windowed SELECT must aggregate every column; "
                    f"{item.attribute!r} has no aggregate function"
                )
            aggregations.append(
                AggregationSpec(item.attribute, get_aggregate_function(item.function))
            )
        if select.star or not aggregations:
            raise StreamSQLError("windowed SELECT cannot use *")
        operators.append(AggregateOperator(spec, aggregations))
        return operators
    if select.star:
        if select.condition is None:
            raise StreamSQLError(
                f"SELECT * FROM {select.source} without WHERE or window is a no-op"
            )
        return operators
    if any(item.function is not None for item in select.items):
        raise StreamSQLError("aggregate functions require a [window] on the source")
    operators.append(MapOperator([item.attribute for item in select.items]))
    return operators
