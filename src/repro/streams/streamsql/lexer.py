"""Tokenizer for the StreamSQL dialect."""

from __future__ import annotations

import enum
from typing import Iterator, List, NamedTuple

from repro.errors import StreamSQLError


class SqlTokenType(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"          # comparison operators inside WHERE
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMI = ";"
    DOT = "."
    STAR = "*"
    END = "end"


class SqlToken(NamedTuple):
    type: SqlTokenType
    text: str
    position: int
    line: int
    column: int

    @property
    def upper(self) -> str:
        return self.text.upper()


_PUNCT = {
    "(": SqlTokenType.LPAREN,
    ")": SqlTokenType.RPAREN,
    "[": SqlTokenType.LBRACKET,
    "]": SqlTokenType.RBRACKET,
    ",": SqlTokenType.COMMA,
    ";": SqlTokenType.SEMI,
    ".": SqlTokenType.DOT,
    "*": SqlTokenType.STAR,
}

_TWO_CHAR_OPS = ("<=", ">=", "!=", "<>", "==")
_ONE_CHAR_OPS = ("<", ">", "=")


def tokenize_sql(text: str) -> List[SqlToken]:
    """Tokenize a full StreamSQL script (comments: ``--`` to end of line)."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[SqlToken]:
    i = 0
    n = len(text)
    line = 1
    line_start = 0

    def make(token_type: SqlTokenType, start: int, end: int) -> SqlToken:
        return SqlToken(token_type, text[start:end], start, line, start - line_start + 1)

    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        two = text[i : i + 2]
        if two in _TWO_CHAR_OPS:
            yield make(SqlTokenType.OP, i, i + 2)
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            yield make(SqlTokenType.OP, i, i + 1)
            i += 1
            continue
        if ch in _PUNCT:
            # A dot starting a number (".5") is numeric, not punctuation.
            if ch == "." and i + 1 < n and text[i + 1].isdigit():
                pass
            else:
                yield make(_PUNCT[ch], i, i + 1)
                i += 1
                continue
        if ch == "'":
            j = i + 1
            while j < n:
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        j += 2
                        continue
                    break
                j += 1
            else:
                raise StreamSQLError(
                    "unterminated string literal", line=line, column=i - line_start + 1
                )
            yield make(SqlTokenType.STRING, i, j + 1)
            i = j + 1
            continue
        if ch.isdigit() or ch == ".":
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    seen_dot = True
                j += 1
            yield make(SqlTokenType.NUMBER, i, j)
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            yield make(SqlTokenType.IDENT, i, j)
            i = j
            continue
        raise StreamSQLError(
            f"unexpected character {ch!r}", line=line, column=i - line_start + 1
        )
    yield SqlToken(SqlTokenType.END, "", n, line, n - line_start + 1)
