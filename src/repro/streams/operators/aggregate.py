"""Aggregate functions applied over sliding windows.

The paper's obligation vocabulary draws aggregate functions from the set
{Avg, Max, Min, Count, LastValue, FirstValue, ...}; Example 2 relies on
Sum.  Functions are looked up through a registry so downstream users can
add their own (they must be registered on both the policy- and the
engine-side to be usable in obligations).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Sequence

from repro.errors import StreamError
from repro.streams.schema import DataType, Field


class AggregateFunction:
    """A named aggregate with its result-type rule.

    ``result_dtype`` maps the aggregated field's type to the output type:
    ``count`` always yields INT, ``avg``/``stdev`` always DOUBLE, while
    order statistics (min/max/first/last/median/sum) preserve the input
    type (sum of ints is an int; sum widens timestamps to double).
    """

    def __init__(
        self,
        name: str,
        compute: Callable[[Sequence], object],
        result_dtype: Callable[[DataType], DataType],
        requires_numeric: bool = True,
    ):
        self.name = name.lower()
        self._compute = compute
        self._result_dtype = result_dtype
        self.requires_numeric = requires_numeric

    def validate_field(self, field: Field) -> None:
        if self.requires_numeric and not field.is_numeric:
            raise StreamError(
                f"aggregate {self.name!r} requires a numeric attribute, but "
                f"{field.name!r} has type {field.dtype.value}"
            )

    def result_field(self, field: Field) -> Field:
        """The output field produced by applying this function to *field*.

        Output naming follows the paper's Figure 4(b): ``avg(rainrate)``
        becomes ``avgrainrate``.
        """
        self.validate_field(field)
        return Field(f"{self.name}{field.name}", self._result_dtype(field.dtype))

    def compute(self, values: Sequence) -> object:
        if not values:
            raise StreamError(f"aggregate {self.name!r} applied to an empty window")
        return self._compute(values)

    def __repr__(self) -> str:
        return f"AggregateFunction({self.name!r})"


def _preserve(dtype: DataType) -> DataType:
    return dtype


def _always_double(_: DataType) -> DataType:
    return DataType.DOUBLE


def _always_int(_: DataType) -> DataType:
    return DataType.INT


def _sum_dtype(dtype: DataType) -> DataType:
    return DataType.INT if dtype is DataType.INT else DataType.DOUBLE


def _median(values: Sequence) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _stdev(values: Sequence) -> float:
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return math.sqrt(variance)


#: Registry of built-in aggregate functions, keyed by lower-case name.
AGGREGATE_FUNCTIONS: Dict[str, AggregateFunction] = {}


def register_aggregate_function(function: AggregateFunction) -> None:
    """Add *function* to the registry (replacing any same-named one)."""
    AGGREGATE_FUNCTIONS[function.name] = function


def get_aggregate_function(name: str) -> AggregateFunction:
    """Look up an aggregate function by (case-insensitive) name.

    Accepts the paper's spelling variants: ``lastval``/``lastvalue`` and
    ``firstval``/``firstvalue``.
    """
    key = name.strip().lower()
    aliases = {"lastvalue": "lastval", "firstvalue": "firstval", "average": "avg"}
    key = aliases.get(key, key)
    try:
        return AGGREGATE_FUNCTIONS[key]
    except KeyError:
        raise StreamError(
            f"unknown aggregate function {name!r}; known: "
            f"{sorted(AGGREGATE_FUNCTIONS)}"
        ) from None


for _function in (
    AggregateFunction("avg", lambda v: sum(v) / len(v), _always_double),
    AggregateFunction("sum", sum, _sum_dtype),
    AggregateFunction("min", min, _preserve),
    AggregateFunction("max", max, _preserve),
    AggregateFunction("count", len, _always_int, requires_numeric=False),
    AggregateFunction("lastval", lambda v: v[-1], _preserve, requires_numeric=False),
    AggregateFunction("firstval", lambda v: v[0], _preserve, requires_numeric=False),
    AggregateFunction("median", _median, _always_double),
    AggregateFunction("stdev", _stdev, _always_double),
):
    register_aggregate_function(_function)
