"""Aggregate functions applied over sliding windows.

The paper's obligation vocabulary draws aggregate functions from the set
{Avg, Max, Min, Count, LastValue, FirstValue, ...}; Example 2 relies on
Sum.  Functions are looked up through a registry so downstream users can
add their own (they must be registered on both the policy- and the
engine-side to be usable in obligations).

Besides the whole-window ``compute`` callable, a function may carry an
*incremental state* factory (:class:`AggregateState`): a small object
that consumes window churn as ``insert``/``evict`` pairs and answers
``result`` in O(1) (median: O(log size), on paired heaps), so
overlapping sliding windows cost O(step) per advance instead of
O(size) per emission.  Functions registered without a state factory
(third-party registrations) transparently fall back to per-window
recomputation over the columnar buffer.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from typing import Callable, Dict, Optional, Sequence

from repro.errors import StreamError
from repro.streams.schema import DataType, Field


class AggregateState:
    """Incremental computation of one aggregate over a sliding window.

    The engine drives the state strictly window-fashion: values enter
    through :meth:`insert` and leave through :meth:`evict` in FIFO
    (arrival) order, mirroring how a sliding window advances.  The
    evicted value is always the oldest value still held, and is passed
    back in so sum-like states can reverse their update without storing
    the window themselves.  :meth:`result` may be called between any
    two operations and returns the aggregate over the currently-held
    values; the engine never asks for the result of an empty state.
    """

    __slots__ = ()

    def insert(self, value) -> None:
        """Add *value* (the newest window element)."""
        raise NotImplementedError

    def evict(self, value) -> None:
        """Remove *value* (always the oldest still-held element)."""
        raise NotImplementedError

    def result(self):
        """The aggregate over the currently-held values."""
        raise NotImplementedError

    def insert_many(self, values: Sequence) -> None:
        """Add *values* in order (newest last).

        Equivalent to one :meth:`insert` per value; states whose update
        distributes over a batch (sum, count, extremum) override this
        with a single C-speed reduction per batch.
        """
        insert = self.insert
        for value in values:
            insert(value)

    def evict_many(self, values: Sequence) -> None:
        """Remove *values*, the oldest still-held elements, in order."""
        evict = self.evict
        for value in values:
            evict(value)


class _CountState(AggregateState):
    __slots__ = ("n",)

    def __init__(self):
        self.n = 0

    def insert(self, value) -> None:
        self.n += 1

    def evict(self, value) -> None:
        self.n -= 1

    def insert_many(self, values) -> None:
        self.n += len(values)

    def evict_many(self, values) -> None:
        self.n -= len(values)

    def result(self):
        return self.n


class _SumState(AggregateState):
    """Running total with Neumaier compensation.

    A bare running total permanently loses whatever a large-magnitude
    intermediate absorbs: insert 1e16, insert 1.0 (rounded away — the
    ulp at 1e16 is 2), evict the 1e16, and the window reports 0.0
    forever after.  The compensation term catches what every add and
    subtract rounds off, so the held error stays at ulp scale relative
    to the data instead of to transient peaks; a fresh recomputation
    can still differ by a few ulps (the equivalence harness uses
    tolerances for double columns).  Int streams stay exact — every
    correction is then exactly zero and arbitrary-precision int
    arithmetic does the rest.
    """

    __slots__ = ("total", "correction")

    def __init__(self):
        self.total = 0
        self.correction = 0

    def _add(self, value) -> None:
        total = self.total
        added = total + value
        if abs(total) >= abs(value):
            self.correction += (total - added) + value
        else:
            self.correction += (value - added) + total
        self.total = added

    def _add_batch(self, values, sign: int) -> None:
        """Compensated add of a whole batch.

        A plain ``sum(values)`` pre-collapse would round small values
        away *inside* the batch before the compensation could see them
        (batch ``[1e16, 1.0]`` sums to 1e16 with the 1.0 gone), so
        every value must pass through the compensated update.  Small
        batches (a typical window advance) run an inlined Neumaier
        loop; large batches take one C-speed ``sum`` pass plus one
        ``math.fsum`` pass recovering the exactly-rounded residual
        ``true − s`` through the compensated path.  An int batch sums
        exactly (arbitrary precision) and skips the residual pass,
        keeping all-int streams exact.
        """
        if len(values) <= 8:
            total = self.total
            correction = self.correction
            for value in values:
                if sign < 0:
                    value = -value
                added = total + value
                if abs(total) >= abs(value):
                    correction += (total - added) + value
                else:
                    correction += (value - added) + total
                total = added
            self.total = total
            self.correction = correction
            return
        batch_sum = sum(values)
        self._add(batch_sum if sign > 0 else -batch_sum)
        if type(batch_sum) is int:
            return
        residual = math.fsum(itertools.chain(values, (-batch_sum,)))
        if residual:
            self._add(residual if sign > 0 else -residual)

    def insert(self, value) -> None:
        self._add(value)

    def evict(self, value) -> None:
        self._add(-value)

    def insert_many(self, values) -> None:
        self._add_batch(values, 1)

    def evict_many(self, values) -> None:
        self._add_batch(values, -1)

    def result(self):
        return self.total + self.correction


class _AvgState(_SumState):
    __slots__ = ("n",)

    def __init__(self):
        super().__init__()
        self.n = 0

    def insert(self, value) -> None:
        self._add(value)
        self.n += 1

    def evict(self, value) -> None:
        self._add(-value)
        self.n -= 1

    def insert_many(self, values) -> None:
        self._add_batch(values, 1)
        self.n += len(values)

    def evict_many(self, values) -> None:
        self._add_batch(values, -1)
        self.n -= len(values)

    def result(self):
        return (self.total + self.correction) / self.n


class _WelfordState(AggregateState):
    """Welford running mean/M2, with the reverse update for eviction.

    Insertion is the textbook single-pass recurrence; eviction inverts
    it (solve the recurrence for the state without *value*).  Reverse
    updates can leave a tiny M2 residue — of either sign — when the
    window variance collapses, so the variance is clamped at zero *in
    the state*: a negative residue is zeroed eagerly on eviction (not
    merely masked in :meth:`result`, where it would still poison later
    updates), and a window whose held values are provably all equal
    snaps mean/M2 back to the exact ``(value, 0.0)`` state.

    Constancy is detected in O(1) through the *suffix run*: the length
    of the newest streak of identical values.  FIFO eviction only ever
    removes the oldest element, so the suffix run is invariant under
    eviction (capped at ``n``), and ``run == n`` is exactly "every held
    value is equal" — the window where a fresh recomputation answers
    0.0 and the incremental state historically answered ~1e-7 garbage
    (the drift the PR 4 fuzzer caught).  With the snap-back, constant
    windows are bit-exact and the fuzzer tolerance for them is exact
    too.
    """

    __slots__ = ("n", "mean", "m2", "_run_value", "_run_length")

    def __init__(self):
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0
        self._run_value = None
        self._run_length = 0

    def insert(self, value) -> None:
        self.n += 1
        if self._run_length and value == self._run_value:
            self._run_length += 1
        else:
            self._run_value = value
            self._run_length = 1
        if self._run_length >= self.n:
            # Every held value equals *value*: the exact state.
            self.mean = value
            self.m2 = 0.0
            return
        delta = value - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (value - self.mean)

    def evict(self, value) -> None:
        self.n -= 1
        if self._run_length > self.n:
            self._run_length = self.n
        if self.n == 0:
            self.mean = 0.0
            self.m2 = 0.0
            self._run_value = None
            self._run_length = 0
            return
        if self._run_length >= self.n:
            # The surviving values are all the suffix-run value.
            self.mean = self._run_value
            self.m2 = 0.0
            return
        delta = value - self.mean
        mean = self.mean - delta / self.n
        self.m2 -= (value - mean) * delta
        self.mean = mean
        if self.m2 < 0.0:
            # Variance cannot be negative; zero the rounding residue now
            # so it cannot compound through later reverse updates.
            self.m2 = 0.0

    def result(self):
        if self.n <= 1:
            return 0.0
        return math.sqrt(max(self.m2, 0.0) / (self.n - 1))


class _MinMaxState(AggregateState):
    """Sliding-window extremum via the two-stacks trick.

    The window is split into an *in* stack (newest values, with one
    running extremum) and an *out* stack (oldest values, each paired
    with the extremum of everything above it).  Insert pushes on *in*;
    evict pops from *out*, pouring *in* over when it runs dry — O(1)
    amortized, and exact (no floating-point reassociation).
    """

    __slots__ = ("_better", "_in", "_in_best", "_out")

    def __init__(self, better: Callable):
        self._better = better  # two-argument min or max
        self._in: list = []
        self._in_best = None
        self._out: list = []  # (value, extremum of this value and all newer)

    def insert(self, value) -> None:
        self._in.append(value)
        self._in_best = (
            value if self._in_best is None else self._better(self._in_best, value)
        )

    def insert_many(self, values) -> None:
        if not values:
            return
        self._in.extend(values)
        best = self._better(values)  # builtin min/max over the batch
        self._in_best = (
            best if self._in_best is None else self._better(self._in_best, best)
        )

    def evict(self, value) -> None:
        if not self._out:
            better = self._better
            out_append = self._out.append
            best = None
            while self._in:
                top = self._in.pop()
                best = top if best is None else better(best, top)
                out_append((top, best))
            self._in_best = None
        self._out.pop()

    def result(self):
        if not self._out:
            return self._in_best
        best = self._out[-1][1]
        return best if self._in_best is None else self._better(best, self._in_best)


class _FirstState(AggregateState):
    """Oldest held value; needs the FIFO itself (evictions expose the
    successor), so it keeps a deque of the window's values."""

    __slots__ = ("_queue",)

    def __init__(self):
        self._queue = deque()

    def insert(self, value) -> None:
        self._queue.append(value)

    def evict(self, value) -> None:
        self._queue.popleft()

    def insert_many(self, values) -> None:
        self._queue.extend(values)

    def evict_many(self, values) -> None:
        popleft = self._queue.popleft
        for _ in values:
            popleft()

    def result(self):
        return self._queue[0]


class _LastState(AggregateState):
    """Newest held value.  FIFO eviction only ever removes the newest
    value when it removes *everything*, so a value + count suffice."""

    __slots__ = ("_n", "_last")

    def __init__(self):
        self._n = 0
        self._last = None

    def insert(self, value) -> None:
        self._n += 1
        self._last = value

    def evict(self, value) -> None:
        self._n -= 1
        if not self._n:
            self._last = None

    def insert_many(self, values) -> None:
        if values:
            self._n += len(values)
            self._last = values[-1]

    def evict_many(self, values) -> None:
        self._n -= len(values)
        if not self._n:
            self._last = None

    def result(self):
        return self._last


class _MedianState(AggregateState):
    """Sliding-window median on paired heaps with lazy deletion.

    ``_lower`` is a max-heap (values negated) over the smaller half of
    the window, ``_upper`` a min-heap over the larger half.  Evictions
    are *lazy*: the departing value is recorded in ``_stale`` and
    physically removed only when it surfaces at a heap top, so every
    operation costs O(log n) amortized instead of the O(n) a mid-heap
    delete would need.  ``_lower_size``/``_upper_size`` count **live**
    values only, and the balance invariant — the lower half holds
    ⌈n/2⌉ live values — is maintained on those counts.

    Bit-identical to the :func:`_median` recompute: the heap tops are
    the same one or two middle order statistics of the live multiset,
    odd windows return the middle value unconverted (ints stay ints),
    even windows average the two middles with the identical ``/ 2.0``.
    """

    __slots__ = ("_lower", "_upper", "_lower_size", "_upper_size", "_stale")

    def __init__(self):
        self._lower: list = []   # negated values: max-heap, smaller half
        self._upper: list = []   # min-heap, larger half
        self._lower_size = 0
        self._upper_size = 0
        self._stale: dict = {}   # value -> pending lazy deletions

    def _prune_lower(self) -> None:
        heap, stale = self._lower, self._stale
        while heap:
            count = stale.get(-heap[0])
            if not count:
                return
            value = -heapq.heappop(heap)
            if count == 1:
                del stale[value]
            else:
                stale[value] = count - 1

    def _prune_upper(self) -> None:
        heap, stale = self._upper, self._stale
        while heap:
            count = stale.get(heap[0])
            if not count:
                return
            value = heapq.heappop(heap)
            if count == 1:
                del stale[value]
            else:
                stale[value] = count - 1

    def _rebalance(self) -> None:
        # A heap top about to move to the other heap must be live,
        # hence the prune before (and after, to re-expose a live top
        # for the next routing comparison) each move.
        if self._lower_size > self._upper_size + 1:
            self._prune_lower()
            heapq.heappush(self._upper, -heapq.heappop(self._lower))
            self._lower_size -= 1
            self._upper_size += 1
            self._prune_lower()
        elif self._lower_size < self._upper_size:
            self._prune_upper()
            heapq.heappush(self._lower, -heapq.heappop(self._upper))
            self._upper_size -= 1
            self._lower_size += 1
            self._prune_upper()

    def insert(self, value) -> None:
        # Every operation leaves the lower top pruned, so this routing
        # comparison never consults a lazily-deleted value.
        if self._lower_size and value <= -self._lower[0]:
            heapq.heappush(self._lower, -value)
            self._lower_size += 1
        else:
            heapq.heappush(self._upper, value)
            self._upper_size += 1
        self._rebalance()

    def evict(self, value) -> None:
        self._stale[value] = self._stale.get(value, 0) + 1
        if self._lower_size and value <= -self._lower[0]:
            self._lower_size -= 1
            self._prune_lower()
        else:
            self._upper_size -= 1
            self._prune_upper()
        self._rebalance()

    def result(self):
        self._prune_lower()
        if self._lower_size > self._upper_size:
            return -self._lower[0]
        self._prune_upper()
        return (-self._lower[0] + self._upper[0]) / 2.0


class AggregateFunction:
    """A named aggregate with its result-type rule.

    ``result_dtype`` maps the aggregated field's type to the output type:
    ``count`` always yields INT, ``avg``/``stdev`` always DOUBLE, while
    order statistics (min/max/first/last/median/sum) preserve the input
    type (sum of ints is an int; sum widens timestamps to double).

    ``make_state`` (optional) is a zero-argument factory producing an
    :class:`AggregateState` for incremental sliding-window evaluation;
    functions without one are recomputed per window from the columnar
    buffer, so third-party registrations keep working unchanged.
    """

    def __init__(
        self,
        name: str,
        compute: Callable[[Sequence], object],
        result_dtype: Callable[[DataType], DataType],
        requires_numeric: bool = True,
        make_state: Optional[Callable[[], AggregateState]] = None,
    ):
        self.name = name.lower()
        self._compute = compute
        self._result_dtype = result_dtype
        self.requires_numeric = requires_numeric
        self._make_state = make_state

    def validate_field(self, field: Field) -> None:
        if self.requires_numeric and not field.is_numeric:
            raise StreamError(
                f"aggregate {self.name!r} requires a numeric attribute, but "
                f"{field.name!r} has type {field.dtype.value}"
            )

    def result_field(self, field: Field) -> Field:
        """The output field produced by applying this function to *field*.

        Output naming follows the paper's Figure 4(b): ``avg(rainrate)``
        becomes ``avgrainrate``.
        """
        self.validate_field(field)
        return Field(f"{self.name}{field.name}", self._result_dtype(field.dtype))

    def compute(self, values: Sequence) -> object:
        if not values:
            raise StreamError(f"aggregate {self.name!r} applied to an empty window")
        return self._compute(values)

    def make_state(self) -> Optional[AggregateState]:
        """A fresh incremental state, or None (recompute per window)."""
        return self._make_state() if self._make_state is not None else None

    def __repr__(self) -> str:
        return f"AggregateFunction({self.name!r})"


def _preserve(dtype: DataType) -> DataType:
    return dtype


def _always_double(_: DataType) -> DataType:
    return DataType.DOUBLE


def _always_int(_: DataType) -> DataType:
    return DataType.INT


def _sum_dtype(dtype: DataType) -> DataType:
    return DataType.INT if dtype is DataType.INT else DataType.DOUBLE


def _median(values: Sequence) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _stdev(values: Sequence) -> float:
    """Sample standard deviation via Welford's single-pass recurrence.

    One pass instead of the two-pass mean-then-residuals formula, and
    numerically stable (no catastrophic cancellation of large means).
    Delegates to :class:`_WelfordState` — the insert recurrence over a
    whole window IS the single-pass algorithm, and keeping one copy
    keeps the recompute and incremental paths bit-identical on
    insert-only histories.
    """
    state = _WelfordState()
    state.insert_many(values)
    return state.result()


#: Registry of built-in aggregate functions, keyed by lower-case name.
AGGREGATE_FUNCTIONS: Dict[str, AggregateFunction] = {}


def register_aggregate_function(function: AggregateFunction) -> None:
    """Add *function* to the registry (replacing any same-named one)."""
    AGGREGATE_FUNCTIONS[function.name] = function


def get_aggregate_function(name: str) -> AggregateFunction:
    """Look up an aggregate function by (case-insensitive) name.

    Accepts the paper's spelling variants: ``lastval``/``lastvalue`` and
    ``firstval``/``firstvalue``.
    """
    key = name.strip().lower()
    aliases = {"lastvalue": "lastval", "firstvalue": "firstval", "average": "avg"}
    key = aliases.get(key, key)
    try:
        return AGGREGATE_FUNCTIONS[key]
    except KeyError:
        raise StreamError(
            f"unknown aggregate function {name!r}; known: "
            f"{sorted(AGGREGATE_FUNCTIONS)}"
        ) from None


def _min_state() -> _MinMaxState:
    return _MinMaxState(min)


def _max_state() -> _MinMaxState:
    return _MinMaxState(max)


for _function in (
    AggregateFunction("avg", lambda v: sum(v) / len(v), _always_double,
                      make_state=_AvgState),
    AggregateFunction("sum", sum, _sum_dtype, make_state=_SumState),
    AggregateFunction("min", min, _preserve, make_state=_min_state),
    AggregateFunction("max", max, _preserve, make_state=_max_state),
    AggregateFunction("count", len, _always_int, requires_numeric=False,
                      make_state=_CountState),
    AggregateFunction("lastval", lambda v: v[-1], _preserve, requires_numeric=False,
                      make_state=_LastState),
    AggregateFunction("firstval", lambda v: v[0], _preserve, requires_numeric=False,
                      make_state=_FirstState),
    AggregateFunction("median", _median, _always_double, make_state=_MedianState),
    AggregateFunction("stdev", _stdev, _always_double, make_state=_WelfordState),
):
    register_aggregate_function(_function)
