"""Map (projection) box."""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.errors import SchemaError
from repro.streams.operators.base import Operator
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple


class MapOperator(Operator):
    """Project tuples onto a subset of attributes.

    Attribute names are case-insensitive; output order follows the input
    schema's declaration order (Aurora's map box does not reorder).
    """

    kind = "map"

    def __init__(self, attributes: Iterable[str]):
        names: List[str] = []
        seen = set()
        for attribute in attributes:
            key = attribute.lower()
            if key not in seen:
                seen.add(key)
                names.append(attribute)
        if not names:
            raise SchemaError("map operator needs at least one attribute")
        self.attributes: Tuple[str, ...] = tuple(names)

    def attribute_set(self) -> frozenset:
        """Lower-cased attribute names, for merging and NR/PR checks."""
        return frozenset(a.lower() for a in self.attributes)

    def output_schema(self, input_schema: Schema) -> Schema:
        return input_schema.project(self.attributes)

    def process(self, tup: StreamTuple, output_schema: Schema) -> List[StreamTuple]:
        return [tup.project(output_schema)]

    def fresh_copy(self) -> "MapOperator":
        return MapOperator(self.attributes)

    def describe(self) -> str:
        return f"SELECT {', '.join(self.attributes)}"
