"""Map (projection) box."""

from __future__ import annotations

from operator import itemgetter
from typing import Iterable, List, Sequence, Tuple

from repro.errors import SchemaError
from repro.streams.operators.base import Operator
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple


class MapOperator(Operator):
    """Project tuples onto a subset of attributes.

    Attribute names are case-insensitive; output order follows the input
    schema's declaration order (Aurora's map box does not reorder).

    The projection is compiled once per tuple layout: the output
    attributes are resolved to positional indices into the incoming
    value vector, so per-tuple work is a single ``itemgetter`` call
    instead of one case-insensitive name lookup per attribute.
    ``use_compiled=False`` keeps the seed name-based
    :meth:`StreamTuple.project` path as a reference mode for
    differential testing.
    """

    kind = "map"
    #: Projection is pure (the compiled itemgetter is a per-layout cache,
    #: not window state) — safe to share across queries at any point.
    stateful = False

    def __init__(self, attributes: Iterable[str], use_compiled: bool = True):
        names: List[str] = []
        seen = set()
        for attribute in attributes:
            key = attribute.lower()
            if key not in seen:
                seen.add(key)
                names.append(attribute)
        if not names:
            raise SchemaError("map operator needs at least one attribute")
        self.attributes: Tuple[str, ...] = tuple(names)
        self.use_compiled = use_compiled
        self._compiled_key = None  # (input schema, output schema) identity pair
        self._project_values = None

    def attribute_set(self) -> frozenset:
        """Lower-cased attribute names, for merging and NR/PR checks."""
        return frozenset(a.lower() for a in self.attributes)

    def output_schema(self, input_schema: Schema) -> Schema:
        return input_schema.project(self.attributes)

    def _compile_for(self, input_schema: Schema, output_schema: Schema) -> None:
        cached = self._compiled_key
        if cached is not None and cached[0] is input_schema and cached[1] is output_schema:
            return  # steady state: one identity check per call
        key = (input_schema, output_schema)
        if cached == key:
            self._compiled_key = key
            return
        indices = input_schema.positions(output_schema.attribute_names)
        if len(indices) == 1:
            index = indices[0]
            self._project_values = lambda values: (values[index],)
        else:
            self._project_values = itemgetter(*indices)
        self._compiled_key = key

    def process(self, tup: StreamTuple, output_schema: Schema) -> List[StreamTuple]:
        if not self.use_compiled:
            return [tup.project(output_schema)]
        self._compile_for(tup.schema, output_schema)
        return [StreamTuple(output_schema, self._project_values(tup.values))]

    def process_batch(
        self, tuples: Sequence[StreamTuple], output_schema: Schema
    ) -> List[StreamTuple]:
        if not tuples:
            return []
        if not self.use_compiled:
            return [tup.project(output_schema) for tup in tuples]
        self._compile_for(tuples[0].schema, output_schema)
        project = self._project_values
        return [StreamTuple(output_schema, project(tup.values)) for tup in tuples]

    def fresh_copy(self) -> "MapOperator":
        return MapOperator(self.attributes, use_compiled=self.use_compiled)

    def describe(self) -> str:
        return f"SELECT {', '.join(self.attributes)}"
