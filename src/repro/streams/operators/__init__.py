"""Aurora boxes: filter, map and window-based aggregation.

The paper (Section 2.1) focuses on three common Aurora operators, which
are exactly the ones an eXACML+ policy can constrain:

- :class:`FilterOperator` — selection by a boolean condition,
- :class:`MapOperator` — projection onto a set of attributes,
- :class:`AggregateOperator` — aggregate functions over sliding windows
  (tuple- or time-based, with a window size and an advance step).
"""

from repro.streams.operators.base import Operator as StreamOperator
from repro.streams.operators.filter import FilterOperator
from repro.streams.operators.map import MapOperator
from repro.streams.operators.window import (
    AggregateOperator,
    AggregationSpec,
    WindowSpec,
    WindowType,
)
from repro.streams.operators.aggregate import (
    AGGREGATE_FUNCTIONS,
    AggregateFunction,
    get_aggregate_function,
)

__all__ = [
    "StreamOperator",
    "FilterOperator",
    "MapOperator",
    "AggregateOperator",
    "AggregationSpec",
    "WindowSpec",
    "WindowType",
    "AGGREGATE_FUNCTIONS",
    "AggregateFunction",
    "get_aggregate_function",
]
