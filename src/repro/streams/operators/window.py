"""Window-based aggregation box.

A window-based aggregation operator (paper Section 2.1) consists of a
sliding window — window *type* (tuple- or time-based), *size* and
*advance step* — plus the set of attributes and aggregate functions
computed over each window.

Tuple windows: window *i* covers input positions ``[i·step, i·step+size)``
and is emitted when its last tuple arrives.  Time windows: with ``t0`` the
timestamp of the first tuple, window *i* covers ``[t0+i·step,
t0+i·step+size)`` and is emitted once a tuple at or past the window's end
arrives (empty time windows emit nothing, matching StreamBase).

Two execution paths share those semantics:

- **columnar** (default, ``use_compiled=True``): window state lives in
  per-attribute ring buffers (plain value lists with a logical base
  offset) filled batch-at-a-time, and aggregates with an incremental
  :class:`~repro.streams.operators.aggregate.AggregateState` are fed
  insert/evict deltas so an overlapping tuple window costs O(step) per
  advance instead of O(size); functions without a state (``median``,
  third-party registrations) are recomputed per window from a column
  slice.  Time windows evict through monotonic buffer pointers, with a
  scan fallback that keeps out-of-order timestamp streams
  output-identical to the seed.
- **reference** (``use_compiled=False``): the seed row-oriented
  ``List[StreamTuple]`` buffers and per-window recomputation, kept for
  differential testing (``StreamEngine.reference()``).
"""

from __future__ import annotations

import enum
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import SchemaError, StreamError
from repro.streams.operators.aggregate import AggregateFunction, get_aggregate_function
from repro.streams.operators.base import Operator
from repro.streams.schema import DataType, Field, Schema
from repro.streams.tuples import StreamTuple, extract_columns


class WindowType(enum.Enum):
    """Whether window size/step count tuples or time units."""

    TUPLE = "tuple"
    TIME = "time"

    @classmethod
    def parse(cls, text: str) -> "WindowType":
        normalized = text.strip().lower()
        aliases = {
            "tuple": cls.TUPLE, "tuples": cls.TUPLE,
            "time": cls.TIME, "seconds": cls.TIME, "second": cls.TIME,
        }
        if normalized not in aliases:
            raise StreamError(f"unknown window type {text!r}")
        return aliases[normalized]


class WindowSpec:
    """A sliding-window specification (type, size, advance step)."""

    __slots__ = ("window_type", "size", "step")

    def __init__(self, window_type: WindowType, size: int, step: int):
        if size <= 0:
            raise StreamError(f"window size must be positive, got {size}")
        if step <= 0:
            raise StreamError(f"window advance step must be positive, got {step}")
        self.window_type = window_type
        self.size = size
        self.step = step

    def refines(self, other: "WindowSpec") -> bool:
        """True when this window is a legal user refinement of *other*.

        Section 3.1's merge rule: the user window is acceptable only when
        window types match and the policy window's size and advance step
        are less than or equal to the user's — the user must not obtain
        finer-grained data than the policy permits.
        """
        return (
            self.window_type is other.window_type
            and other.size <= self.size
            and other.step <= self.step
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, WindowSpec)
            and self.window_type is other.window_type
            and self.size == other.size
            and self.step == other.step
        )

    def __hash__(self) -> int:
        return hash((self.window_type, self.size, self.step))

    def __repr__(self) -> str:
        return f"WindowSpec({self.window_type.value}, size={self.size}, step={self.step})"


class AggregationSpec:
    """One ``attribute:function`` pair of a window aggregation.

    The paper's obligation value format is ``attribute-id:aggregate-function``
    (e.g. ``rainrate:avg``); user queries use ``function(attribute)``
    (e.g. ``avg(RainRate)``).  Both spellings parse here.
    """

    __slots__ = ("attribute", "function")

    def __init__(self, attribute: str, function: AggregateFunction):
        self.attribute = attribute.lower()
        self.function = function

    @classmethod
    def parse(cls, text: str) -> "AggregationSpec":
        stripped = text.strip()
        if "(" in stripped and stripped.endswith(")"):
            function_name, _, rest = stripped.partition("(")
            attribute = rest[:-1]
        elif ":" in stripped:
            attribute, _, function_name = stripped.partition(":")
        else:
            raise StreamError(
                f"cannot parse aggregation spec {text!r}; expected "
                f"'attribute:function' or 'function(attribute)'"
            )
        attribute = attribute.strip()
        function_name = function_name.strip()
        if not attribute or not function_name:
            raise StreamError(f"malformed aggregation spec {text!r}")
        return cls(attribute, get_aggregate_function(function_name))

    @property
    def key(self) -> Tuple[str, str]:
        """Identity used for merge intersection: (attribute, function)."""
        return (self.attribute, self.function.name)

    def to_obligation_value(self) -> str:
        return f"{self.attribute}:{self.function.name}"

    def to_call_syntax(self) -> str:
        return f"{self.function.name}({self.attribute})"

    def __eq__(self, other) -> bool:
        return isinstance(other, AggregationSpec) and self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:
        return f"AggregationSpec({self.to_obligation_value()!r})"


class AggregateOperator(Operator):
    """Apply aggregate functions over a sliding window.

    ``use_compiled=False`` pins the instance to the seed row-oriented
    recompute-per-window path (the reference mode for differential
    testing); the default runs on columnar buffers with incremental
    aggregate states — see the module docstring.
    """

    kind = "aggregate"
    #: Window contents are history-dependent (tuple-window alignment, the
    #: time-window origin ``t0``), so the shared plan clones this node
    #: instead of sharing it once it has consumed input.
    stateful = True

    def __init__(
        self,
        window: WindowSpec,
        aggregations: Iterable[AggregationSpec],
        time_attribute: Optional[str] = None,
        use_compiled: bool = True,
    ):
        specs = list(aggregations)
        if not specs:
            raise StreamError("aggregation operator needs at least one attribute:function")
        seen = set()
        unique: List[AggregationSpec] = []
        for spec in specs:
            if spec.key not in seen:
                seen.add(spec.key)
                unique.append(spec)
        self.window = window
        self.aggregations: Tuple[AggregationSpec, ...] = tuple(unique)
        self.time_attribute = time_attribute.lower() if time_attribute else None
        self.use_compiled = use_compiled
        self._reset_state()

    def _reset_state(self) -> None:
        # Reference (row-oriented) state.
        self._buffer: List[StreamTuple] = []
        self._count = 0
        self._next_emit = self.window.size  # tuple windows
        self._t0: Optional[float] = None    # time windows
        self._next_window_index = 0
        #: Buffer length that triggers the next amortized prune of the
        #: reference time-window path (doubles whenever a prune removes
        #: nothing, keeping total prune work linear in the stream).
        self._prune_at = 64
        # Columnar state, built lazily on the first batch (it needs the
        # input schema to resolve attribute positions).
        self._columnar: Optional[_ColumnarWindow] = None

    # -- schema ------------------------------------------------------------

    def output_schema(self, input_schema: Schema) -> Schema:
        fields: List[Field] = []
        names = set()
        for spec in self.aggregations:
            field = input_schema.field(spec.attribute)
            out = spec.function.result_field(field)
            if out.name.lower() in names:
                raise SchemaError(f"duplicate aggregation output {out.name!r}")
            names.add(out.name.lower())
            fields.append(out)
        if self.window.window_type is WindowType.TIME:
            self._time_field(input_schema)  # validate presence
        return Schema(f"{input_schema.name}_agg", fields)

    def _time_field(self, schema: Schema) -> Field:
        if self.time_attribute:
            field = schema.field(self.time_attribute)
            if field.dtype not in (DataType.TIMESTAMP, DataType.DOUBLE, DataType.INT):
                raise SchemaError(
                    f"time attribute {field.name!r} must be numeric/timestamp"
                )
            return field
        for field in schema:
            if field.dtype is DataType.TIMESTAMP:
                return field
        raise SchemaError(
            f"time-based window needs a timestamp attribute in schema "
            f"{schema.name!r} (or an explicit time_attribute)"
        )

    # -- execution ----------------------------------------------------------

    def process(self, tup: StreamTuple, output_schema: Schema) -> List[StreamTuple]:
        return self.process_batch((tup,), output_schema)

    def process_batch(
        self, tuples: Sequence[StreamTuple], output_schema: Schema
    ) -> List[StreamTuple]:
        """Real batch path: one buffer extension and one emission sweep
        per batch instead of per tuple, with attribute positions
        resolved once per batch."""
        if not tuples:
            return []
        if self.use_compiled:
            state = self._columnar
            if state is None:
                factory = (
                    _ColumnarTupleWindow
                    if self.window.window_type is WindowType.TUPLE
                    else _ColumnarTimeWindow
                )
                state = self._columnar = factory(self, tuples[0].schema)
            return state.process(tuples, output_schema)
        if self.window.window_type is WindowType.TUPLE:
            return self._process_tuple_window_batch(tuples, output_schema)
        return self._process_time_window_batch(tuples, output_schema)

    def _process_tuple_window_batch(
        self, tuples: Sequence[StreamTuple], output_schema: Schema
    ) -> List[StreamTuple]:
        buffer = self._buffer
        buffer.extend(tuples)
        self._count += len(tuples)
        count = self._count
        size, step = self.window.size, self.window.step
        #: Logical stream position of buffer[0].  Every still-unemitted
        #: window starts at or after it: emission keeps _next_emit no
        #: more than one step behind, and the tail retained below always
        #: covers the next window.
        base = count - len(buffer)
        outputs: List[StreamTuple] = []
        while self._next_emit <= count:
            start = self._next_emit - size - base
            outputs.append(self._emit(buffer[start : start + size], output_schema))
            self._next_emit += step
        # Retain only the tail a future window can still need.
        if len(buffer) > size:
            del buffer[: len(buffer) - size]
        return outputs

    def _process_time_window_batch(
        self, tuples: Sequence[StreamTuple], output_schema: Schema
    ) -> List[StreamTuple]:
        # All tuples of one dispatch share a schema, so the time
        # attribute resolves to one value-vector position for the batch.
        time_position = tuples[0].schema.position(self._time_field(tuples[0].schema).name)
        size, step = self.window.size, self.window.step
        outputs: List[StreamTuple] = []
        buffer = self._buffer
        for tup in tuples:
            timestamp = tup.values[time_position]
            if self._t0 is None:
                self._t0 = timestamp
            # Close every window that ends at or before this timestamp.
            while True:
                start = self._t0 + self._next_window_index * step
                end = start + size
                if timestamp < end:
                    break
                window_tuples = [
                    t for t in buffer
                    if start <= t.values[time_position] < end
                ]
                if window_tuples:
                    outputs.append(self._emit(window_tuples, output_schema))
                self._next_window_index += 1
            buffer.append(tup)
            # Prune tuples no future window can cover — amortized, not
            # per-tuple: a stale tuple (timestamp below every future
            # window's start) can never match the emission predicate
            # above, so deferring its removal cannot change the output,
            # and the doubling threshold makes total prune work linear
            # in the stream instead of the seed's quadratic per-tuple
            # rebuild, while retaining at most ~2x the live tail.
            if len(buffer) >= self._prune_at:
                earliest_needed = self._t0 + self._next_window_index * step
                buffer[:] = [
                    t for t in buffer
                    if t.values[time_position] >= earliest_needed
                ]
                self._prune_at = max(64, 2 * len(buffer))
        return outputs

    def _emit(self, window_tuples: Sequence[StreamTuple], output_schema: Schema) -> StreamTuple:
        values = []
        for spec in self.aggregations:
            column = [t[spec.attribute] for t in window_tuples]
            values.append(spec.function.compute(column))
        coerced = tuple(
            field.dtype.coerce(value) for field, value in zip(output_schema, values)
        )
        return StreamTuple(output_schema, coerced)

    def fresh_copy(self) -> "AggregateOperator":
        return AggregateOperator(
            self.window,
            self.aggregations,
            self.time_attribute,
            use_compiled=self.use_compiled,
        )

    def describe(self) -> str:
        aggs = ", ".join(spec.to_call_syntax() for spec in self.aggregations)
        return (
            f"{aggs} OVER {self.window.window_type.value} window "
            f"SIZE {self.window.size} ADVANCE {self.window.step}"
        )


class _ColumnarWindow:
    """Shared plumbing of the columnar window paths.

    The window's content lives in one plain value list per *distinct*
    aggregated attribute (specs over the same attribute share a
    column), addressed by logical stream position minus ``base`` —
    a ring buffer realised as an occasionally-trimmed list.  Attribute
    positions are resolved once per schema object and rebound if a
    differently-laid-out schema ever shows up (the engine validates
    pipelines, so in practice one schema per instance).
    """

    __slots__ = (
        "size", "step", "specs", "attr_keys", "cols", "spec_cols",
        "schema", "positions", "out_fields",
    )

    def __init__(self, operator: AggregateOperator, schema: Schema):
        self.size = operator.window.size
        self.step = operator.window.step
        self.specs = operator.aggregations
        attr_keys: List[str] = []
        index_of = {}
        for spec in self.specs:
            if spec.attribute not in index_of:
                index_of[spec.attribute] = len(attr_keys)
                attr_keys.append(spec.attribute)
        self.attr_keys = attr_keys
        self.cols: List[List] = [[] for _ in attr_keys]
        self.spec_cols = [self.cols[index_of[spec.attribute]] for spec in self.specs]
        self.schema: Optional[Schema] = None
        self.out_fields: Optional[Tuple[Field, ...]] = None
        self._rebind(schema)

    def _rebind(self, schema: Schema) -> None:
        self.schema = schema
        self.positions = schema.positions(self.attr_keys)

    def _check_schema(self, schema: Schema) -> None:
        if schema is not self.schema and schema != self.schema:
            self._rebind(schema)

    def _coerced(self, values, output_schema: Schema) -> StreamTuple:
        if self.out_fields is None:
            self.out_fields = tuple(output_schema)
        return StreamTuple(
            output_schema,
            tuple(
                field.dtype.coerce(value)
                for field, value in zip(self.out_fields, values)
            ),
        )


class _ColumnarTupleWindow(_ColumnarWindow):
    """Tuple-window state: columnar buffers + incremental aggregates.

    ``win_start`` is the logical position of the pending window's first
    tuple, ``inserted`` the next position to feed into the incremental
    states, ``base`` the logical position of ``cols[*][0]``.  On every
    advance the states evict exactly the ``step`` positions the window
    slid past, so an overlapping window (step < size) is O(step) per
    emission.  Non-overlapping windows (step ≥ size) skip the states
    entirely — each element would be inserted and evicted exactly once,
    so recomputing from the column slice is strictly cheaper.
    """

    __slots__ = ("states", "stateful", "base", "count", "win_start", "inserted")

    def __init__(self, operator: AggregateOperator, schema: Schema):
        super().__init__(operator, schema)
        if self.step < self.size:
            self.states = [spec.function.make_state() for spec in self.specs]
        else:
            self.states = [None] * len(self.specs)
        self.stateful = [
            (state, col)
            for state, col in zip(self.states, self.spec_cols)
            if state is not None
        ]
        self.base = 0
        self.count = 0
        self.win_start = 0
        self.inserted = 0

    def process(
        self, tuples: Sequence[StreamTuple], output_schema: Schema
    ) -> List[StreamTuple]:
        self._check_schema(tuples[0].schema)
        for col, new_values in zip(self.cols, extract_columns(tuples, self.positions)):
            col.extend(new_values)
        self.count += len(tuples)
        count, size, step = self.count, self.size, self.step
        outputs: List[StreamTuple] = []
        while True:
            window_end = self.win_start + size
            # Feed the states every arrived value of the pending window.
            low = self.inserted
            if low < self.win_start:
                low = self.win_start  # skip the gap of a step>size window
            high = count if count < window_end else window_end
            if low < high:
                offset, limit = low - self.base, high - self.base
                for state, col in self.stateful:
                    state.insert_many(col[offset:limit])
                self.inserted = high
            if count < window_end:
                break
            outputs.append(self._emit(output_schema))
            # Advance: evict the positions the window slid past.
            evict_end = self.win_start + step
            if evict_end > window_end:
                evict_end = window_end
            offset, limit = self.win_start - self.base, evict_end - self.base
            for state, col in self.stateful:
                state.evict_many(col[offset:limit])
            self.win_start += step
        # Trim the dead prefix no window can need again.  The base can
        # only advance to positions that already exist (a step>size
        # window's start may lie beyond the last arrival).
        new_base = self.win_start if self.win_start < count else count
        drop = new_base - self.base
        if drop > 0:
            for col in self.cols:
                del col[:drop]
            self.base = new_base
        return outputs

    def _emit(self, output_schema: Schema) -> StreamTuple:
        low = self.win_start - self.base
        high = low + self.size
        values = []
        for spec, state, col in zip(self.specs, self.states, self.spec_cols):
            if state is not None:
                values.append(state.result())
            else:
                values.append(spec.function.compute(col[low:high]))
        return self._coerced(values, output_schema)


class _ColumnarTimeWindow(_ColumnarWindow):
    """Time-window state: columnar buffers + pointer-based eviction.

    While timestamps arrive monotonically (the overwhelmingly common
    case — and the only order the paper's sources produce), a closing
    window is a contiguous column slice ``[low, high)`` found by two
    pointers that only ever move forward, so eviction is O(1) amortized
    and emission reads one slice per aggregation — no per-tuple buffer
    rebuild, no per-tuple name lookups.  The first out-of-order
    timestamp drops the instance into a scan mode that reproduces the
    seed semantics exactly (membership by value, arrival order
    preserved), with amortized compaction instead of the seed's
    per-tuple rebuild.

    Scan mode is not sticky: whenever a compaction sweep leaves the
    retained buffer in ascending timestamp order (in particular when it
    drains the disordered backlog entirely), the instance re-arms the
    monotonic pointer path — on a sorted buffer, value-based membership
    and contiguous pointer slices select identical windows, so the
    switch is output-neutral, and the next late timestamp simply drops
    back to scan mode.  A transient burst of disorder therefore costs
    O(buffer) scans only while its evidence is still buffered, instead
    of pinning the stream to scan mode forever.
    """

    __slots__ = (
        "operator", "tpos", "ts", "base", "low", "high",
        "t0", "next_idx", "monotonic", "last_ts", "compact_at",
    )

    def __init__(self, operator: AggregateOperator, schema: Schema):
        self.operator = operator
        super().__init__(operator, schema)
        self.ts: List = []
        self.base = 0
        self.low = 0    # logical index of the first still-needed entry
        self.high = 0   # logical index one past the last closed window's content
        self.t0: Optional[float] = None
        self.next_idx = 0
        self.monotonic = True
        self.last_ts: Optional[float] = None
        self.compact_at = 64

    def _rebind(self, schema: Schema) -> None:
        super()._rebind(schema)
        self.tpos = schema.position(self.operator._time_field(schema).name)

    def process(
        self, tuples: Sequence[StreamTuple], output_schema: Schema
    ) -> List[StreamTuple]:
        self._check_schema(tuples[0].schema)
        rows = [t.values for t in tuples]
        tpos = self.tpos
        new_ts = [row[tpos] for row in rows]
        if self.monotonic:
            previous = self.last_ts
            for timestamp in new_ts:
                if previous is not None and timestamp < previous:
                    self.monotonic = False
                    break
                previous = timestamp
        if self.monotonic:
            return self._process_monotonic(rows, new_ts, output_schema)
        return self._process_scan(rows, new_ts, output_schema)

    def _process_monotonic(self, rows, new_ts, output_schema) -> List[StreamTuple]:
        # Appending the whole batch up-front is safe: any batch-mate
        # after the tuple that closes a window has a timestamp at or
        # past that tuple's, hence at or past the window's end, so the
        # high pointer never admits it.
        self.ts.extend(new_ts)
        for col, position in zip(self.cols, self.positions):
            col.extend([row[position] for row in rows])
        size, step = self.size, self.step
        ts_buffer = self.ts
        outputs: List[StreamTuple] = []
        for timestamp in new_ts:
            if self.t0 is None:
                self.t0 = timestamp
            while True:
                start = self.t0 + self.next_idx * step
                end = start + size
                if timestamp < end:
                    break
                base = self.base
                low = self.low
                while ts_buffer[low - base] < start:
                    low += 1
                high = self.high
                if high < low:
                    high = low
                while ts_buffer[high - base] < end:
                    high += 1
                if high > low:
                    outputs.append(
                        self._emit_slice(low - base, high - base, output_schema)
                    )
                self.low = low
                self.high = high
                self.next_idx += 1
        self.last_ts = new_ts[-1]
        drop = self.low - self.base
        if drop > 0:
            del ts_buffer[:drop]
            for col in self.cols:
                del col[:drop]
            self.base = self.low
        return outputs

    def _process_scan(self, rows, new_ts, output_schema) -> List[StreamTuple]:
        # Out-of-order timestamps: window membership is by value, so a
        # closing window selects matching indices across the whole
        # retained buffer — exactly the seed's semantics.  Entries are
        # appended one at a time (a pre-appended batch-mate could
        # otherwise leak into a window closing before its arrival).
        size, step = self.size, self.step
        ts_buffer = self.ts
        cols = self.cols
        positions = self.positions
        outputs: List[StreamTuple] = []
        compacted = False
        for row, timestamp in zip(rows, new_ts):
            if self.t0 is None:
                self.t0 = timestamp
            while True:
                start = self.t0 + self.next_idx * step
                end = start + size
                if timestamp < end:
                    break
                selected = [
                    index for index, value in enumerate(ts_buffer)
                    if start <= value < end
                ]
                if selected:
                    outputs.append(self._emit_selected(selected, output_schema))
                self.next_idx += 1
            ts_buffer.append(timestamp)
            for col, position in zip(cols, positions):
                col.append(row[position])
            # Amortized compaction: stale entries can never match the
            # membership predicate (every future window starts at or
            # after ``earliest``), so deferring their removal is
            # output-neutral; the doubling threshold bounds total
            # compaction work by the stream length.
            if len(ts_buffer) >= self.compact_at:
                earliest = self.t0 + self.next_idx * step
                keep = [
                    index for index, value in enumerate(ts_buffer)
                    if value >= earliest
                ]
                if len(keep) < len(ts_buffer):
                    ts_buffer[:] = [ts_buffer[index] for index in keep]
                    for col in cols:
                        col[:] = [col[index] for index in keep]
                    compacted = True
                self.compact_at = max(64, 2 * len(ts_buffer))
        # Re-arm the pointer path once the disordered backlog is gone:
        # only checked after a sweep actually removed entries (amortized,
        # like the sweep itself), and only after the whole batch so the
        # two modes never interleave within one dispatch.
        if compacted and self._is_ascending(ts_buffer):
            self._rearm()
        return outputs

    @staticmethod
    def _is_ascending(values: Sequence) -> bool:
        return all(earlier <= later for earlier, later in zip(values, values[1:]))

    def _rearm(self) -> None:
        """Return to the monotonic pointer path on a sorted buffer.

        The retained entries all sit at or after the next window's start
        (compaction just enforced that), so "first still-needed entry"
        is index 0; the high pointer recomputes forward from there on
        the next window close.  ``last_ts`` re-seeds the disorder
        detector, so a later regression drops straight back to scan.
        """
        self.monotonic = True
        self.base = 0
        self.low = 0
        self.high = 0
        self.last_ts = self.ts[-1] if self.ts else None

    def _emit_slice(self, low: int, high: int, output_schema: Schema) -> StreamTuple:
        values = [
            spec.function.compute(col[low:high])
            for spec, col in zip(self.specs, self.spec_cols)
        ]
        return self._coerced(values, output_schema)

    def _emit_selected(self, selected, output_schema: Schema) -> StreamTuple:
        values = [
            spec.function.compute([col[index] for index in selected])
            for spec, col in zip(self.specs, self.spec_cols)
        ]
        return self._coerced(values, output_schema)
