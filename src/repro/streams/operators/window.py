"""Window-based aggregation box.

A window-based aggregation operator (paper Section 2.1) consists of a
sliding window — window *type* (tuple- or time-based), *size* and
*advance step* — plus the set of attributes and aggregate functions
computed over each window.

Tuple windows: window *i* covers input positions ``[i·step, i·step+size)``
and is emitted when its last tuple arrives.  Time windows: with ``t0`` the
timestamp of the first tuple, window *i* covers ``[t0+i·step,
t0+i·step+size)`` and is emitted once a tuple at or past the window's end
arrives (empty time windows emit nothing, matching StreamBase).
"""

from __future__ import annotations

import enum
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import SchemaError, StreamError
from repro.streams.operators.aggregate import AggregateFunction, get_aggregate_function
from repro.streams.operators.base import Operator
from repro.streams.schema import DataType, Field, Schema
from repro.streams.tuples import StreamTuple


class WindowType(enum.Enum):
    """Whether window size/step count tuples or time units."""

    TUPLE = "tuple"
    TIME = "time"

    @classmethod
    def parse(cls, text: str) -> "WindowType":
        normalized = text.strip().lower()
        aliases = {
            "tuple": cls.TUPLE, "tuples": cls.TUPLE,
            "time": cls.TIME, "seconds": cls.TIME, "second": cls.TIME,
        }
        if normalized not in aliases:
            raise StreamError(f"unknown window type {text!r}")
        return aliases[normalized]


class WindowSpec:
    """A sliding-window specification (type, size, advance step)."""

    __slots__ = ("window_type", "size", "step")

    def __init__(self, window_type: WindowType, size: int, step: int):
        if size <= 0:
            raise StreamError(f"window size must be positive, got {size}")
        if step <= 0:
            raise StreamError(f"window advance step must be positive, got {step}")
        self.window_type = window_type
        self.size = size
        self.step = step

    def refines(self, other: "WindowSpec") -> bool:
        """True when this window is a legal user refinement of *other*.

        Section 3.1's merge rule: the user window is acceptable only when
        window types match and the policy window's size and advance step
        are less than or equal to the user's — the user must not obtain
        finer-grained data than the policy permits.
        """
        return (
            self.window_type is other.window_type
            and other.size <= self.size
            and other.step <= self.step
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, WindowSpec)
            and self.window_type is other.window_type
            and self.size == other.size
            and self.step == other.step
        )

    def __hash__(self) -> int:
        return hash((self.window_type, self.size, self.step))

    def __repr__(self) -> str:
        return f"WindowSpec({self.window_type.value}, size={self.size}, step={self.step})"


class AggregationSpec:
    """One ``attribute:function`` pair of a window aggregation.

    The paper's obligation value format is ``attribute-id:aggregate-function``
    (e.g. ``rainrate:avg``); user queries use ``function(attribute)``
    (e.g. ``avg(RainRate)``).  Both spellings parse here.
    """

    __slots__ = ("attribute", "function")

    def __init__(self, attribute: str, function: AggregateFunction):
        self.attribute = attribute.lower()
        self.function = function

    @classmethod
    def parse(cls, text: str) -> "AggregationSpec":
        stripped = text.strip()
        if "(" in stripped and stripped.endswith(")"):
            function_name, _, rest = stripped.partition("(")
            attribute = rest[:-1]
        elif ":" in stripped:
            attribute, _, function_name = stripped.partition(":")
        else:
            raise StreamError(
                f"cannot parse aggregation spec {text!r}; expected "
                f"'attribute:function' or 'function(attribute)'"
            )
        attribute = attribute.strip()
        function_name = function_name.strip()
        if not attribute or not function_name:
            raise StreamError(f"malformed aggregation spec {text!r}")
        return cls(attribute, get_aggregate_function(function_name))

    @property
    def key(self) -> Tuple[str, str]:
        """Identity used for merge intersection: (attribute, function)."""
        return (self.attribute, self.function.name)

    def to_obligation_value(self) -> str:
        return f"{self.attribute}:{self.function.name}"

    def to_call_syntax(self) -> str:
        return f"{self.function.name}({self.attribute})"

    def __eq__(self, other) -> bool:
        return isinstance(other, AggregationSpec) and self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:
        return f"AggregationSpec({self.to_obligation_value()!r})"


class AggregateOperator(Operator):
    """Apply aggregate functions over a sliding window."""

    kind = "aggregate"

    def __init__(
        self,
        window: WindowSpec,
        aggregations: Iterable[AggregationSpec],
        time_attribute: Optional[str] = None,
    ):
        specs = list(aggregations)
        if not specs:
            raise StreamError("aggregation operator needs at least one attribute:function")
        seen = set()
        unique: List[AggregationSpec] = []
        for spec in specs:
            if spec.key not in seen:
                seen.add(spec.key)
                unique.append(spec)
        self.window = window
        self.aggregations: Tuple[AggregationSpec, ...] = tuple(unique)
        self.time_attribute = time_attribute.lower() if time_attribute else None
        self._reset_state()

    def _reset_state(self) -> None:
        self._buffer: List[StreamTuple] = []
        self._count = 0
        self._next_emit = self.window.size  # tuple windows
        self._t0: Optional[float] = None    # time windows
        self._next_window_index = 0

    # -- schema ------------------------------------------------------------

    def output_schema(self, input_schema: Schema) -> Schema:
        fields: List[Field] = []
        names = set()
        for spec in self.aggregations:
            field = input_schema.field(spec.attribute)
            out = spec.function.result_field(field)
            if out.name.lower() in names:
                raise SchemaError(f"duplicate aggregation output {out.name!r}")
            names.add(out.name.lower())
            fields.append(out)
        if self.window.window_type is WindowType.TIME:
            self._time_field(input_schema)  # validate presence
        return Schema(f"{input_schema.name}_agg", fields)

    def _time_field(self, schema: Schema) -> Field:
        if self.time_attribute:
            field = schema.field(self.time_attribute)
            if field.dtype not in (DataType.TIMESTAMP, DataType.DOUBLE, DataType.INT):
                raise SchemaError(
                    f"time attribute {field.name!r} must be numeric/timestamp"
                )
            return field
        for field in schema:
            if field.dtype is DataType.TIMESTAMP:
                return field
        raise SchemaError(
            f"time-based window needs a timestamp attribute in schema "
            f"{schema.name!r} (or an explicit time_attribute)"
        )

    # -- execution ----------------------------------------------------------

    def process(self, tup: StreamTuple, output_schema: Schema) -> List[StreamTuple]:
        if self.window.window_type is WindowType.TUPLE:
            return self._process_tuple_window_batch((tup,), output_schema)
        return self._process_time_window_batch((tup,), output_schema)

    def process_batch(
        self, tuples: Sequence[StreamTuple], output_schema: Schema
    ) -> List[StreamTuple]:
        """Real batch path: one buffer extension and one emission sweep
        per batch instead of per tuple, with the time-attribute position
        resolved once per batch."""
        if not tuples:
            return []
        if self.window.window_type is WindowType.TUPLE:
            return self._process_tuple_window_batch(tuples, output_schema)
        return self._process_time_window_batch(tuples, output_schema)

    def _process_tuple_window_batch(
        self, tuples: Sequence[StreamTuple], output_schema: Schema
    ) -> List[StreamTuple]:
        buffer = self._buffer
        buffer.extend(tuples)
        self._count += len(tuples)
        count = self._count
        size, step = self.window.size, self.window.step
        #: Logical stream position of buffer[0].  Every still-unemitted
        #: window starts at or after it: emission keeps _next_emit no
        #: more than one step behind, and the tail retained below always
        #: covers the next window.
        base = count - len(buffer)
        outputs: List[StreamTuple] = []
        while self._next_emit <= count:
            start = self._next_emit - size - base
            outputs.append(self._emit(buffer[start : start + size], output_schema))
            self._next_emit += step
        # Retain only the tail a future window can still need.
        if len(buffer) > size:
            del buffer[: len(buffer) - size]
        return outputs

    def _process_time_window_batch(
        self, tuples: Sequence[StreamTuple], output_schema: Schema
    ) -> List[StreamTuple]:
        # All tuples of one dispatch share a schema, so the time
        # attribute resolves to one value-vector position for the batch.
        time_position = tuples[0].schema.position(self._time_field(tuples[0].schema).name)
        size, step = self.window.size, self.window.step
        outputs: List[StreamTuple] = []
        for tup in tuples:
            timestamp = tup.values[time_position]
            if self._t0 is None:
                self._t0 = timestamp
            # Close every window that ends at or before this timestamp.
            while True:
                start = self._t0 + self._next_window_index * step
                end = start + size
                if timestamp < end:
                    break
                window_tuples = [
                    t for t in self._buffer
                    if start <= t.values[time_position] < end
                ]
                if window_tuples:
                    outputs.append(self._emit(window_tuples, output_schema))
                self._next_window_index += 1
            self._buffer.append(tup)
            # Prune tuples no future window can cover.
            earliest_needed = self._t0 + self._next_window_index * step
            self._buffer = [
                t for t in self._buffer if t.values[time_position] >= earliest_needed
            ]
        return outputs

    def _emit(self, window_tuples: Sequence[StreamTuple], output_schema: Schema) -> StreamTuple:
        values = []
        for spec in self.aggregations:
            column = [t[spec.attribute] for t in window_tuples]
            values.append(spec.function.compute(column))
        coerced = tuple(
            field.dtype.coerce(value) for field, value in zip(output_schema, values)
        )
        return StreamTuple(output_schema, coerced)

    def fresh_copy(self) -> "AggregateOperator":
        return AggregateOperator(self.window, self.aggregations, self.time_attribute)

    def describe(self) -> str:
        aggs = ", ".join(spec.to_call_syntax() for spec in self.aggregations)
        return (
            f"{aggs} OVER {self.window.window_type.value} window "
            f"SIZE {self.window.size} ADVANCE {self.window.step}"
        )
