"""Filter (selection) box."""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.errors import ExpressionTypeError, SchemaError
from repro.expr.ast import BooleanExpression, SimpleExpression
from repro.expr.compile import compile_batch, compile_predicate
from repro.expr.evaluate import evaluate
from repro.expr.parser import parse_condition
from repro.streams.operators.base import Operator
from repro.streams.schema import DataType, Schema
from repro.streams.tuples import StreamTuple


class FilterOperator(Operator):
    """Emit only the tuples whose values satisfy a boolean condition.

    The condition may be given as a string (parsed with the condition
    grammar) or an already-built :class:`BooleanExpression`.

    By default the condition is compiled once per schema into a plain
    Python closure (:mod:`repro.expr.compile`) — attribute references
    become positional indexing, comparisons are specialised, AND/OR
    short-circuit natively.  ``use_compiled=False`` keeps the seed
    AST-walking interpreter as a reference mode for differential
    testing, mirroring :meth:`repro.xacml.pdp.PolicyDecisionPoint.reference`.
    """

    kind = "filter"
    #: Schema-compile caches aside, filtering is pure — safe to share
    #: across queries in the shared execution plan at any point.
    stateful = False

    def __init__(
        self,
        condition: Union[str, BooleanExpression],
        use_compiled: bool = True,
    ):
        if isinstance(condition, str):
            condition = parse_condition(condition)
        self.condition = condition
        self.use_compiled = use_compiled
        self._compiled_schema: Schema = None
        self._predicate = None
        self._mask = None

    def output_schema(self, input_schema: Schema) -> Schema:
        self._validate_condition(input_schema)
        return input_schema

    def _validate_condition(self, schema: Schema) -> None:
        """Check every referenced attribute exists and types line up."""
        for attribute in sorted(self.condition.attributes()):
            field = schema.field(attribute)  # raises UnknownAttributeError
            for leaf in _leaves(self.condition):
                if leaf.attribute != attribute:
                    continue
                literal_is_str = isinstance(leaf.value, str)
                field_is_str = field.dtype is DataType.STRING
                if literal_is_str != field_is_str:
                    raise SchemaError(
                        f"filter compares {field.dtype.value} attribute "
                        f"{field.name!r} with "
                        f"{'string' if literal_is_str else 'numeric'} literal "
                        f"{leaf.value!r}"
                    )
                if field.dtype is DataType.BOOL:
                    raise SchemaError(
                        f"filter conditions on boolean attribute {field.name!r} "
                        f"are not supported; compare against 0/1 integers instead"
                    )

    def _compile_for(self, schema: Schema) -> None:
        """(Re)compile the condition for *schema*, caching the closures.

        The identity check keeps the steady state — every tuple of a
        stream shares one Schema object — at a single ``is`` test; the
        equality fallback handles equal-but-distinct schema objects.
        """
        if schema is not self._compiled_schema and schema != self._compiled_schema:
            self._predicate = compile_predicate(self.condition, schema)
            self._mask = compile_batch(self.condition, schema)
            self._compiled_schema = schema

    def process(self, tup: StreamTuple, output_schema: Schema) -> List[StreamTuple]:
        if self.use_compiled:
            # A filter's output schema IS its input schema, and the
            # instance passes the same Schema object on every call.
            self._compile_for(output_schema)
            return [tup] if self._predicate(tup) else []
        try:
            passed = evaluate(self.condition, tup)
        except ExpressionTypeError:
            # output_schema() validates types up-front, so this only
            # triggers for operators used outside a validated graph.
            raise
        return [tup] if passed else []

    def process_batch(
        self, tuples: Sequence[StreamTuple], output_schema: Schema
    ) -> List[StreamTuple]:
        if not tuples:
            return []
        if not self.use_compiled:
            condition = self.condition
            return [tup for tup in tuples if evaluate(condition, tup)]
        self._compile_for(output_schema)
        mask = self._mask(tuples)
        return [tup for tup, keep in zip(tuples, mask) if keep]

    def fresh_copy(self) -> "FilterOperator":
        return FilterOperator(self.condition, use_compiled=self.use_compiled)

    def describe(self) -> str:
        return f"WHERE {self.condition.to_condition_string()}"


def _leaves(expression: BooleanExpression):
    """Yield every SimpleExpression leaf of *expression*."""
    from repro.expr.ast import AndExpression, NotExpression, OrExpression

    stack = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, SimpleExpression):
            yield node
        elif isinstance(node, (AndExpression, OrExpression)):
            stack.extend(node.children)
        elif isinstance(node, NotExpression):
            stack.append(node.child)
