"""Filter (selection) box."""

from __future__ import annotations

from typing import List, Union

from repro.errors import ExpressionTypeError, SchemaError
from repro.expr.ast import BooleanExpression, SimpleExpression
from repro.expr.evaluate import evaluate
from repro.expr.parser import parse_condition
from repro.streams.operators.base import Operator
from repro.streams.schema import DataType, Schema
from repro.streams.tuples import StreamTuple


class FilterOperator(Operator):
    """Emit only the tuples whose values satisfy a boolean condition.

    The condition may be given as a string (parsed with the condition
    grammar) or an already-built :class:`BooleanExpression`.
    """

    kind = "filter"

    def __init__(self, condition: Union[str, BooleanExpression]):
        if isinstance(condition, str):
            condition = parse_condition(condition)
        self.condition = condition

    def output_schema(self, input_schema: Schema) -> Schema:
        self._validate_condition(input_schema)
        return input_schema

    def _validate_condition(self, schema: Schema) -> None:
        """Check every referenced attribute exists and types line up."""
        for attribute in sorted(self.condition.attributes()):
            field = schema.field(attribute)  # raises UnknownAttributeError
            for leaf in _leaves(self.condition):
                if leaf.attribute != attribute:
                    continue
                literal_is_str = isinstance(leaf.value, str)
                field_is_str = field.dtype is DataType.STRING
                if literal_is_str != field_is_str:
                    raise SchemaError(
                        f"filter compares {field.dtype.value} attribute "
                        f"{field.name!r} with "
                        f"{'string' if literal_is_str else 'numeric'} literal "
                        f"{leaf.value!r}"
                    )
                if field.dtype is DataType.BOOL:
                    raise SchemaError(
                        f"filter conditions on boolean attribute {field.name!r} "
                        f"are not supported; compare against 0/1 integers instead"
                    )

    def process(self, tup: StreamTuple, output_schema: Schema) -> List[StreamTuple]:
        try:
            passed = evaluate(self.condition, tup)
        except ExpressionTypeError:
            # output_schema() validates types up-front, so this only
            # triggers for operators used outside a validated graph.
            raise
        return [tup] if passed else []

    def fresh_copy(self) -> "FilterOperator":
        return FilterOperator(self.condition)

    def describe(self) -> str:
        return f"WHERE {self.condition.to_condition_string()}"


def _leaves(expression: BooleanExpression):
    """Yield every SimpleExpression leaf of *expression*."""
    from repro.expr.ast import AndExpression, NotExpression, OrExpression

    stack = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, SimpleExpression):
            yield node
        elif isinstance(node, (AndExpression, OrExpression)):
            stack.extend(node.children)
        elif isinstance(node, NotExpression):
            stack.append(node.child)
