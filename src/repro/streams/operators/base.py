"""Operator (box) base class.

An operator consumes tuples one at a time and emits zero or more output
tuples per input — the continuous-query execution model of Aurora.  Each
operator instance is *stateful* (windows accumulate tuples), so operators
must be cloned (:meth:`Operator.fresh_copy`) before being installed into a
second running query.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple


class Operator:
    """Base class for Aurora boxes."""

    #: Short kind tag used by StreamSQL generation and merging ("filter",
    #: "map", "aggregate").
    kind: str = "operator"

    #: Whether this operator accumulates cross-tuple state (windows).  The
    #: shared execution plan may attach a new query to an existing
    #: stateless node at any time, but a stateful node is only shareable
    #: before it has consumed input (afterwards the plan clones it so the
    #: newcomer starts from an empty window, exactly like a fresh
    #: per-query pipeline).  Defaults to True — the conservative choice
    #: for third-party operators.
    stateful: bool = True

    def output_schema(self, input_schema: Schema) -> Schema:
        """The schema of tuples this operator emits given *input_schema*.

        Also serves as validation: raises if the operator cannot be
        applied to streams of *input_schema* (unknown attribute, wrong
        type for an aggregate, ...).
        """
        raise NotImplementedError

    def process(self, tup: StreamTuple, output_schema: Schema) -> List[StreamTuple]:
        """Consume one input tuple; return the tuples to emit (often 0/1)."""
        raise NotImplementedError

    def process_batch(
        self, tuples: Sequence[StreamTuple], output_schema: Schema
    ) -> List[StreamTuple]:
        """Consume a batch of input tuples; return the tuples to emit.

        Must be output-equivalent to calling :meth:`process` once per
        tuple, in order, and concatenating the results — the contract
        the batch-vs-single differential tests enforce.  The default
        does exactly that, so third-party operators keep working; the
        built-in boxes override it with real batch implementations.
        """
        outputs: List[StreamTuple] = []
        for tup in tuples:
            outputs.extend(self.process(tup, output_schema))
        return outputs

    def fresh_copy(self) -> "Operator":
        """Return a stateless clone suitable for a new query instance."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable description (used in logs and errors)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"
