"""Shared-operator execution plans: multi-query optimization.

At realistic fan-out — hundreds of continuous queries registered on one
input stream — the per-query execution model runs one full pipeline per
query per batch, so ingest cost is strictly linear in query count even
when most queries are near-identical (the common case: policy obligations
stamped from a handful of templates).  A :class:`StreamPlan` merges the
registered queries of one stream into a DAG instead:

- **Fingerprinting.**  Each operator in a query chain is reduced to a
  canonical, hashable key (:func:`operator_fingerprint`).  Filter
  conditions are canonicalized through DNF conversion + per-conjunction
  simplification (``expr/normalize.py`` / ``expr/simplify.py``), so
  ``x > 5 AND y = 1`` and ``y = 1 AND x > 5`` share one key.  A new
  query walks the DAG from the root, reusing the existing node at each
  step when fingerprints match, so identical prefixes are evaluated
  **once** per batch no matter how many queries share them.

- **Predicate subsumption.**  When a new filter provably implies an
  existing sibling filter (:func:`repro.expr.satisfiability.implies` —
  sound, incomplete), the new node feeds from the *host's output* with a
  residual predicate (the literals the host does not already guarantee)
  instead of re-scanning the whole input.

- **Clone-on-divergence for state.**  Stateless nodes (filter, map) are
  shareable at any time.  A state-bearing node (window aggregation) is
  only shareable while it has consumed no input: window alignment and
  the time-window origin are history-dependent, and a per-query pipeline
  always starts with an empty window.  A late-arriving twin gets a fresh
  clone under the same fingerprint ("cloned on divergence").

- **Refcounted detach.**  Withdrawal removes the query's sink and
  cascades up the feed tree, freeing every node that no longer feeds a
  sink or another node — co-tenants of shared prefixes are undisturbed.

The plan registers **one** batch listener on the source stream and
replays the per-query dispatch semantics exactly (the differential
harnesses in ``tests/properties/test_prop_multiquery_equivalence.py``
and the StreamSQL fuzzer's shared-prefix mode pin shared ≡ per-query
under registration/withdrawal churn, including mid-batch):

- Node outputs are delivered to sinks in global registration order —
  the order per-query batch listeners would have fired in.
- A query withdrawn while the source is mid-batch (from a per-tuple
  control listener) is flushed the already-dispatched prefix of the
  in-flight batch through the DAG before detaching, mirroring
  ``Stream.remove_batch_listener``; the remaining queries see the rest
  of the batch when the plan's listener fires.  Splitting a batch at
  the flush point is output-equivalent because every operator's
  ``process_batch`` is batch-partition invariant.
- A query (and any node created for it) registered while dispatches are
  in flight defers those batches — matching a per-query listener's
  absence from every in-flight snapshot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.expr.ast import (
    AndExpression,
    BooleanExpression,
    NotExpression,
    OrExpression,
    SimpleExpression,
    TrueExpression,
)
from repro.expr.normalize import to_dnf
from repro.expr.satisfiability import conjunction_unsatisfiable, implies
from repro.expr.simplify import simplify_conjunction
from repro.streams.graph import QueryGraph, materialize_operator
from repro.streams.handles import StreamHandle
from repro.streams.operators.base import Operator
from repro.streams.operators.filter import FilterOperator
from repro.streams.operators.map import MapOperator
from repro.streams.operators.window import AggregateOperator
from repro.streams.stream import Stream
from repro.streams.tuples import StreamTuple

# ---------------------------------------------------------------------------
# Operator fingerprinting
# ---------------------------------------------------------------------------

#: Leaf budget for condition canonicalization.  DNF conversion is
#: exponential in AND/OR alternation depth, so conditions over this
#: budget fall back to a textual key (identical text still shares; the
#: equivalence and subsumption analyses are skipped).
CANON_LEAF_LIMIT = 16


def _count_leaves(expression: BooleanExpression) -> int:
    count = 0
    stack: List[BooleanExpression] = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, SimpleExpression):
            count += 1
        elif isinstance(node, (AndExpression, OrExpression)):
            stack.extend(node.children)
        elif isinstance(node, NotExpression):
            stack.append(node.child)
    return count


def _literal_key(literal: SimpleExpression) -> tuple:
    # The string flag keeps mixed-type value columns orderable: ties on
    # (attribute, op) only ever compare same-kind values.
    return (
        literal.attribute,
        literal.op.name,
        isinstance(literal.value, str),
        literal.value,
    )


def condition_fingerprint(condition: BooleanExpression) -> tuple:
    """A canonical hashable key for a filter condition.

    Equal keys imply logically equivalent conditions: the key is built
    by DNF conversion, dropping unsatisfiable conjunctions, simplifying
    each conjunction (literals implied by a same-attribute neighbour are
    dropped), and sorting literals and conjunctions — every step an
    equivalence transform.  The converse does not hold (two equivalent
    conditions may key differently); such pairs may still merge through
    the subsumption feed, which checks implication both ways.
    """
    if isinstance(condition, TrueExpression):
        return ("true",)
    if _count_leaves(condition) > CANON_LEAF_LIMIT:
        return ("raw", condition.to_condition_string())
    conjunctions = []
    for conjunction in to_dnf(condition):
        if not conjunction:
            return ("true",)
        if conjunction_unsatisfiable(conjunction):
            continue
        literals = simplify_conjunction(conjunction)
        conjunctions.append(tuple(sorted(_literal_key(lit) for lit in literals)))
    if not conjunctions:
        return ("false",)
    return ("dnf", tuple(sorted(set(conjunctions))))


def operator_fingerprint(operator: Operator) -> Optional[tuple]:
    """A hashable key such that equal keys mean interchangeable operators.

    ``None`` means "never share": unknown operator types may hide state
    or side effects the plan cannot reason about, so each gets a private
    node.  Exact-type checks (not ``isinstance``) keep subclasses with
    overridden behaviour private too.  The compiled/reference flag is
    part of every key: filter and map are output-identical on both
    paths, but incremental aggregate states may drift from the reference
    recompute by ulps, so queries pinned to different paths never share.

    Map keys are order-insensitive (``Schema.project`` orders output
    fields by the input schema's declaration order, not the attribute
    list); aggregation-spec order is preserved (it fixes the output
    schema's field order).
    """
    if type(operator) is FilterOperator:
        return (
            "filter",
            operator.use_compiled,
            condition_fingerprint(operator.condition),
        )
    if type(operator) is MapOperator:
        return ("map", operator.use_compiled, operator.attribute_set())
    if type(operator) is AggregateOperator:
        window = operator.window
        return (
            "aggregate",
            operator.use_compiled,
            window.window_type,
            window.size,
            window.step,
            operator.time_attribute,
            tuple(spec.key for spec in operator.aggregations),
        )
    return None


# ---------------------------------------------------------------------------
# DAG nodes and sinks
# ---------------------------------------------------------------------------


class PlanNode:
    """One operator instance, shared by every query whose chain reaches it.

    ``logical_parent`` is the node whose *output set* this node's input
    is defined on (the previous chain position); ``feed`` is the node
    whose output is physically consumed.  They differ only for
    subsumption-fed filters, where ``feed`` is the host filter and the
    operator holds the residual predicate.  ``children_by_fp`` is the
    share registry (fingerprint → nodes, a list because touched stateful
    nodes force same-fingerprint clones); ``feed_children`` are the
    physical consumers.  A node stays alive while it has sinks or feed
    children (see :meth:`StreamPlan._release`).
    """

    __slots__ = (
        "fingerprint",
        "operator",
        "out_schema",
        "condition",
        "logical_parent",
        "feed",
        "host",
        "children_by_fp",
        "feed_children",
        "sinks",
        "consumed",
        "defers",
    )

    def __init__(
        self,
        fingerprint: Optional[tuple],
        operator: Optional[Operator],
        out_schema,
        logical_parent: Optional["PlanNode"],
        feed: Optional["PlanNode"],
        condition: Optional[BooleanExpression] = None,
        host: Optional["PlanNode"] = None,
    ):
        self.fingerprint = fingerprint
        self.operator = operator
        self.out_schema = out_schema
        #: Full logical condition (filter nodes only) — the subsumption
        #: analysis needs it because ``operator.condition`` holds only
        #: the residual for a subsumption-fed node.
        self.condition = condition
        self.logical_parent = logical_parent
        self.feed = feed
        self.host = host
        self.children_by_fp: Dict[tuple, List[PlanNode]] = {}
        self.feed_children: List[PlanNode] = []
        self.sinks: List[SharedQuery] = []
        #: Input tuples consumed so far; a stateful node is shareable
        #: only at zero (a new query's window must start empty).
        self.consumed = 0
        #: Batches (id → batch) in flight at creation time, which this
        #: node must not observe.
        self.defers: Dict[int, list] = {}

    @property
    def refcount(self) -> int:
        return len(self.feed_children) + len(self.sinks)

    def __repr__(self) -> str:
        op = self.operator.describe() if self.operator is not None else "<source>"
        return f"PlanNode({op}, refcount={self.refcount})"


class SharedQuery:
    """Engine-facing record of one query registered on a shared plan.

    Mirrors the ``RegisteredQuery`` surface the engine and its callers
    rely on — ``handle``, ``output``, ``active``, ``output_schema``,
    ``withdraw()`` — so :class:`~repro.streams.engine.StreamEngine` can
    hold either kind.
    """

    __slots__ = ("plan", "handle", "node", "output", "active", "defers")

    def __init__(
        self, plan: "StreamPlan", handle: StreamHandle, node: PlanNode, output: Stream
    ):
        self.plan = plan
        self.handle = handle
        self.node = node
        self.output = output
        self.active = True
        #: Batches in flight at registration, which this sink skips.
        self.defers: Dict[int, list] = {}

    @property
    def output_schema(self):
        return self.output.schema

    def withdraw(self) -> None:
        """Detach from the plan without disturbing co-tenant queries."""
        self.plan.detach(self)

    def __repr__(self) -> str:
        state = "active" if self.active else "withdrawn"
        return f"SharedQuery({self.handle.uri}, {state})"


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------


class StreamPlan:
    """The shared-operator execution DAG for one input stream.

    Owns a single batch listener on the source (never removed — an empty
    plan is just a no-op listener) and the DAG rooted at the pseudo-node
    ``root`` (the source itself).  See the module docstring for the
    sharing, subsumption and equivalence rules.
    """

    def __init__(self, source: Stream, compiled: bool = True):
        self.source = source
        self.compiled = compiled
        self.root = PlanNode(("source",), None, source.schema, None, None)
        #: Delivery order == global registration order.
        self.queries: List[SharedQuery] = []  # guarded by: owner
        #: Per-batch consumed prefix (id(batch) → (batch, count)) from
        #: mid-batch withdrawal flushes; the final dispatch pops it and
        #: processes only the remainder.  The batch reference pins the
        #: id against reuse.
        self._consumed: Dict[int, Tuple[list, int]] = {}  # guarded by: owner
        self.nodes_created = 0  # guarded by: owner
        self.nodes_shared = 0  # guarded by: owner
        self.nodes_subsumed = 0  # guarded by: owner
        self._listener = self._on_batch
        source.add_batch_listener(self._listener)

    # -- registration -----------------------------------------------------------

    def attach(self, graph: QueryGraph, handle: StreamHandle) -> SharedQuery:
        """Install *graph* into the DAG; returns the new sink.

        The whole chain is validated (schema propagation) before any
        plan state is touched, so an invalid graph changes nothing.
        """
        schemas = graph.schema_trace(self.source.schema)
        defers = self._inflight_batches()
        node = self.root
        for operator, out_schema in zip(graph.operators, schemas[1:]):
            node = self._child_for(node, operator, out_schema, defers)
        output = Stream(handle.query_id, node.out_schema)
        query = SharedQuery(self, handle, node, output)
        if defers:
            query.defers = dict(defers)
        node.sinks.append(query)
        self.queries.append(query)
        return query

    def _inflight_batches(self) -> Dict[int, list]:
        """Batches currently mid-dispatch on the source stream.

        A sink or node created while these dispatches are in flight must
        not observe them — the per-query path's equivalent is a listener
        missing from every in-flight snapshot.
        """
        defers: Dict[int, list] = {}
        inflight = self.source._inflight
        while inflight is not None:
            defers[id(inflight.batch)] = inflight.batch
            inflight = inflight.previous
        return defers

    def _child_for(
        self,
        parent: PlanNode,
        operator: Operator,
        out_schema,
        defers: Dict[int, list],
    ) -> PlanNode:
        fingerprint = operator_fingerprint(operator)
        if fingerprint is not None:
            for candidate in parent.children_by_fp.get(fingerprint, ()):
                if not candidate.operator.stateful or candidate.consumed == 0:
                    self.nodes_shared += 1
                    return candidate
            # Same-fingerprint candidates exist but have consumed input:
            # fall through and clone (fresh state for the newcomer).
        executing = materialize_operator(operator, self.compiled)
        feed = parent
        condition: Optional[BooleanExpression] = None
        host: Optional[PlanNode] = None
        if fingerprint is not None and fingerprint[0] == "filter":
            condition = executing.condition
            host = self._find_host(parent, condition)
            if host is not None:
                executing = self._residual_filter(executing, host.condition)
                feed = host
                self.nodes_subsumed += 1
            # Filters preserve their input schema; reusing the parent's
            # schema object keeps identity checks downstream at one `is`.
            out_schema = parent.out_schema
        node = PlanNode(
            fingerprint,
            executing,
            out_schema,
            parent,
            feed,
            condition=condition,
            host=host,
        )
        if defers:
            node.defers = dict(defers)
        if fingerprint is not None:
            parent.children_by_fp.setdefault(fingerprint, []).append(node)
        feed.feed_children.append(node)
        self.nodes_created += 1
        return node

    def _find_host(
        self, parent: PlanNode, condition: BooleanExpression
    ) -> Optional[PlanNode]:
        """The tightest sibling filter provably implied by *condition*.

        ``condition ⇒ host`` means the new filter's output is a subset
        of the host's, so it can be computed from the host's (smaller)
        output instead of re-scanning the parent's.  Among multiple
        candidates the tightest is kept (host A beats host B when
        ``A ⇒ B``), minimising the tuples the residual must re-test.
        """
        if _count_leaves(condition) > CANON_LEAF_LIMIT:
            return None
        host: Optional[PlanNode] = None
        for siblings in parent.children_by_fp.values():
            for candidate in siblings:
                if candidate.condition is None:
                    continue
                if _count_leaves(candidate.condition) > CANON_LEAF_LIMIT:
                    continue
                if not implies(condition, candidate.condition):
                    continue
                if host is None or implies(candidate.condition, host.condition):
                    host = candidate
        return host

    def _residual_filter(
        self, operator: FilterOperator, host_condition: BooleanExpression
    ) -> FilterOperator:
        """A filter equivalent to *operator* on the host's output.

        The host's output is exactly the tuples satisfying
        ``host_condition``, so literals the host already guarantees
        (``host ⇒ literal``) can be dropped: on that domain the rest of
        the conjunction is equivalent to the full condition.  Dropping
        is only attempted when the condition normalises to a single
        conjunction; otherwise the full condition is kept — still
        correct, merely without the re-test savings.
        """
        residual: BooleanExpression = operator.condition
        dnf = to_dnf(operator.condition)
        if len(dnf) == 1 and dnf[0]:
            literals = [
                literal
                for literal in simplify_conjunction(dnf[0])
                if not implies(host_condition, literal)
            ]
            if not literals:
                residual = TrueExpression()
            elif len(literals) == 1:
                residual = literals[0]
            else:
                residual = AndExpression(tuple(literals))
        return FilterOperator(residual, use_compiled=operator.use_compiled)

    # -- dispatch ---------------------------------------------------------------

    def _on_batch(self, batch: Sequence[StreamTuple]) -> None:
        entry = self._consumed.pop(id(batch), None)
        start = entry[1] if entry is not None else 0
        segment = batch if not start else batch[start:]
        self._dispatch(segment, batch, final=True)

    def _dispatch(
        self, segment: Sequence[StreamTuple], batch: Sequence[StreamTuple], final: bool
    ) -> None:
        """Run *segment* (a suffix-aligned slice of *batch*) through the DAG.

        Phase 1 computes every reachable, non-deferred node exactly once
        in feed-tree order (each node's feed is computed before the node
        itself).  Phase 2 delivers node outputs to sinks in global
        registration order — the order per-query listeners would have
        fired in, which keeps cross-query observable interleavings (and
        sibling-withdrawal behaviour) identical to the per-query path.

        ``final`` marks the plan listener's own invocation for *batch*
        (as opposed to a mid-batch withdrawal flush): only then are
        defer markers consumed, because a flush may precede the final
        dispatch of the same batch.
        """
        if not segment:
            return
        marker = id(batch)
        outputs: Dict[PlanNode, Sequence[StreamTuple]] = {self.root: segment}
        stack = list(self.root.feed_children)
        while stack:
            node = stack.pop()
            if node.defers:
                if final:
                    if node.defers.pop(marker, None) is not None:
                        continue  # subtree skipped: children defer too
                elif marker in node.defers:
                    continue
            inputs = outputs[node.feed]
            if inputs:
                node.consumed += len(inputs)
                outputs[node] = node.operator.process_batch(inputs, node.out_schema)
            else:
                outputs[node] = inputs
            stack.extend(node.feed_children)
        for query in list(self.queries):
            if not query.active:
                continue
            if query.defers:
                if final:
                    if query.defers.pop(marker, None) is not None:
                        continue
                elif marker in query.defers:
                    continue
            result = outputs.get(query.node)
            if result:
                query.output.append_batch(result)

    # -- withdrawal -------------------------------------------------------------

    def detach(self, query: SharedQuery) -> None:
        """Withdraw *query*: flush, deactivate, and free unshared nodes.

        Mirrors ``Stream.remove_batch_listener`` mid-batch semantics:
        withdrawn during the source's per-tuple phase (before the plan's
        listener ran), the already-dispatched prefix of the in-flight
        batch is flushed through the DAG — the withdrawing query sees
        exactly the tuples per-tuple dispatch would have shown it, and
        the consumed count makes the final dispatch process only the
        remainder.  Withdrawn during the batch phase (or after the
        listener ran), the query simply stops — matching the per-query
        guard engaging before its listener's turn.
        """
        if not query.active:
            return
        inflight = self.source._inflight
        if (
            inflight is not None
            and not inflight.batch_phase
            and self._listener in inflight.snapshot
            and self._listener not in inflight.done
        ):
            batch = inflight.batch
            entry = self._consumed.get(id(batch))
            consumed = entry[1] if entry is not None else 0
            progress = inflight.progress
            if progress > consumed:
                self._consumed[id(batch)] = (batch, progress)
                self._dispatch(batch[consumed:progress], batch, final=False)
        query.active = False
        query.output.close()
        self.queries.remove(query)
        node = query.node
        node.sinks.remove(query)
        self._release(node)

    def _release(self, node: PlanNode) -> None:
        """Refcount cascade: free nodes that no longer feed anything.

        Liveness is physical (sinks + feed children); the fingerprint
        registry holds no reference of its own, so a freed node also
        leaves the share registry and later twins get fresh nodes.
        """
        while node is not self.root and node.refcount == 0:
            feed = node.feed
            feed.feed_children.remove(node)
            if node.fingerprint is not None:
                siblings = node.logical_parent.children_by_fp[node.fingerprint]
                siblings.remove(node)
                if not siblings:
                    del node.logical_parent.children_by_fp[node.fingerprint]
            node.feed = node.logical_parent = node.host = None
            node = feed

    # -- introspection ----------------------------------------------------------

    def live_nodes(self) -> List[PlanNode]:
        """Every operator node currently in the DAG (root excluded)."""
        nodes: List[PlanNode] = []
        stack = list(self.root.feed_children)
        while stack:
            node = stack.pop()
            nodes.append(node)
            stack.extend(node.feed_children)
        return nodes

    def stats(self) -> Dict[str, int]:
        """Plan-shape counters (monitoring, benchmarks, churn assertions)."""
        return {
            "queries": len(self.queries),
            "live_nodes": len(self.live_nodes()),
            "nodes_created": self.nodes_created,
            "nodes_shared": self.nodes_shared,
            "nodes_subsumed": self.nodes_subsumed,
        }

    def __repr__(self) -> str:
        return (
            f"StreamPlan({self.source.name!r}, queries={len(self.queries)}, "
            f"nodes={len(self.live_nodes())})"
        )
