"""Synthetic data sources standing in for the paper's live feeds.

The authors' StreamBase deployment maintained "real-time data streams
from various projects, such as weather data feeds from a number of mini
weather stations producing weather records at one minute interval" and
"GPS track information from personal mobile devices" (Section 4.2).  The
generators here produce statistically plausible, seeded replacements with
the same schemas and rates, used by the examples, tests and benchmarks.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterator, List, Optional

from repro.streams.schema import GPS_SCHEMA, WEATHER_SCHEMA, Schema
from repro.streams.tuples import StreamTuple, make_tuple


class WeatherSource:
    """Seeded generator of weather records (paper Example 1 schema).

    Records are produced at a fixed sampling interval (30 s in Example 1,
    60 s in the evaluation testbed).  Rain arrives in bursts: a latent
    storm state raises ``rainrate`` and ``windspeed`` together so that
    threshold policies such as ``rainrate > 5`` pass realistic fractions
    of tuples rather than almost none or almost all.
    """

    def __init__(
        self,
        seed: int = 7,
        start_time: float = 1_330_560_000.0,  # 2012-03-01, the paper's era
        interval_seconds: float = 30.0,
        storm_probability: float = 0.08,
        storm_duration_mean: float = 12.0,
    ):
        self._rng = random.Random(seed)
        self._time = start_time
        self.interval_seconds = interval_seconds
        self._storm_probability = storm_probability
        self._storm_duration_mean = storm_duration_mean
        self._storm_remaining = 0
        self._tick = 0

    @property
    def schema(self) -> Schema:
        return WEATHER_SCHEMA

    def next_record(self) -> Dict[str, float]:
        rng = self._rng
        if self._storm_remaining <= 0 and rng.random() < self._storm_probability:
            self._storm_remaining = max(1, int(rng.expovariate(1.0 / self._storm_duration_mean)))
        in_storm = self._storm_remaining > 0
        if in_storm:
            self._storm_remaining -= 1

        # Diurnal temperature cycle plus noise.
        day_fraction = (self._time % 86_400.0) / 86_400.0
        temperature = 27.0 + 4.0 * math.sin(2 * math.pi * (day_fraction - 0.25))
        temperature += rng.gauss(0.0, 0.6) - (2.0 if in_storm else 0.0)

        rainrate = max(0.0, rng.gauss(35.0, 25.0)) if in_storm else (
            max(0.0, rng.gauss(0.0, 1.2))
        )
        windspeed = max(0.0, rng.gauss(14.0 if in_storm else 6.0, 3.0))
        humidity = min(100.0, max(20.0, rng.gauss(88.0 if in_storm else 70.0, 6.0)))
        solarradiation = max(
            0.0,
            (900.0 * math.sin(math.pi * day_fraction) if 0.25 < day_fraction < 0.75 else 0.0)
            * (0.25 if in_storm else 1.0)
            + rng.gauss(0.0, 20.0),
        )
        record = {
            "samplingtime": self._time,
            "temperature": round(temperature, 2),
            "humidity": round(humidity, 2),
            "solarradiation": round(solarradiation, 2),
            "rainrate": round(rainrate, 2),
            "windspeed": round(windspeed, 2),
            "winddirection": rng.randrange(0, 360),
            "barometer": round(rng.gauss(1009.0 - (6.0 if in_storm else 0.0), 1.5), 2),
        }
        self._time += self.interval_seconds
        self._tick += 1
        return record

    def records(self, count: int) -> List[Dict[str, float]]:
        return [self.next_record() for _ in range(count)]

    def tuples(self, count: int) -> List[StreamTuple]:
        return [make_tuple(WEATHER_SCHEMA, record) for record in self.records(count)]

    def __iter__(self) -> Iterator[Dict[str, float]]:
        while True:
            yield self.next_record()


class GpsSource:
    """Seeded generator of GPS track records from simulated devices."""

    def __init__(
        self,
        seed: int = 11,
        device_count: int = 4,
        start_time: float = 1_330_560_000.0,
        interval_seconds: float = 5.0,
    ):
        self._rng = random.Random(seed)
        self._time = start_time
        self.interval_seconds = interval_seconds
        # Random walks anchored near Singapore (the authors' city).
        self._devices = [
            {
                "deviceid": f"device-{i:02d}",
                "latitude": 1.3521 + self._rng.uniform(-0.05, 0.05),
                "longitude": 103.8198 + self._rng.uniform(-0.05, 0.05),
                "heading": self._rng.randrange(0, 360),
            }
            for i in range(device_count)
        ]
        self._next_device = 0

    @property
    def schema(self) -> Schema:
        return GPS_SCHEMA

    def next_record(self) -> Dict[str, object]:
        rng = self._rng
        device = self._devices[self._next_device]
        self._next_device = (self._next_device + 1) % len(self._devices)
        device["heading"] = (device["heading"] + rng.randrange(-20, 21)) % 360
        speed = max(0.0, rng.gauss(12.0, 6.0))  # m/s
        distance_deg = speed * self.interval_seconds / 111_000.0
        radians = math.radians(device["heading"])
        device["latitude"] += distance_deg * math.cos(radians)
        device["longitude"] += distance_deg * math.sin(radians)
        record = {
            "samplingtime": self._time,
            "deviceid": device["deviceid"],
            "latitude": round(device["latitude"], 6),
            "longitude": round(device["longitude"], 6),
            "altitude": round(max(0.0, rng.gauss(20.0, 8.0)), 1),
            "speed": round(speed, 2),
            "heading": device["heading"],
        }
        self._time += self.interval_seconds / len(self._devices)
        return record

    def records(self, count: int) -> List[Dict[str, object]]:
        return [self.next_record() for _ in range(count)]

    def tuples(self, count: int) -> List[StreamTuple]:
        return [make_tuple(GPS_SCHEMA, record) for record in self.records(count)]


def integer_sequence_tuples(
    count: int, schema: Optional[Schema] = None, attribute: str = "a"
) -> List[StreamTuple]:
    """Tuples ``a=0, a=1, ...`` for the Section 3.4 reconstruction demo.

    The paper's Example 2 uses a single-attribute stream
    ``S = a0, a1, a2, ...``; consecutive integers make reconstructed
    values trivially checkable.
    """
    from repro.streams.schema import DataType, Field

    if schema is None:
        schema = Schema("s", [Field(attribute, DataType.INT)])
    return [make_tuple(schema, {attribute: i}) for i in range(count)]
