"""Stream handles: the URIs returned to authorized users.

eXACML+ never ships stream data through the access-control path; a
successful request yields a *handle* — "the unique resource identifier
(URI) of the processed data stream" — which the client then uses to
connect to the back-end DSMS (paper Sections 1 and 3.2).
"""

from __future__ import annotations

import itertools
from typing import Union

from repro.errors import EngineError

_handle_counter = itertools.count(1)

_SCHEME = "stream"


class StreamHandle:
    """A URI pointing at one registered continuous query's output."""

    __slots__ = ("host", "query_id", "uri")

    def __init__(self, host: str, query_id: str):
        if not host or "/" in host:
            raise EngineError(f"invalid handle host {host!r}")
        if not query_id or "/" in query_id:
            raise EngineError(f"invalid handle query id {query_id!r}")
        self.host = host
        self.query_id = query_id
        self.uri = f"{_SCHEME}://{host}/{query_id}"

    @classmethod
    def parse(cls, uri: str) -> "StreamHandle":
        prefix = f"{_SCHEME}://"
        if not uri.startswith(prefix):
            raise EngineError(f"not a stream handle URI: {uri!r}")
        rest = uri[len(prefix):]
        host, sep, query_id = rest.partition("/")
        if not sep or not host or not query_id:
            raise EngineError(f"malformed stream handle URI: {uri!r}")
        return cls(host, query_id)

    @classmethod
    def allocate(cls, host: str, prefix: str = "q") -> "StreamHandle":
        """Allocate a fresh handle on *host* with a unique query id."""
        return cls(host, f"{prefix}{next(_handle_counter)}")

    @staticmethod
    def uri_of(handle: Union["StreamHandle", str]) -> str:
        """The URI of a handle-or-URI value (engine lookups accept both)."""
        return handle.uri if isinstance(handle, StreamHandle) else handle

    def __eq__(self, other) -> bool:
        return isinstance(other, StreamHandle) and self.uri == other.uri

    def __hash__(self) -> int:
        return hash(self.uri)

    def __repr__(self) -> str:
        return f"StreamHandle({self.uri!r})"
