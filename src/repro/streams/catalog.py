"""Catalog of registered input streams (name → stream and schema)."""

from __future__ import annotations

from typing import Dict, List

from repro.errors import EngineError, UnknownStreamError
from repro.streams.schema import Schema
from repro.streams.stream import Stream


class StreamCatalog:
    """Name-indexed registry of input streams.

    Stream names are case-insensitive, matching the StreamSQL dialect.
    """

    def __init__(self):
        self._streams: Dict[str, Stream] = {}

    def register(self, name: str, schema: Schema, max_buffer: int = 1_000_000) -> Stream:
        key = name.lower()
        if key in self._streams:
            raise EngineError(f"stream {name!r} is already registered")
        stream = Stream(name, schema, max_buffer=max_buffer)
        self._streams[key] = stream
        return stream

    def get(self, name: str) -> Stream:
        try:
            return self._streams[name.lower()]
        except KeyError:
            raise UnknownStreamError(name) from None

    def schema(self, name: str) -> Schema:
        return self.get(name).schema

    def __contains__(self, name: str) -> bool:
        return isinstance(name, str) and name.lower() in self._streams

    def names(self) -> List[str]:
        return [stream.name for stream in self._streams.values()]

    def __len__(self) -> int:
        return len(self._streams)
