"""Aurora-model data stream management substrate.

This package is the reproduction's stand-in for the commercial StreamBase
engine used by the paper.  It implements the three Aurora boxes the paper
relies on (filter, map, window-based aggregation), query graphs, a
StreamSQL dialect matching the paper's Figure 4(b), and an engine that
registers continuous queries and hands out stream-handle URIs.

Typical usage::

    from repro.streams import Schema, Field, StreamEngine, QueryGraph
    from repro.streams.operators import FilterOperator

    engine = StreamEngine()
    engine.register_input_stream("weather", WEATHER_SCHEMA)
    graph = QueryGraph("weather")
    graph.append(FilterOperator("rainrate > 5"))
    handle = engine.register_query(graph)
    engine.push("weather", tuples)
    results = engine.read(handle)
"""

from repro.streams.schema import DataType, Field, Schema
from repro.streams.tuples import StreamTuple, make_tuple
from repro.streams.stream import Stream, StreamSubscription
from repro.streams.graph import QueryGraph
from repro.streams.engine import StreamEngine, RegisteredQuery
from repro.streams.catalog import StreamCatalog
from repro.streams.handles import StreamHandle

__all__ = [
    "DataType",
    "Field",
    "Schema",
    "StreamTuple",
    "make_tuple",
    "Stream",
    "StreamSubscription",
    "QueryGraph",
    "StreamEngine",
    "RegisteredQuery",
    "StreamCatalog",
    "StreamHandle",
]
