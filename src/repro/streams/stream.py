"""Streams and subscriptions.

A :class:`Stream` is an append-only sequence of tuples with one schema.
Consumers attach :class:`StreamSubscription` cursors; each subscription
tracks its own read position so multiple independent readers (different
registered queries, the reconstruction-attack demo, tests) can drain the
same stream without interfering.

Push consumers come in two flavours: per-tuple listeners (one callback
per appended tuple — control hooks, tests, third-party taps) and *batch
listeners* (one callback per appended batch — the registered-query fast
path, which runs a whole pipeline invocation per batch instead of per
tuple).  Dispatch order within an append is: per-tuple listeners first,
tuple by tuple, then batch listeners, batch by batch.

Streams keep a bounded in-memory tail (``max_buffer``) because real data
streams are unbounded; a subscription that falls behind the retained tail
raises rather than silently skipping data.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from repro.errors import StreamError
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple

BatchListener = Callable[[Sequence[StreamTuple]], None]


class _InflightDispatch:
    """State of one append_batch dispatch, for mid-batch listener removal.

    ``progress`` tracks how many tuples of the batch have been delivered
    to per-tuple listeners so far.  When a batch listener is removed
    during the per-tuple phase (the withdraw-mid-batch revocation path:
    a control listener withdraws a query), it is synchronously handed
    ``batch[:progress]`` — exactly the tuples it would have processed
    had dispatch been per-tuple — and is skipped by the end-of-batch
    sweep (``done``).  Once the batch phase starts (``batch_phase``), a
    removed listener gets nothing further: under per-tuple dispatch its
    guard would have dropped every tuple after the withdrawal, and the
    withdrawing callback observes tuples no earlier than the victim's
    own dispatch, so dropping the whole batch keeps ``append(t)`` and
    ``append_batch([t])`` output-identical.
    """

    __slots__ = ("batch", "snapshot", "done", "progress", "batch_phase", "previous")

    def __init__(
        self,
        batch: List[StreamTuple],
        snapshot: set,
        previous: Optional["_InflightDispatch"] = None,
    ):
        self.batch = batch
        self.snapshot = snapshot
        self.done: set = set()
        self.progress = 0
        self.batch_phase = False
        #: Enclosing dispatch when appends nest (a listener appending to
        #: its own stream).  The chain lets the shared execution plan
        #: defer *every* in-flight batch for queries registered
        #: mid-dispatch, not just the innermost.
        self.previous = previous


class Stream:
    """An append-only, schema-typed sequence of tuples."""

    def __init__(self, name: str, schema: Schema, max_buffer: int = 1_000_000):
        if max_buffer <= 0:
            raise StreamError("max_buffer must be positive")
        self.name = name
        self.schema = schema
        self.max_buffer = max_buffer
        self._buffer: List[StreamTuple] = []  # guarded by: owner
        #: Index (in the unbounded logical stream) of ``_buffer[0]``.
        self._base = 0  # guarded by: owner
        self._listeners: List[Callable[[StreamTuple], None]] = []  # guarded by: owner
        self._batch_listeners: List[BatchListener] = []  # guarded by: owner
        self._inflight: Optional[_InflightDispatch] = None  # guarded by: owner
        self._closed = False  # guarded by: owner

    @property
    def total_appended(self) -> int:
        """Number of tuples ever appended (the logical stream length)."""
        return self._base + len(self._buffer)

    @property
    def closed(self) -> bool:
        return self._closed

    def append(self, tup: StreamTuple) -> None:
        """Append one tuple, validating its schema, and notify listeners."""
        if self._closed:
            raise StreamError(f"stream {self.name!r} is closed")
        if tup.schema != self.schema:
            raise StreamError(
                f"tuple schema {tup.schema.name!r} does not match stream "
                f"{self.name!r} schema {self.schema.name!r}"
            )
        self._buffer.append(tup)
        if len(self._buffer) > self.max_buffer:
            overflow = len(self._buffer) - self.max_buffer
            del self._buffer[:overflow]
            self._base += overflow
        for listener in list(self._listeners):
            listener(tup)
        if self._batch_listeners:
            # Snapshot after the per-tuple phase: a batch listener
            # removed by a per-tuple callback for this very tuple never
            # sees it — identical to the per-tuple guard semantics.
            single = [tup]
            for listener in list(self._batch_listeners):
                listener(single)

    def append_batch(self, tuples: Iterable[StreamTuple]) -> int:
        """Append many tuples with amortized dispatch; returns the count.

        Per-tuple listeners observe semantics identical to N single
        :meth:`append` calls — tuples delivered one at a time, in order.
        Batch listeners receive the whole batch in **one** call, after
        the per-tuple phase, which is what lets a registered query run
        one pipeline invocation per batch.  The per-append overhead
        (closed check, schema validation, listener snapshot, overflow
        trim) is paid once per batch.  Deliberate differences from N
        single appends:

        - validation is atomic: every tuple's schema is checked before
          any is appended, so a bad batch changes nothing;
        - the buffer is trimmed to ``max_buffer`` once at the end, so it
          may transiently exceed the bound while the batch is in flight.

        A batch listener removed *mid-batch* (a query withdrawn by a
        per-tuple control listener — the revocation path) is
        synchronously delivered the prefix of the batch already
        dispatched to per-tuple listeners, so its output matches the
        per-tuple path exactly; see :meth:`remove_batch_listener`.
        Listeners must treat the batch list as read-only.
        """
        batch = tuples if isinstance(tuples, list) else list(tuples)
        if not batch:
            return 0
        if self._closed:
            raise StreamError(f"stream {self.name!r} is closed")
        schema = self.schema
        for tup in batch:
            if tup.schema is not schema and tup.schema != schema:
                raise StreamError(
                    f"tuple schema {tup.schema.name!r} does not match stream "
                    f"{self.name!r} schema {self.schema.name!r}"
                )
        tuple_listeners = list(self._listeners)
        batch_listeners = list(self._batch_listeners)
        previous = self._inflight
        inflight = _InflightDispatch(batch, set(batch_listeners), previous)
        self._inflight = inflight
        try:
            if tuple_listeners:
                buffer_append = self._buffer.append
                for index, tup in enumerate(batch):
                    inflight.progress = index
                    buffer_append(tup)
                    for listener in tuple_listeners:
                        listener(tup)
            else:
                self._buffer.extend(batch)
            inflight.batch_phase = True
            for listener in batch_listeners:
                if listener in inflight.done:
                    continue  # already flushed by a mid-batch removal
                inflight.done.add(listener)
                listener(batch)
        finally:
            self._inflight = previous
        if len(self._buffer) > self.max_buffer:
            overflow = len(self._buffer) - self.max_buffer
            del self._buffer[:overflow]
            self._base += overflow
        return len(batch)

    def extend(self, tuples: Iterable[StreamTuple]) -> None:
        """Append from an iterable, chunked so memory stays O(chunk)
        even for unbounded generators (batches get the amortized path)."""
        chunk: List[StreamTuple] = []
        for tup in tuples:
            chunk.append(tup)
            if len(chunk) >= 4096:
                self.append_batch(chunk)
                chunk = []
        if chunk:
            self.append_batch(chunk)

    def close(self) -> None:
        """Mark the stream complete; further appends raise."""
        self._closed = True

    def add_listener(self, callback: Callable[[StreamTuple], None]) -> None:
        """Register a push callback invoked once per appended tuple."""
        self._listeners.append(callback)

    def remove_listener(self, callback: Callable[[StreamTuple], None]) -> None:
        try:
            self._listeners.remove(callback)
        except ValueError:
            pass

    def add_batch_listener(self, callback: BatchListener) -> None:
        """Register a push callback invoked once per appended *batch*.

        Single :meth:`append` calls arrive as length-1 batches.  The
        callback must not mutate the list it is handed — the same list
        object is shared across listeners (and may be the appender's).
        """
        self._batch_listeners.append(callback)

    def remove_batch_listener(self, callback: BatchListener) -> None:
        """Unregister a batch listener; unknown listeners are ignored.

        When called while an :meth:`append_batch` dispatch is in its
        per-tuple phase — a query being withdrawn by a per-tuple control
        listener's callback — the listener is first delivered,
        synchronously, the prefix of the in-flight batch already
        dispatched to per-tuple listeners.  That makes
        withdraw-mid-batch output-identical to per-tuple dispatch,
        where the withdrawn query would have processed exactly those
        tuples before its guard engaged.  A listener removed during the
        batch phase (withdrawn from another batch listener's dispatch)
        receives nothing further — the per-tuple equivalent of its
        guard engaging before its turn — and is skipped by the
        end-of-batch sweep.
        """
        try:
            self._batch_listeners.remove(callback)
        except ValueError:
            pass
        inflight = self._inflight
        if (
            inflight is not None
            and callback in inflight.snapshot
            and callback not in inflight.done
        ):
            inflight.done.add(callback)
            if not inflight.batch_phase:
                prefix = inflight.batch[: inflight.progress]
                if prefix:
                    callback(prefix)

    def subscribe(self, from_start: bool = True) -> "StreamSubscription":
        """Create a pull cursor over this stream.

        With ``from_start=False`` the cursor begins at the current end of
        the stream and only sees tuples appended afterwards — matching how
        a newly-registered continuous query sees a live feed.
        """
        position = self._base if from_start else self.total_appended
        return StreamSubscription(self, position)

    def snapshot(self) -> List[StreamTuple]:
        """Return a copy of the currently retained tail."""
        return list(self._buffer)

    def _read_from(self, position: int) -> List[StreamTuple]:
        if position < self._base:
            raise StreamError(
                f"subscription on {self.name!r} fell behind the retained "
                f"buffer (wanted {position}, earliest retained {self._base})"
            )
        return self._buffer[position - self._base :]

    def __repr__(self) -> str:
        return f"Stream({self.name!r}, schema={self.schema.name!r}, n={self.total_appended})"


class StreamSubscription:
    """A pull cursor over a :class:`Stream` with an independent position."""

    def __init__(self, stream: Stream, position: int):
        self._stream = stream
        self._position = position  # guarded by: owner

    @property
    def stream(self) -> Stream:
        return self._stream

    @property
    def position(self) -> int:
        return self._position

    @property
    def pending(self) -> int:
        """Number of appended-but-unread tuples."""
        return self._stream.total_appended - self._position

    def poll(self, limit: Optional[int] = None) -> List[StreamTuple]:
        """Return (and consume) up to *limit* unread tuples."""
        available = self._stream._read_from(self._position)
        if limit is not None:
            available = available[:limit]
        self._position += len(available)
        return available

    def drain(self) -> List[StreamTuple]:
        """Return (and consume) all unread tuples."""
        return self.poll()
