"""Streams and subscriptions.

A :class:`Stream` is an append-only sequence of tuples with one schema.
Consumers attach :class:`StreamSubscription` cursors; each subscription
tracks its own read position so multiple independent readers (different
registered queries, the reconstruction-attack demo, tests) can drain the
same stream without interfering.

Streams keep a bounded in-memory tail (``max_buffer``) because real data
streams are unbounded; a subscription that falls behind the retained tail
raises rather than silently skipping data.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.errors import StreamError
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple


class Stream:
    """An append-only, schema-typed sequence of tuples."""

    def __init__(self, name: str, schema: Schema, max_buffer: int = 1_000_000):
        if max_buffer <= 0:
            raise StreamError("max_buffer must be positive")
        self.name = name
        self.schema = schema
        self.max_buffer = max_buffer
        self._buffer: List[StreamTuple] = []
        #: Index (in the unbounded logical stream) of ``_buffer[0]``.
        self._base = 0
        self._listeners: List[Callable[[StreamTuple], None]] = []
        self._closed = False

    @property
    def total_appended(self) -> int:
        """Number of tuples ever appended (the logical stream length)."""
        return self._base + len(self._buffer)

    @property
    def closed(self) -> bool:
        return self._closed

    def append(self, tup: StreamTuple) -> None:
        """Append one tuple, validating its schema, and notify listeners."""
        if self._closed:
            raise StreamError(f"stream {self.name!r} is closed")
        if tup.schema != self.schema:
            raise StreamError(
                f"tuple schema {tup.schema.name!r} does not match stream "
                f"{self.name!r} schema {self.schema.name!r}"
            )
        self._buffer.append(tup)
        if len(self._buffer) > self.max_buffer:
            overflow = len(self._buffer) - self.max_buffer
            del self._buffer[:overflow]
            self._base += overflow
        for listener in list(self._listeners):
            listener(tup)

    def append_batch(self, tuples: Iterable[StreamTuple]) -> int:
        """Append many tuples with amortized dispatch; returns the count.

        Listener-visible semantics match N single :meth:`append` calls
        exactly — tuples are delivered one at a time, in order, to every
        listener — but the per-append overhead (closed check, schema
        validation, listener-list snapshot, overflow trim) is paid once
        per batch.  Two deliberate differences from the per-append path:

        - validation is atomic: every tuple's schema is checked before
          any is appended, so a bad batch changes nothing;
        - the buffer is trimmed to ``max_buffer`` once at the end, so it
          may transiently exceed the bound while the batch is in flight.

        The listener snapshot spans the whole batch: a listener removed
        mid-batch (e.g. a query withdrawn by another listener's callback)
        keeps receiving the remaining tuples and must guard itself, which
        :class:`~repro.streams.engine.RegisteredQuery` does.
        """
        batch = tuples if isinstance(tuples, list) else list(tuples)
        if not batch:
            return 0
        if self._closed:
            raise StreamError(f"stream {self.name!r} is closed")
        schema = self.schema
        for tup in batch:
            if tup.schema is not schema and tup.schema != schema:
                raise StreamError(
                    f"tuple schema {tup.schema.name!r} does not match stream "
                    f"{self.name!r} schema {self.schema.name!r}"
                )
        listeners = list(self._listeners)
        if listeners:
            buffer_append = self._buffer.append
            for tup in batch:
                buffer_append(tup)
                for listener in listeners:
                    listener(tup)
        else:
            self._buffer.extend(batch)
        if len(self._buffer) > self.max_buffer:
            overflow = len(self._buffer) - self.max_buffer
            del self._buffer[:overflow]
            self._base += overflow
        return len(batch)

    def extend(self, tuples: Iterable[StreamTuple]) -> None:
        """Append from an iterable, chunked so memory stays O(chunk)
        even for unbounded generators (batches get the amortized path)."""
        chunk: List[StreamTuple] = []
        for tup in tuples:
            chunk.append(tup)
            if len(chunk) >= 4096:
                self.append_batch(chunk)
                chunk = []
        if chunk:
            self.append_batch(chunk)

    def close(self) -> None:
        """Mark the stream complete; further appends raise."""
        self._closed = True

    def add_listener(self, callback: Callable[[StreamTuple], None]) -> None:
        """Register a push callback invoked once per appended tuple."""
        self._listeners.append(callback)

    def remove_listener(self, callback: Callable[[StreamTuple], None]) -> None:
        try:
            self._listeners.remove(callback)
        except ValueError:
            pass

    def subscribe(self, from_start: bool = True) -> "StreamSubscription":
        """Create a pull cursor over this stream.

        With ``from_start=False`` the cursor begins at the current end of
        the stream and only sees tuples appended afterwards — matching how
        a newly-registered continuous query sees a live feed.
        """
        position = self._base if from_start else self.total_appended
        return StreamSubscription(self, position)

    def snapshot(self) -> List[StreamTuple]:
        """Return a copy of the currently retained tail."""
        return list(self._buffer)

    def _read_from(self, position: int) -> List[StreamTuple]:
        if position < self._base:
            raise StreamError(
                f"subscription on {self.name!r} fell behind the retained "
                f"buffer (wanted {position}, earliest retained {self._base})"
            )
        return self._buffer[position - self._base :]

    def __repr__(self) -> str:
        return f"Stream({self.name!r}, schema={self.schema.name!r}, n={self.total_appended})"


class StreamSubscription:
    """A pull cursor over a :class:`Stream` with an independent position."""

    def __init__(self, stream: Stream, position: int):
        self._stream = stream
        self._position = position

    @property
    def stream(self) -> Stream:
        return self._stream

    @property
    def position(self) -> int:
        return self._position

    @property
    def pending(self) -> int:
        """Number of appended-but-unread tuples."""
        return self._stream.total_appended - self._position

    def poll(self, limit: Optional[int] = None) -> List[StreamTuple]:
        """Return (and consume) up to *limit* unread tuples."""
        available = self._stream._read_from(self._position)
        if limit is not None:
            available = available[:limit]
        self._position += len(available)
        return available

    def drain(self) -> List[StreamTuple]:
        """Return (and consume) all unread tuples."""
        return self.poll()
