"""Query graphs: pipelines of Aurora boxes applied to one input stream.

The paper models a continuous query as a directed acyclic graph of
operators.  Every graph it manipulates (policy obligations, user queries,
their merge — Figures 1 and 4) is a *chain* over a single input stream
drawn from {filter, map, window-aggregation}, so :class:`QueryGraph` is an
ordered pipeline.  The class still validates like a general DAG node list:
schemas are propagated box-to-box and every operator is checked against
its actual input schema.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import GraphError
from repro.streams.operators.base import Operator
from repro.streams.operators.filter import FilterOperator
from repro.streams.operators.map import MapOperator
from repro.streams.operators.window import AggregateOperator
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple

_graph_counter = itertools.count(1)


def materialize_operator(operator: Operator, compiled: bool) -> Operator:
    """A fresh runnable copy of *operator* pinned to one execution path.

    ``compiled=False`` flips every copy that carries the flag to the
    seed interpreted path.  Shared by :class:`QueryGraphInstance` (the
    per-query path) and the shared execution plan
    (:mod:`repro.streams.plan`), so both modes flip the same switch.
    """
    copy = operator.fresh_copy()
    if not compiled and hasattr(copy, "use_compiled"):
        # Filter, map and window aggregation all carry their seed
        # implementations behind this flag (the window oracles in
        # tests/properties/test_prop_streams.py and the equivalence
        # harnesses pin both modes).
        copy.use_compiled = False
    return copy


class QueryGraph:
    """An ordered chain of operators over a named input stream."""

    def __init__(
        self,
        source: str,
        operators: Iterable[Operator] = (),
        name: Optional[str] = None,
    ):
        if not source:
            raise GraphError("query graph needs a source stream name")
        self.source = source
        self._operators: List[Operator] = list(operators)
        self.name = name or f"query_{next(_graph_counter)}"

    # -- construction --------------------------------------------------------

    def append(self, operator: Operator) -> "QueryGraph":
        """Append a box to the end of the chain; returns self for chaining."""
        if not isinstance(operator, Operator):
            raise GraphError(f"not an operator: {operator!r}")
        self._operators.append(operator)
        return self

    @property
    def operators(self) -> Tuple[Operator, ...]:
        return tuple(self._operators)

    def __len__(self) -> int:
        return len(self._operators)

    @property
    def is_passthrough(self) -> bool:
        """True when the graph applies no transformation at all."""
        return not self._operators

    # -- inspection ------------------------------------------------------------

    def find(self, kind: str) -> List[Operator]:
        """All operators whose :attr:`Operator.kind` equals *kind*."""
        return [op for op in self._operators if op.kind == kind]

    def single(self, kind: str) -> Optional[Operator]:
        """The unique operator of *kind*, or None.

        Raises :class:`GraphError` when more than one is present — the
        merge rules of Section 3.1 are defined on at most one operator of
        each type per graph.
        """
        found = self.find(kind)
        if len(found) > 1:
            raise GraphError(f"graph {self.name!r} has {len(found)} {kind} operators")
        return found[0] if found else None

    @property
    def filter_operator(self) -> Optional[FilterOperator]:
        return self.single("filter")  # type: ignore[return-value]

    @property
    def map_operator(self) -> Optional[MapOperator]:
        return self.single("map")  # type: ignore[return-value]

    @property
    def aggregate_operator(self) -> Optional[AggregateOperator]:
        return self.single("aggregate")  # type: ignore[return-value]

    # -- validation & execution ------------------------------------------------

    def validate(self, input_schema: Schema) -> Schema:
        """Propagate schemas through the chain; return the output schema.

        Raises on any inconsistency (unknown attribute, aggregate after a
        projection that dropped its input, type mismatch...).
        """
        schema = input_schema
        for operator in self._operators:
            schema = operator.output_schema(schema)
        return schema

    def schema_trace(self, input_schema: Schema) -> List[Schema]:
        """Schemas at every edge of the chain: input first, output last."""
        schemas = [input_schema]
        for operator in self._operators:
            schemas.append(operator.output_schema(schemas[-1]))
        return schemas

    def instantiate(
        self, input_schema: Schema, compiled: bool = True
    ) -> "QueryGraphInstance":
        """Build a runnable instance with fresh operator state.

        ``compiled=False`` builds a reference instance on the seed
        per-tuple interpreted path (see :class:`QueryGraphInstance`).
        """
        return QueryGraphInstance(self, input_schema, compiled=compiled)

    def fresh_copy(self, name: Optional[str] = None) -> "QueryGraph":
        return QueryGraph(
            self.source,
            [op.fresh_copy() for op in self._operators],
            name=name or self.name,
        )

    def describe(self) -> str:
        if not self._operators:
            return f"{self.source} → (passthrough)"
        chain = " → ".join(op.describe() for op in self._operators)
        return f"{self.source} → {chain}"

    def __repr__(self) -> str:
        return f"QueryGraph({self.name!r}: {self.describe()})"


class QueryGraphInstance:
    """A running copy of a query graph with per-operator state.

    Two execution modes, both output-identical (the batch-vs-single
    differential tests prove it):

    - **compiled** (default): :meth:`process_many` runs the pipeline
      stage by stage on whole batches via ``Operator.process_batch``,
      filters evaluate schema-compiled closures, and window aggregation
      runs on columnar per-attribute buffers with incremental aggregate
      states;
    - **reference** (``compiled=False``): every tuple walks the chain
      one box at a time, filter conditions are interpreted over the
      expression AST (the seed evaluator), projections use the seed
      name-based ``StreamTuple.project``, and window aggregation uses
      the seed row-oriented recompute-per-window buffers.  Kept for
      differential testing, mirroring ``PolicyDecisionPoint.reference()``.
    """

    def __init__(self, graph: QueryGraph, input_schema: Schema, compiled: bool = True):
        self.graph = graph
        self.compiled = compiled
        self._operators = [
            materialize_operator(op, compiled) for op in graph.operators
        ]
        self._schemas = graph.schema_trace(input_schema)
        self._stages = list(zip(self._operators, self._schemas[1:]))

    @property
    def input_schema(self) -> Schema:
        return self._schemas[0]

    @property
    def output_schema(self) -> Schema:
        return self._schemas[-1]

    def process(self, tup: StreamTuple) -> List[StreamTuple]:
        """Push one tuple through the whole chain; return emitted tuples."""
        batch = [tup]
        for operator, out_schema in self._stages:
            next_batch: List[StreamTuple] = []
            for item in batch:
                next_batch.extend(operator.process(item, out_schema))
            if not next_batch:
                return []
            batch = next_batch
        return batch

    def process_many(self, tuples: Sequence[StreamTuple]) -> List[StreamTuple]:
        """Push a batch through the whole chain, stage by stage.

        Output-equivalent to calling :meth:`process` per tuple and
        concatenating: operators see the same tuples in the same order,
        they just see them one batch at a time.  Never mutates *tuples*.
        """
        if not self.compiled:
            outputs: List[StreamTuple] = []
            for tup in tuples:
                outputs.extend(self.process(tup))
            return outputs
        batch: List[StreamTuple] = (
            tuples if isinstance(tuples, list) else list(tuples)
        )
        for operator, out_schema in self._stages:
            if not batch:
                break
            batch = operator.process_batch(batch, out_schema)
        return batch
