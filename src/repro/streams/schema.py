"""Stream schemas: ordered, typed attribute definitions.

In the Aurora model a data stream is an append-only sequence of tuples
sharing one schema.  A :class:`Schema` is an ordered mapping from attribute
name to :class:`Field`; order matters because StreamSQL ``CREATE STREAM``
statements list fields positionally (see the paper's Figure 4(b)).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import SchemaError, UnknownAttributeError


class DataType(enum.Enum):
    """Attribute data types supported by the engine.

    The subset matches what the paper's schemas use: timestamps, doubles,
    integers, booleans and strings.  ``TIMESTAMP`` is represented as a
    float (seconds since epoch) at runtime, like StreamBase's internal
    representation of sampling times.
    """

    INT = "int"
    DOUBLE = "double"
    STRING = "string"
    BOOL = "bool"
    TIMESTAMP = "timestamp"

    @property
    def python_types(self) -> Tuple[type, ...]:
        """Python types accepted for values of this data type."""
        return _PYTHON_TYPES[self]

    def coerce(self, value):
        """Coerce *value* to this data type, raising :class:`SchemaError`.

        Integers are accepted for ``DOUBLE``/``TIMESTAMP`` fields (they are
        widened to float); all other mismatches are rejected rather than
        silently converted, so a schema violation surfaces at ingress.
        """
        if isinstance(value, bool):
            if self is DataType.BOOL:
                return value
            raise SchemaError(f"cannot store bool value {value!r} in {self.value} field")
        if self is DataType.INT:
            if isinstance(value, int):
                return value
        elif self in (DataType.DOUBLE, DataType.TIMESTAMP):
            if isinstance(value, (int, float)):
                return float(value)
        elif self is DataType.STRING:
            if isinstance(value, str):
                return value
        elif self is DataType.BOOL:
            if isinstance(value, bool):
                return value
        raise SchemaError(
            f"value {value!r} ({type(value).__name__}) is not valid for "
            f"data type {self.value!r}"
        )

    @classmethod
    def parse(cls, text: str) -> "DataType":
        """Parse a StreamSQL type name (case-insensitive) into a DataType."""
        normalized = text.strip().lower()
        aliases = {
            "int": cls.INT,
            "integer": cls.INT,
            "long": cls.INT,
            "double": cls.DOUBLE,
            "float": cls.DOUBLE,
            "string": cls.STRING,
            "varchar": cls.STRING,
            "bool": cls.BOOL,
            "boolean": cls.BOOL,
            "timestamp": cls.TIMESTAMP,
        }
        if normalized not in aliases:
            raise SchemaError(f"unknown data type {text!r}")
        return aliases[normalized]


_PYTHON_TYPES: Dict[DataType, Tuple[type, ...]] = {
    DataType.INT: (int,),
    DataType.DOUBLE: (int, float),
    DataType.STRING: (str,),
    DataType.BOOL: (bool,),
    DataType.TIMESTAMP: (int, float),
}

#: Data types on which arithmetic aggregation (avg, sum, ...) is defined.
NUMERIC_TYPES = (DataType.INT, DataType.DOUBLE, DataType.TIMESTAMP)


class Field:
    """A single named, typed attribute of a stream schema."""

    __slots__ = ("name", "dtype")

    def __init__(self, name: str, dtype: Union[DataType, str]):
        if not name or not isinstance(name, str):
            raise SchemaError(f"invalid field name {name!r}")
        if not name[0].isalpha() and name[0] != "_":
            raise SchemaError(f"field name {name!r} must start with a letter")
        self.name = name
        self.dtype = dtype if isinstance(dtype, DataType) else DataType.parse(dtype)

    @property
    def is_numeric(self) -> bool:
        """True when arithmetic aggregates may be applied to this field."""
        return self.dtype in NUMERIC_TYPES

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Field)
            and self.name == other.name
            and self.dtype == other.dtype
        )

    def __hash__(self) -> int:
        return hash((self.name, self.dtype))

    def __repr__(self) -> str:
        return f"Field({self.name!r}, {self.dtype.value!r})"


class Schema:
    """An ordered collection of :class:`Field` objects.

    Attribute names are case-insensitive for lookup (StreamSQL is
    case-insensitive) but preserve their declared spelling for output.
    """

    def __init__(self, name: str, fields: Iterable[Union[Field, Tuple[str, Union[DataType, str]]]]):
        if not name:
            raise SchemaError("schema name must be non-empty")
        self.name = name
        self._fields: List[Field] = []
        self._by_name: Dict[str, Field] = {}
        self._positions: Dict[str, int] = {}
        for item in fields:
            field = item if isinstance(item, Field) else Field(item[0], item[1])
            key = field.name.lower()
            if key in self._by_name:
                raise SchemaError(f"duplicate field {field.name!r} in schema {name!r}")
            self._positions[key] = len(self._fields)
            self._fields.append(field)
            self._by_name[key] = field
        if not self._fields:
            raise SchemaError(f"schema {name!r} must have at least one field")
        self._names: Tuple[str, ...] = tuple(field.name for field in self._fields)

    @property
    def fields(self) -> Tuple[Field, ...]:
        return tuple(self._fields)

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """Declared attribute names, in schema order."""
        return self._names

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self._fields)

    def __contains__(self, attribute: str) -> bool:
        return isinstance(attribute, str) and attribute.lower() in self._by_name

    def field(self, attribute: str) -> Field:
        """Return the :class:`Field` named *attribute* (case-insensitive)."""
        try:
            return self._by_name[attribute.lower()]
        except KeyError:
            raise UnknownAttributeError(attribute, self.name) from None

    def position(self, attribute: str) -> int:
        """Return the 0-based position of *attribute* (case-insensitive)."""
        try:
            return self._positions[attribute.lower()]
        except KeyError:
            raise UnknownAttributeError(attribute, self.name) from None

    def positions(self, attributes: Iterable[str]) -> Tuple[int, ...]:
        """Positions of *attributes* (case-insensitive), in argument order.

        The batch paths resolve a whole attribute list to value-vector
        indices once per schema with this (columnar window buffers,
        compiled projections) instead of one lookup per tuple.
        """
        return tuple(self.position(attribute) for attribute in attributes)

    def canonical_name(self, attribute: str) -> str:
        """Return the declared spelling of *attribute*."""
        return self.field(attribute).name

    def project(self, attributes: Iterable[str], name: Optional[str] = None) -> "Schema":
        """Return a new schema containing only *attributes* (schema order).

        The projection preserves the original field order regardless of the
        order the caller lists attributes in — matching Aurora's map box.
        """
        wanted = {self.field(a).name for a in attributes}
        kept = [f for f in self._fields if f.name in wanted]
        if not kept:
            raise SchemaError(
                f"projection of schema {self.name!r} onto {sorted(wanted)!r} is empty"
            )
        return Schema(name or self.name, kept)

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self._fields == other._fields

    def __hash__(self) -> int:
        return hash(tuple(self._fields))

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}:{f.dtype.value}" for f in self._fields)
        return f"Schema({self.name!r}, [{inner}])"


#: The weather-station schema from the paper's Example 1 (Section 2.2).
WEATHER_SCHEMA = Schema(
    "weather",
    [
        Field("samplingtime", DataType.TIMESTAMP),
        Field("temperature", DataType.DOUBLE),
        Field("humidity", DataType.DOUBLE),
        Field("solarradiation", DataType.DOUBLE),
        Field("rainrate", DataType.DOUBLE),
        Field("windspeed", DataType.DOUBLE),
        Field("winddirection", DataType.INT),
        Field("barometer", DataType.DOUBLE),
    ],
)

#: GPS-track schema mentioned in the paper's evaluation (Section 4.2).
GPS_SCHEMA = Schema(
    "gps",
    [
        Field("samplingtime", DataType.TIMESTAMP),
        Field("deviceid", DataType.STRING),
        Field("latitude", DataType.DOUBLE),
        Field("longitude", DataType.DOUBLE),
        Field("altitude", DataType.DOUBLE),
        Field("speed", DataType.DOUBLE),
        Field("heading", DataType.INT),
    ],
)
