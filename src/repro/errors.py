"""Exception hierarchy for the eXACML+ reproduction.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch one base class.  Sub-hierarchies mirror the main
subsystems: the stream engine, the expression toolkit, the XACML substrate
and the eXACML+ core.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Stream engine (repro.streams)
# ---------------------------------------------------------------------------

class StreamError(ReproError):
    """Base class for stream-engine errors."""


class SchemaError(StreamError):
    """A schema is malformed, or a tuple does not match its schema."""


class UnknownAttributeError(SchemaError):
    """An operator or expression references an attribute not in the schema."""

    def __init__(self, attribute, schema_name=None):
        self.attribute = attribute
        self.schema_name = schema_name
        where = f" in schema {schema_name!r}" if schema_name else ""
        super().__init__(f"unknown attribute {attribute!r}{where}")


class GraphError(StreamError):
    """A query graph is structurally invalid (cycle, dangling box, ...)."""


class EngineError(StreamError):
    """The stream engine rejected an operation."""


class UnknownStreamError(EngineError):
    """A referenced input or output stream is not registered."""

    def __init__(self, name):
        self.name = name
        super().__init__(f"unknown stream {name!r}")


class UnknownHandleError(EngineError):
    """A stream handle URI does not resolve to a live query."""

    def __init__(self, uri):
        self.uri = uri
        super().__init__(f"unknown or withdrawn stream handle {uri!r}")


class StreamSQLError(StreamError):
    """A StreamSQL script could not be parsed."""

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


# ---------------------------------------------------------------------------
# Expression toolkit (repro.expr)
# ---------------------------------------------------------------------------

class ExpressionError(ReproError):
    """Base class for boolean-expression errors."""


class ExpressionSyntaxError(ExpressionError):
    """A condition string could not be parsed."""

    def __init__(self, message, position=None):
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class ExpressionTypeError(ExpressionError):
    """Operands of a comparison have incompatible types."""


# ---------------------------------------------------------------------------
# XACML substrate (repro.xacml)
# ---------------------------------------------------------------------------

class XacmlError(ReproError):
    """Base class for XACML errors."""


class PolicyParseError(XacmlError):
    """An XACML policy or request document could not be parsed."""


class PolicyStoreError(XacmlError):
    """The policy store rejected an operation (duplicate id, missing id...)."""


class ObligationError(XacmlError):
    """An obligation block is malformed or uses an unknown vocabulary."""


class ShardUnavailableError(PolicyStoreError):
    """A shard's worker is down, restarting, or declared degraded.

    Raised (or mapped onto a retryable wire error) instead of poisoning
    the whole pool: only the affected shard's traffic fails, and
    *retryable* tells callers whether a supervised restart is expected
    (``True`` — retry with backoff) or the shard has exhausted its
    restart budget and was declared degraded (``False``).
    """

    def __init__(self, shard_id, reason, retryable=True, degraded=False):
        self.shard_id = shard_id
        self.retryable = retryable
        self.degraded = degraded
        state = "degraded" if degraded else "unavailable"
        super().__init__(f"shard {shard_id} is {state}: {reason}")


# ---------------------------------------------------------------------------
# eXACML+ core (repro.core)
# ---------------------------------------------------------------------------

class AccessControlError(ReproError):
    """Base class for eXACML+ access-control errors."""


class AccessDeniedError(AccessControlError):
    """The PDP denied the request (or found it not applicable)."""

    def __init__(self, decision, message=None):
        self.decision = decision
        super().__init__(message or f"access denied: decision={decision}")


class ConcurrentAccessError(AccessControlError):
    """A credential already holds a live query on the requested stream.

    Enforces the single-access constraint of Section 3.4 of the paper,
    which prevents the multi-window reconstruction attack.
    """

    def __init__(self, subject, stream):
        self.subject = subject
        self.stream = stream
        super().__init__(
            f"subject {subject!r} already has an active query on stream "
            f"{stream!r}; concurrent windows would permit stream "
            f"reconstruction (paper Section 3.4)"
        )


class MergeError(AccessControlError):
    """Two query graphs cannot be merged under the Section 3.1 rules."""


class WindowRefinementError(MergeError):
    """A user window is finer-grained than the policy window allows."""


class EmptyResultWarning(AccessControlError):
    """NR: the user query conflicts with policy; no tuples can be returned."""

    def __init__(self, message, conflicts=None):
        self.conflicts = list(conflicts or [])
        super().__init__(message)


class PartialResultWarning(AccessControlError):
    """PR: some tuples the user expects may be withheld by policy."""

    def __init__(self, message, conflicts=None):
        self.conflicts = list(conflicts or [])
        super().__init__(message)


# ---------------------------------------------------------------------------
# Framework (repro.framework)
# ---------------------------------------------------------------------------

class FrameworkError(ReproError):
    """Base class for cloud-framework errors."""


class TransportError(FrameworkError):
    """A simulated network transfer failed (unknown endpoint, ...)."""


class ClientTimeoutError(FrameworkError):
    """A served call missed its per-call deadline.

    Deliberately *not* a :class:`TransportError`: the transport may be
    perfectly healthy while the server is merely slow or hung, and
    callers need to tell the two apart (a timed-out mutation may or may
    not have been applied, so it must not be blindly retried the way a
    transport-level connection failure can be surfaced and re-dialled).
    """
