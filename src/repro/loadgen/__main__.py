"""CLI entry point: ``python -m repro.loadgen``.

Self-serves a local :class:`AsyncDataServer` unless ``--host`` points
at a running one, drives the seeded closed-loop workload, prints live
per-op percentile tables, and writes the ``BENCH_loadgen.json``
artifact.  Exits non-zero when the run produced no measured evaluate
traffic — the smoke-gate contract CI's ``loadgen-smoke`` job relies
on.
"""

from __future__ import annotations

import argparse
import sys

from repro.loadgen.config import LoadgenConfig, MixWeights
from repro.loadgen.driver import run_loadgen


def parse_args(argv) -> LoadgenConfig:
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadgen",
        description="Closed-loop load generation against an AsyncDataServer.",
    )
    defaults = LoadgenConfig()
    parser.add_argument("--duration", type=float, default=defaults.duration,
                        help="run length in seconds, warmup included")
    parser.add_argument("--warmup", type=float, default=defaults.warmup,
                        help="leading seconds excluded from accounting")
    parser.add_argument("--target-qps", type=float, default=defaults.target_qps,
                        help="aggregate arrival rate across all connections")
    parser.add_argument("--seed", type=int, default=defaults.seed)
    parser.add_argument("--processes", type=int, default=defaults.processes,
                        help="worker processes")
    parser.add_argument("--connections", type=int, default=defaults.connections,
                        help="pipelined connections per worker")
    parser.add_argument("--max-burst", type=int, default=defaults.max_burst,
                        help="closed-loop admission cap per batch")
    parser.add_argument("--timeout", type=float, default=defaults.timeout,
                        help="per-batch client deadline in seconds")
    parser.add_argument("--max-retries", type=int, default=defaults.max_retries)
    parser.add_argument("--host", default=None,
                        help="drive an existing server (default: self-serve)")
    parser.add_argument("--port", type=int, default=0,
                        help="port of the existing server (with --host)")
    parser.add_argument("--mix", type=MixWeights.parse, default=defaults.mix,
                        metavar="evaluate=0.78,ingest=0.08,...",
                        help="op-mix weights (normalized)")
    parser.add_argument("--streams", type=int, default=defaults.streams)
    parser.add_argument("--subjects-per-stream", type=int,
                        default=defaults.subjects_per_stream)
    parser.add_argument("--zipf-alpha", type=float, default=defaults.zipf_alpha)
    parser.add_argument("--report-interval", type=float,
                        default=defaults.report_interval)
    parser.add_argument("--output", default=defaults.output,
                        help="artifact path (empty string skips writing)")
    arguments = parser.parse_args(argv)
    if arguments.host is not None and not arguments.port:
        parser.error("--host requires --port")
    return LoadgenConfig(
        duration=arguments.duration,
        warmup=arguments.warmup,
        target_qps=arguments.target_qps,
        seed=arguments.seed,
        processes=arguments.processes,
        connections=arguments.connections,
        max_burst=arguments.max_burst,
        timeout=arguments.timeout,
        max_retries=arguments.max_retries,
        host=arguments.host,
        port=arguments.port,
        mix=arguments.mix,
        streams=arguments.streams,
        subjects_per_stream=arguments.subjects_per_stream,
        zipf_alpha=arguments.zipf_alpha,
        report_interval=arguments.report_interval,
        output=arguments.output or None,
    ).validate()


def main(argv=None) -> int:
    config = parse_args(argv if argv is not None else sys.argv[1:])
    target = (
        f"{config.host}:{config.port}" if config.host else "self-served instance"
    )
    print(
        f"loadgen: {config.processes} process(es) x {config.connections} "
        f"connection(s) -> {target}, target {config.target_qps:.0f} qps "
        f"for {config.duration:.0f}s (warmup {config.warmup:.0f}s), "
        f"seed {config.seed}"
    )
    report = run_loadgen(config, live=True)
    if config.output:
        print(f"wrote {config.output}")
    latency = report["latency_ms"]
    if not latency.get("EvaluateOp", {}).get("count"):
        print("FAIL: no measured evaluate traffic", file=sys.stderr)
        return 1
    if report["achieved"]["qps"] <= 0:
        print("FAIL: achieved QPS is zero", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
