"""Closed-loop load-generation harness for the serving stack.

``python -m repro.loadgen --duration 5 --target-qps 500 --seed 7``
fires seeded mixed traffic (evaluate / ingest / policy churn, with
Zipf-keyed evaluate subjects) at an :class:`AsyncDataServer` from
multiple worker processes, each holding several pipelined
:class:`AsyncClient` connections, pacing arrivals to a target QPS
with closed-loop admission.  Live per-op percentile tables stream
during the run; the final report — achieved-vs-target QPS, per-op
p50/p90/p99, error/retry/timeout counts — lands in
``BENCH_loadgen.json`` and folds into ``BENCH_trajectory.json``.

``config``
    :class:`LoadgenConfig` / :class:`MixWeights` — one frozen
    dataclass fully describing a run.
``mix``
    :class:`OpMixStream` — the seeded deterministic op generator
    (same seed → identical op sequence).
``driver``
    :func:`run_loadgen` — multiprocess workers, pacing, accounting,
    plus the self-serve :class:`ServedInstance` target.
``report``
    Live tables and the JSON artifact.
"""

from repro.loadgen.config import LoadgenConfig, MixWeights
from repro.loadgen.driver import ServedInstance, build_server, run_loadgen
from repro.loadgen.mix import OpMixStream, ZipfSampler, derive_seed
from repro.loadgen.report import build_report, write_report

__all__ = [
    "LoadgenConfig",
    "MixWeights",
    "OpMixStream",
    "ServedInstance",
    "ZipfSampler",
    "build_report",
    "build_server",
    "derive_seed",
    "run_loadgen",
    "write_report",
]
