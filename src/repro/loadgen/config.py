"""Configuration for the closed-loop load-generation harness.

One frozen dataclass carries everything a run needs — duration, target
QPS, the seeded op-mix weights, worker/connection topology, and the
workload population — so a run is fully described by its config plus
its seed, and two runs with the same config generate identical op
sequences (pinned by ``tests/loadgen/test_mix.py``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Table 3's Zipf skew (`repro.workload.zipf`), reused so the served
#: workload's popularity curve matches the simulation's.
DEFAULT_ZIPF_ALPHA = 0.223


@dataclass(frozen=True)
class MixWeights:
    """Categorical op-mix distribution (normalized before sampling).

    The default mirrors ``bench_served_latency``'s mixed script:
    evaluate-heavy with a steady trickle of stream ingest and policy
    load/update/revoke churn.
    """

    evaluate: float = 0.78
    ingest: float = 0.08
    load: float = 0.06
    update: float = 0.04
    revoke: float = 0.04

    def normalized(self) -> Tuple[Tuple[str, float], ...]:
        pairs = [
            (kind, weight)
            for kind, weight in (
                ("evaluate", self.evaluate),
                ("ingest", self.ingest),
                ("load", self.load),
                ("update", self.update),
                ("revoke", self.revoke),
            )
            if weight > 0
        ]
        total = sum(weight for _, weight in pairs)
        if total <= 0:
            raise ValueError("op mix needs at least one positive weight")
        return tuple((kind, weight / total) for kind, weight in pairs)

    @classmethod
    def parse(cls, text: str) -> "MixWeights":
        """Parse ``evaluate=0.8,ingest=0.1,load=0.1`` CLI syntax
        (unmentioned kinds get weight 0)."""
        weights: Dict[str, float] = {f.name: 0.0 for f in dataclasses.fields(cls)}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            kind, _, value = part.partition("=")
            kind = kind.strip()
            if kind not in weights:
                raise ValueError(f"unknown op kind {kind!r} in mix {text!r}")
            weights[kind] = float(value)
        return cls(**weights)


@dataclass(frozen=True)
class LoadgenConfig:
    """Everything one load-generation run needs."""

    #: Total run length (seconds), warmup included.
    duration: float = 10.0
    #: Leading slice excluded from all latency/QPS accounting.
    warmup: float = 1.0
    #: Aggregate arrival rate across every worker and connection.
    target_qps: float = 500.0
    seed: int = 7
    #: Worker processes; each runs ``connections`` pipelined clients.
    processes: int = 2
    connections: int = 2
    #: Closed-loop admission cap: at most this many overdue arrivals
    #: are admitted per pipelined batch when the run falls behind.
    max_burst: int = 32
    #: Per-batch client deadline (seconds).
    timeout: float = 10.0
    #: Resends of retryable-error replies per op (idempotent ops only).
    max_retries: int = 2

    #: Existing server to drive; ``None`` self-serves a local
    #: :class:`AsyncDataServer` on an ephemeral loopback port.
    host: Optional[str] = None
    port: int = 0

    mix: MixWeights = field(default_factory=MixWeights)
    #: Workload population: ``streams`` input streams with
    #: ``subjects_per_stream`` permitted subjects each; evaluate
    #: traffic keys into that population Zipf-distributed.
    streams: int = 4
    subjects_per_stream: int = 25
    zipf_alpha: float = DEFAULT_ZIPF_ALPHA
    #: Fraction of evaluate requests from subjects no policy permits.
    stranger_fraction: float = 0.1
    ingest_batch: int = 5
    #: Evaluate as bare PDP decisions (no PEP workflow / registration).
    decide_only: bool = True

    #: Seconds between live percentile tables (and worker stat ticks).
    report_interval: float = 2.0
    #: Artifact path; ``None`` skips writing.
    output: Optional[str] = "BENCH_loadgen.json"

    def validate(self) -> "LoadgenConfig":
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not 0 <= self.warmup < self.duration:
            raise ValueError("warmup must satisfy 0 <= warmup < duration")
        if self.target_qps <= 0:
            raise ValueError("target_qps must be positive")
        if self.processes < 1 or self.connections < 1:
            raise ValueError("processes and connections must be >= 1")
        if self.max_burst < 1:
            raise ValueError("max_burst must be >= 1")
        if self.streams < 1 or self.subjects_per_stream < 1:
            raise ValueError("population needs >= 1 stream and subject")
        if not 0 <= self.stranger_fraction < 1:
            raise ValueError("stranger_fraction must be in [0, 1)")
        self.mix.normalized()  # raises on an all-zero mix
        return self

    @property
    def total_connections(self) -> int:
        return self.processes * self.connections

    @property
    def per_connection_qps(self) -> float:
        return self.target_qps / self.total_connections

    @property
    def measure_seconds(self) -> float:
        return self.duration - self.warmup

    def describe(self) -> Dict[str, object]:
        """JSON-ready echo of the knobs that shaped the run."""
        return {
            "duration_s": self.duration,
            "warmup_s": self.warmup,
            "target_qps": self.target_qps,
            "seed": self.seed,
            "processes": self.processes,
            "connections_per_process": self.connections,
            "max_burst": self.max_burst,
            "timeout_s": self.timeout,
            "max_retries": self.max_retries,
            "mix": dict(self.mix.normalized()),
            "streams": self.streams,
            "subjects_per_stream": self.subjects_per_stream,
            "zipf_alpha": self.zipf_alpha,
            "stranger_fraction": self.stranger_fraction,
            "ingest_batch": self.ingest_batch,
            "decide_only": self.decide_only,
        }
