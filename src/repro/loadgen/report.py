"""Live tables and the ``BENCH_loadgen.json`` artifact.

The live view is the dbworkload-style run table the serving stack
already renders (:meth:`LatencyRecorder.table`) plus an
achieved-vs-target line; the final artifact is JSON shaped for
``benchmarks/aggregate_bench.py`` — it lands at the repo root as
``BENCH_loadgen.json`` and is folded into ``BENCH_trajectory.json``
with every other benchmark, so the serving stack's throughput and
tail-latency claims travel with the repo as reproducible numbers.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Optional

from repro.loadgen.config import LoadgenConfig
from repro.serving.stats import LatencyRecorder


class LiveReporter:
    """Throttled live rendering over the parent-side accumulators."""

    def __init__(
        self,
        config: LoadgenConfig,
        recorder: LatencyRecorder,
        counters: Dict[str, object],
    ):
        self.config = config
        self.recorder = recorder
        self.counters = counters
        self._started = time.monotonic()
        self._last_printed = self._started
        self._last_count = 0

    def _achieved_line(self) -> str:
        """Period throughput (dbworkload-style): completions since the
        last table over the elapsed period — exact mid-run, unlike a
        cumulative rate diluted by worker spawn time."""
        now = time.monotonic()
        elapsed = now - self._started
        count = self.recorder.count()
        period_seconds = max(now - self._last_printed, 1e-9)
        period_qps = (count - self._last_count) / period_seconds
        self._last_count = count
        errors = sum(self.counters["errors"].values())
        return (
            f"  t+{elapsed:5.1f}s  period {period_qps:8.1f} qps "
            f"(target {self.config.target_qps:.0f})  "
            f"completed {self.counters['completed']}  errors {errors}  "
            f"retries {self.counters['retries']}  "
            f"timeouts {self.counters['timeouts']}"
        )

    def maybe_print(self) -> None:
        now = time.monotonic()
        if now - self._last_printed < self.config.report_interval:
            return
        if self.recorder.count():
            print(self.recorder.table())
        line = self._achieved_line()  # reads then advances the period
        self._last_printed = now
        print(line, flush=True)

    def print_final(self, report: Dict[str, object]) -> None:
        print()
        print(report["table"])
        achieved = report["achieved"]
        print(
            f"  achieved {achieved['qps']:.1f} qps of "
            f"{achieved['target_qps']:.0f} target "
            f"({achieved['attainment']:.2f} attainment) over "
            f"{achieved['measure_seconds']:.1f} measured seconds "
            f"({self.config.warmup:.1f}s warmup excluded)"
        )
        errors = report["errors"]
        print(
            f"  errors {sum(errors.values())} {errors if errors else ''} "
            f" retries {report['retries']}  timeouts {report['timeouts']}  "
            f"reconnects {report['reconnects']}",
            flush=True,
        )


def build_report(
    config: LoadgenConfig,
    recorder: LatencyRecorder,
    counters: Dict[str, object],
    wall_seconds: float,
    server_stats: Optional[Dict[str, Dict[str, float]]] = None,
) -> Dict[str, object]:
    """The machine-readable run summary (the artifact's content).

    Achieved QPS is measured-window completions over the configured
    measure window: every sample the recorder holds arrived after
    warmup, so ``count / (duration - warmup)`` is exact even though
    worker clocks are never compared across processes.
    """
    measured_completions = recorder.count()
    achieved_qps = measured_completions / config.measure_seconds
    report: Dict[str, object] = {
        "model": "measured",
        "config": config.describe(),
        "achieved": {
            "qps": achieved_qps,
            "target_qps": config.target_qps,
            "attainment": achieved_qps / config.target_qps,
            "measured_completions": measured_completions,
            "measure_seconds": config.measure_seconds,
            "wall_seconds": wall_seconds,
        },
        "issued": counters["issued"],
        "completed": counters["completed"],
        "retries": counters["retries"],
        "timeouts": counters["timeouts"],
        "reconnects": counters["reconnects"],
        "errors": dict(sorted(counters["errors"].items())),
        "latency_ms": recorder.to_dict(),
        "table": recorder.table(),
    }
    if server_stats is not None:
        report["server_side_latency_ms"] = server_stats
    return report


def write_report(report: Dict[str, object], path: str) -> Path:
    target = Path(path)
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return target
