"""The closed-loop load-generation driver.

Topology
    ``processes`` worker processes (spawned, so the parent's serving
    thread is never forked mid-flight), each running an asyncio loop
    with ``connections`` pipelined :class:`AsyncClient` connections.
    Workers stream per-op latency samples and counter deltas back to
    the parent over a multiprocessing queue; the parent folds them
    into one :class:`LatencyRecorder` and renders the live tables.

Pacing
    Open-loop arrivals, closed-loop admission.  Each connection owns a
    deterministic arrival schedule at ``target_qps / connections``
    (one tick every ``interval`` seconds); when a tick is due, every
    overdue arrival — capped at ``max_burst`` — is admitted as one
    pipelined batch, and the *next* batch is not admitted until the
    current one's replies are in.  A server that keeps up sees
    Poisson-ish paced traffic at the target rate; a server that falls
    behind is never buried under an unbounded backlog — the schedule
    lags instead, and the gap is exactly the reported
    achieved-vs-target attainment.

Accounting
    The leading ``warmup`` seconds are excluded from every sample and
    the achieved-QPS window.  Error replies are counted per kind;
    retryable errors on idempotent ops are resent (ahead of new
    arrivals, up to ``max_retries`` per op) and counted as retries;
    client deadline misses reconnect the connection and count as
    timeouts.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import queue as queue_module
import time
import traceback
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.core import stream_policy
from repro.errors import ClientTimeoutError, TransportError
from repro.framework.network import SimulatedNetwork
from repro.framework.server import DataServer
from repro.loadgen.config import LoadgenConfig
from repro.loadgen.mix import OpMixStream, churn_graph, op_kind, stream_name, subject_name
from repro.loadgen.report import LiveReporter, build_report, write_report
from repro.serving.client import RETRYABLE_OPS, AsyncClient
from repro.serving.wire import ErrorReply
from repro.serving.server import AsyncDataServer
from repro.serving.stats import LatencyRecorder
from repro.streams.engine import StreamEngine
from repro.streams.schema import WEATHER_SCHEMA

#: Counter keys every worker reports (deltas on ticks, totals on done).
COUNTER_KEYS = ("issued", "completed", "retries", "timeouts", "reconnects")


def new_counters() -> Dict[str, object]:
    counters: Dict[str, object] = {key: 0 for key in COUNTER_KEYS}
    counters["errors"] = {}
    return counters


def merge_counters(into: Dict[str, object], delta: Dict[str, object]) -> None:
    for key in COUNTER_KEYS:
        into[key] += delta.get(key, 0)
    for kind, count in delta.get("errors", {}).items():
        into["errors"][kind] = into["errors"].get(kind, 0) + count


# -- self-serve target ----------------------------------------------------------------


def build_server(config: LoadgenConfig) -> DataServer:
    """A DataServer populated for the loadgen workload: ``streams``
    weather-schema input streams, one permissive policy per
    (stream, subject) pair of the Zipf population."""
    network = SimulatedNetwork()
    engine = StreamEngine()
    for index in range(config.streams):
        engine.register_input_stream(stream_name(index), WEATHER_SCHEMA)
    server = DataServer(
        network,
        engine=engine,
        enforce_single_access=False,
        allow_partial_results=True,
    )
    for index in range(config.streams):
        for j in range(config.subjects_per_stream):
            server.load_policy(
                stream_policy(
                    f"p:{index}:{j}",
                    stream_name(index),
                    churn_graph(stream_name(index), 5),
                    subject=subject_name(index, j),
                )
            )
    return server


class ServedInstance:
    """An :class:`AsyncDataServer` on a background thread's event loop.

    The harness's self-serve mode: the parent process owns the server
    (so its :class:`LatencyRecorder` is readable after the run) while
    worker processes drive it over real loopback sockets.
    """

    def __init__(self, config: LoadgenConfig):
        self.config = config
        self.port: Optional[int] = None  # guarded by: owner
        self.front: Optional[AsyncDataServer] = None  # guarded by: owner
        self.error: Optional[BaseException] = None  # guarded by: owner
        self._ready = None  # guarded by: owner
        self._loop = None  # guarded by: owner
        self._stopped = None  # guarded by: owner
        self._thread = None  # guarded by: owner

    def __enter__(self) -> "ServedInstance":
        import threading

        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._serve()),
            name="loadgen-served-instance",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("self-served AsyncDataServer failed to start")
        if self.error is not None:
            raise RuntimeError(
                f"self-served AsyncDataServer failed: {self.error!r}"
            )
        return self

    async def _serve(self) -> None:
        try:
            server = build_server(self.config)
            self._loop = asyncio.get_running_loop()
            self._stopped = asyncio.Event()
            async with AsyncDataServer(server, max_in_flight=1024) as front:
                self.front = front
                self.port = front.port
                self._ready.set()
                await self._stopped.wait()
        except BaseException as error:  # surfaced to the entering thread
            self.error = error
            self._ready.set()

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stopped is not None:
            self._loop.call_soon_threadsafe(self._stopped.set)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def server_stats(self) -> Optional[Dict[str, Dict[str, float]]]:
        return self.front.stats.to_dict() if self.front is not None else None


# -- worker processes -----------------------------------------------------------------


class _WorkerState:
    """Samples + counters shared by one worker's connection tasks."""

    def __init__(self) -> None:
        self.samples: Dict[str, List[float]] = {}  # guarded by: owner
        self.counters = new_counters()  # guarded by: owner

    def record(self, op_name: str, seconds: float) -> None:
        self.samples.setdefault(op_name, []).append(seconds)

    def bump(self, key: str, by: int = 1) -> None:
        self.counters[key] += by

    def error(self, kind: str) -> None:
        errors = self.counters["errors"]
        errors[kind] = errors.get(kind, 0) + 1

    def drain(self) -> Tuple[Dict[str, List[float]], Dict[str, object]]:
        samples, self.samples = self.samples, {}
        counters, self.counters = self.counters, new_counters()
        return samples, counters


async def _drive_connection(
    config: LoadgenConfig,
    worker_id: int,
    connection_id: int,
    host: str,
    port: int,
    state: _WorkerState,
    started_at: float,
) -> None:
    """One connection's closed loop: pace, admit, record, retry."""
    loop = asyncio.get_running_loop()
    generator = OpMixStream(config, worker_id, connection_id)
    interval = 1.0 / config.per_connection_qps
    deadline = started_at + config.duration
    warmup_until = started_at + config.warmup
    next_fire = started_at
    # (op, attempt) pairs awaiting a resend after a retryable error.
    retry_queue: deque = deque()

    client = await AsyncClient.connect(
        host, port, timeout=config.timeout, max_retries=0
    )
    try:
        while True:
            now = loop.time()
            if now >= deadline:
                break
            if now < next_fire:
                await asyncio.sleep(min(next_fire - now, deadline - now))
                continue
            # Closed-loop admission: every overdue arrival, capped.
            due = min(int((now - next_fire) / interval) + 1, config.max_burst)
            batch: List[Tuple[object, int]] = []
            while retry_queue and len(batch) < due:
                batch.append(retry_queue.popleft())
            fresh = due - len(batch)
            for _ in range(fresh):
                batch.append((generator.next_op(), 0))
            next_fire += fresh * interval
            state.bump("issued", fresh)
            try:
                timed = await client.pipeline_timed(
                    [op for op, _ in batch], timeout=config.timeout
                )
            except ClientTimeoutError:
                # The connection is desynced; drop the batch, reconnect.
                state.bump("timeouts", len(batch))
                await client.aclose()
                state.bump("reconnects")
                client = await AsyncClient.connect(
                    host, port, timeout=config.timeout, max_retries=0
                )
                continue
            except (TransportError, ConnectionError, OSError):
                state.bump("reconnects")
                await client.aclose()
                client = await AsyncClient.connect(
                    host, port, timeout=config.timeout, max_retries=0
                )
                continue
            measured = loop.time() >= warmup_until
            for (op, attempt), (reply, seconds) in zip(batch, timed):
                if isinstance(reply, ErrorReply):
                    if measured:
                        state.error(reply.error_kind)
                    if (
                        reply.retryable
                        and isinstance(op, RETRYABLE_OPS)
                        and attempt < config.max_retries
                    ):
                        retry_queue.append((op, attempt + 1))
                        state.bump("retries")
                    continue
                state.bump("completed")
                if measured:
                    state.record(op_kind(op), seconds)
    finally:
        await client.aclose()


async def _report_ticks(
    config: LoadgenConfig, worker_id: int, state: _WorkerState, out_queue
) -> None:
    while True:
        await asyncio.sleep(config.report_interval)
        samples, counters = state.drain()
        if samples or any(counters[key] for key in COUNTER_KEYS):
            # analysis: allow[async-blocking] mp.Queue.put hands off to the feeder thread; effectively non-blocking
            out_queue.put(("tick", worker_id, {"samples": samples,
                                               "counters": counters}))


async def _worker(config: LoadgenConfig, worker_id: int, host: str, port: int,
                  out_queue) -> None:
    state = _WorkerState()
    # Connections start against a shared clock *after* the mix
    # generators are built, so pacing is not skewed by setup cost.
    started_at = asyncio.get_running_loop().time()
    reporter = asyncio.create_task(
        _report_ticks(config, worker_id, state, out_queue)
    )
    try:
        await asyncio.gather(
            *(
                _drive_connection(
                    config, worker_id, connection_id, host, port, state,
                    started_at,
                )
                for connection_id in range(config.connections)
            )
        )
    finally:
        reporter.cancel()
        try:
            await reporter
        except asyncio.CancelledError:
            pass
    samples, counters = state.drain()
    # analysis: allow[async-blocking] mp.Queue.put hands off to the feeder thread; effectively non-blocking
    out_queue.put(("done", worker_id, {"samples": samples,
                                       "counters": counters}))


def _worker_entry(config: LoadgenConfig, worker_id: int, host: str, port: int,
                  out_queue) -> None:
    """Top-level (picklable) process entry point."""
    try:
        asyncio.run(
            asyncio.wait_for(
                _worker(config, worker_id, host, port, out_queue),
                timeout=config.duration + 60.0,
            )
        )
    except BaseException:
        out_queue.put(("error", worker_id, traceback.format_exc()))
        raise


# -- the parent orchestration ---------------------------------------------------------


def run_loadgen(
    config: LoadgenConfig, live: bool = False
) -> Dict[str, object]:
    """Run one closed-loop load generation; returns the report dict.

    ``live=True`` prints a per-op percentile table (plus achieved-QPS
    line) every ``report_interval`` seconds while the run progresses.
    When ``config.output`` is set the report is also written there as
    JSON (the ``BENCH_loadgen.json`` artifact).
    """
    config.validate()
    served: Optional[ServedInstance] = None
    try:
        if config.host is None:
            served = ServedInstance(config).__enter__()
            host, port = "127.0.0.1", served.port
        else:
            host, port = config.host, config.port

        context = multiprocessing.get_context("spawn")
        out_queue = context.Queue()
        workers = [
            context.Process(
                target=_worker_entry,
                args=(config, worker_id, host, port, out_queue),
                daemon=True,
            )
            for worker_id in range(config.processes)
        ]
        started = time.monotonic()
        for worker in workers:
            worker.start()

        recorder = LatencyRecorder()
        counters = new_counters()
        reporter = LiveReporter(config, recorder, counters)
        done = 0
        failure: Optional[str] = None
        while done < len(workers):
            try:
                kind, worker_id, payload = out_queue.get(timeout=0.5)
            except queue_module.Empty:
                if all(not worker.is_alive() for worker in workers):
                    # Every worker exited without a closing message.
                    failure = "workers died without reporting"
                    break
                if live:
                    reporter.maybe_print()
                continue
            if kind == "error":
                failure = payload
                break
            for op_name, samples in payload["samples"].items():
                recorder.record_many(op_name, samples)
            merge_counters(counters, payload["counters"])
            if kind == "done":
                done += 1
            if live:
                reporter.maybe_print()
        for worker in workers:
            worker.join(timeout=30)
            if worker.is_alive():
                worker.terminate()
        if failure is not None:
            raise RuntimeError(f"loadgen worker failed:\n{failure}")
        wall_seconds = time.monotonic() - started

        report = build_report(
            config,
            recorder,
            counters,
            wall_seconds=wall_seconds,
            server_stats=served.server_stats() if served is not None else None,
        )
        if live:
            reporter.print_final(report)
        if config.output:
            write_report(report, config.output)
        return report
    finally:
        if served is not None:
            served.__exit__(None, None, None)
