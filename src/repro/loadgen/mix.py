"""Seeded op-mix generation: the workload half of the harness.

Each (worker, connection) pair owns one :class:`OpMixStream` — a
deterministic generator of wire ops driven by a single
``random.Random`` seeded arithmetically from ``(seed, worker_id,
connection_id)`` (never from string hashing, which varies per
interpreter run).  Same seed → byte-identical op sequence, the
property the whole harness's reproducibility claim rests on
(``tests/loadgen/test_mix.py`` pins it).

The mix is pyrqg-style: a categorical distribution over op kinds
(evaluate / ingest / policy load-update-revoke churn) with
Zipf-distributed evaluate keys — a small number of popular
(stream, subject) pairs absorb most of the traffic, the paper's
Figure 6(b) skew.  Churn policies live in a namespace private to the
generating connection, so concurrent connections never race on each
other's policy ids and the served run stays decision-deterministic
per connection.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Tuple

from repro.core import stream_policy
from repro.loadgen.config import LoadgenConfig
from repro.serving.wire import (
    EvaluateOp,
    IngestOp,
    LoadOp,
    RevokeOp,
    UpdateOp,
)
from repro.streams.graph import QueryGraph
from repro.streams.operators import FilterOperator
from repro.xacml.request import Request
from repro.xacml.xml_io import policy_to_xml, request_to_xml

#: Input streams are named ``lg0..lg{N-1}`` (registered by the
#: self-serve builder in ``driver.py`` over the weather schema).
STREAM_PREFIX = "lg"


def stream_name(index: int) -> str:
    return f"{STREAM_PREFIX}{index}"


def subject_name(stream_index: int, subject_index: int) -> str:
    return f"user{stream_index}:{subject_index}"


def derive_seed(*parts: int) -> int:
    """Mix integer parts into one 64-bit seed, splitmix64-style.

    Deliberately arithmetic: tuple/str ``hash()`` is salted per
    process, which would silently break cross-run reproducibility.
    """
    value = 0x9E3779B97F4A7C15
    for part in parts:
        value = (value ^ (part & 0xFFFFFFFFFFFFFFFF)) & 0xFFFFFFFFFFFFFFFF
        value = (value * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        value ^= value >> 27
    return value


class ZipfSampler:
    """Incremental Zipf(rank) sampling: P(rank r) ∝ (r+1)^-alpha.

    `repro.workload.zipf` materializes whole sequences with its own
    rng; the driver needs one draw per arrival from the connection's
    rng, so the cumulative table lives here and the caller's rng
    supplies the randomness.
    """

    def __init__(self, population: int, alpha: float):
        if population <= 0:
            raise ValueError("population must be positive")
        weights = [rank ** (-alpha) for rank in range(1, population + 1)]
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]

    def sample(self, rng: random.Random) -> int:
        """A 0-based rank (0 = most popular)."""
        point = rng.random() * self._total
        return bisect.bisect_left(self._cumulative, point)


def churn_graph(stream: str, threshold: int) -> QueryGraph:
    return QueryGraph(stream).append(FilterOperator(f"rainrate > {threshold}"))


class OpMixStream:
    """Deterministic per-connection op generator."""

    def __init__(self, config: LoadgenConfig, worker_id: int, connection_id: int):
        self.config = config
        self.worker_id = worker_id
        self.connection_id = connection_id
        self._rng = random.Random(
            derive_seed(config.seed, worker_id, connection_id)
        )
        self._mix = config.mix.normalized()
        self._mix_cumulative = list(
            itertools.accumulate(weight for _, weight in self._mix)
        )
        population = config.streams * config.subjects_per_stream
        #: Popularity rank r → (stream, subject), interleaved across
        #: streams so the hot set spans every stream.
        self._population: List[Tuple[int, int]] = [
            (rank % config.streams, rank // config.streams)
            for rank in range(population)
        ]
        self._zipf = ZipfSampler(population, config.zipf_alpha)
        #: Policy ids this connection has loaded and not yet revoked.
        self._live_policies: List[str] = []
        self._churn_sequence = 0

    # -- op builders -------------------------------------------------------------

    def _pick_kind(self) -> str:
        point = self._rng.random()
        index = bisect.bisect_left(self._mix_cumulative, point)
        return self._mix[min(index, len(self._mix) - 1)][0]

    def _evaluate(self) -> EvaluateOp:
        rng = self._rng
        if rng.random() < self.config.stranger_fraction:
            stream_index = rng.randrange(self.config.streams)
            subject = f"stranger{rng.randrange(10_000)}"
        else:
            stream_index, subject_index = self._population[self._zipf.sample(rng)]
            subject = subject_name(stream_index, subject_index)
        return EvaluateOp(
            request_to_xml(Request.simple(subject, stream_name(stream_index))),
            None,
            self.config.decide_only,
        )

    def _ingest(self) -> IngestOp:
        rng = self._rng
        records = [
            {
                "samplingtime": i,
                "temperature": round(rng.uniform(18, 36), 3),
                "humidity": round(rng.uniform(30, 100), 3),
                "solarradiation": round(rng.uniform(0, 900), 3),
                "rainrate": round(rng.uniform(0, 12), 3),
                "windspeed": round(rng.uniform(0, 25), 3),
                "winddirection": rng.randrange(360),
                "barometer": round(rng.uniform(985, 1035), 3),
            }
            for i in range(self.config.ingest_batch)
        ]
        return IngestOp(stream_name(rng.randrange(self.config.streams)), records)

    def _churn_policy_xml(self, policy_id: str) -> str:
        stream = stream_name(self.connection_id % self.config.streams)
        return policy_to_xml(
            stream_policy(
                policy_id,
                stream,
                churn_graph(stream, self._rng.randint(1, 9)),
                subject=f"churn:{self.worker_id}:{self.connection_id}",
            )
        )

    def _load(self) -> LoadOp:
        policy_id = (
            f"churn:{self.worker_id}:{self.connection_id}:{self._churn_sequence}"
        )
        self._churn_sequence += 1
        self._live_policies.append(policy_id)
        return LoadOp(self._churn_policy_xml(policy_id))

    def _update(self) -> UpdateOp:
        return UpdateOp(self._churn_policy_xml(self._rng.choice(self._live_policies)))

    def _revoke(self) -> RevokeOp:
        return RevokeOp(
            self._live_policies.pop(self._rng.randrange(len(self._live_policies)))
        )

    # -- the generator -----------------------------------------------------------

    def next_op(self):
        kind = self._pick_kind()
        if kind == "evaluate":
            return self._evaluate()
        if kind == "ingest":
            return self._ingest()
        # Update/revoke before anything is live degrade to a load, so
        # the churn namespace is self-priming.
        if kind == "load" or not self._live_policies:
            return self._load()
        if kind == "update":
            return self._update()
        return self._revoke()

    def take(self, count: int) -> List[object]:
        """The next *count* ops (test/inspection convenience)."""
        return [self.next_op() for _ in range(count)]


def op_kind(op) -> str:
    """Stable per-op label — matches the server-side recorder's rows."""
    return type(op).__name__
