"""Rendering measured results in the shape of the paper's tables/figures."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.framework.metrics import (
    MetricsCollector,
    RequestTrace,
    summarize,
)


def summary_table(metrics: MetricsCollector, systems: Sequence[str]) -> str:
    """Mean/percentile table of total response times per system."""
    header = (
        f"{'system':>14s} {'n':>6s} {'mean':>8s} {'stdev':>8s} "
        f"{'p50':>8s} {'p90':>8s} {'p99':>8s} {'max':>8s}"
    )
    lines = [header]
    for system in systems:
        stats = metrics.summary(system)
        lines.append(
            f"{system:>14s} {stats.count:>6d} {stats.mean:>8.3f} "
            f"{stats.stdev:>8.3f} {stats.p50:>8.3f} {stats.p90:>8.3f} "
            f"{stats.p99:>8.3f} {stats.maximum:>8.3f}"
        )
    return "\n".join(lines)


def cdf_table(metrics: MetricsCollector, systems: Sequence[str]) -> str:
    """Figure-6-style CDF grid (log-spaced time points)."""
    return metrics.ascii_cdf(systems)


def breakdown_table(traces: Sequence[RequestTrace], sample_every: int = 1) -> str:
    """Figure-7-style per-request rows: total / PDP / QueryGraph / submit."""
    header = (
        f"{'seq':>5s} {'total':>8s} {'pdp':>9s} {'graph':>9s} "
        f"{'submit':>8s} {'network':>8s}"
    )
    lines = [header]
    for trace in traces[::sample_every]:
        lines.append(
            f"{trace.sequence_no:>5d} {trace.total:>8.3f} {trace.pdp:>9.5f} "
            f"{trace.query_graph:>9.5f} {trace.dsms_submit:>8.3f} "
            f"{trace.network:>8.3f}"
        )
    return "\n".join(lines)


def breakdown_summary(traces: Sequence[RequestTrace]) -> Dict[str, object]:
    """Aggregate the Figure-7 claims into checkable numbers."""
    ok = [t for t in traces if t.outcome == "ok"]
    if not ok:
        return {"count": 0}
    totals = summarize([t.total for t in ok])
    pdp = summarize([t.pdp for t in ok])
    graph = summarize([t.query_graph for t in ok])
    submit_share = sum(t.dsms_submit / t.total for t in ok) / len(ok)
    network_share = sum(t.network / t.total for t in ok) / len(ok)
    sub_second = sum(1 for t in ok if t.total < 1.0) / len(ok)
    # "consistent for over 99% of the requests": fraction within 3× median.
    consistent = sum(1 for t in ok if t.total <= 3 * totals.p50) / len(ok)
    return {
        "count": len(ok),
        "total": totals,
        "pdp": pdp,
        "query_graph": graph,
        "pdp_graph_under_10ms": sum(
            1 for t in ok if (t.pdp + t.query_graph) < 0.01
        ) / len(ok),
        "submit_share": submit_share,
        "network_share": network_share,
        "sub_second_fraction": sub_second,
        "consistent_fraction": consistent,
    }


def improvement_histogram(
    cache_on: Sequence[RequestTrace], cache_off: Sequence[RequestTrace]
) -> Dict[str, float]:
    """Per-request speedup of cache-on vs cache-off (Figure 6(b) claims).

    The paper reports "over 100% improvement ... for nearly 40% of the
    ... requests and at least 10% improvement for the rest".  Requests
    are matched positionally (both runs replay the same Zipf sequence).
    """
    paired = [
        (off.total, on.total)
        for off, on in zip(cache_off, cache_on)
        if off.outcome == "ok" and on.outcome == "ok" and on.total > 0
    ]
    if not paired:
        return {"count": 0.0}
    improvements = [(off - on) / on for off, on in paired]
    over_100 = sum(1 for i in improvements if i >= 1.0) / len(improvements)
    over_10 = sum(1 for i in improvements if i >= 0.10) / len(improvements)
    mean = sum(improvements) / len(improvements)
    return {
        "count": float(len(improvements)),
        "mean_improvement": mean,
        "fraction_over_100pct": over_100,
        "fraction_over_10pct": over_10,
    }


def policy_load_summary(load_times: Sequence[float]) -> Tuple[float, float]:
    """(mean, stdev) of policy load times — the paper reports 0.25 ± 0.06."""
    stats = summarize(list(load_times))
    return stats.mean, stats.stdev
