"""Workload generation and experiment harness (paper Section 4.2).

- :mod:`repro.workload.generator` — the Table 3 workload: query graphs
  drawn from the seven FB/MB/AB shape combinations, unique policies and
  matching requests with optional customised queries, and the equivalent
  StreamSQL scripts fed to the direct-query baseline;
- :mod:`repro.workload.zipf` — the Zipf-distributed request sequence
  (α = 0.223, maxRank = 300) of Figure 6(b);
- :mod:`repro.workload.runner` — deploys the full framework and replays
  the sequences, producing the traces behind Figures 6 and 7;
- :mod:`repro.workload.report` — renders the measured distributions as
  the tables and ASCII curves recorded in EXPERIMENTS.md.
"""

from repro.workload.generator import (
    SHAPE_COMPOSITION,
    TABLE3,
    WorkloadGenerator,
    WorkloadItem,
)
from repro.workload.zipf import zipf_ranks, zipf_sequence
from repro.workload.runner import ExperimentRunner
from repro.workload.report import (
    breakdown_table,
    cdf_table,
    improvement_histogram,
    summary_table,
)

__all__ = [
    "SHAPE_COMPOSITION",
    "TABLE3",
    "WorkloadGenerator",
    "WorkloadItem",
    "zipf_ranks",
    "zipf_sequence",
    "ExperimentRunner",
    "breakdown_table",
    "cdf_table",
    "improvement_histogram",
    "summary_table",
]
