"""The Table 3 workload generator.

Each continuous query in the paper's experiment corresponds to three
artifacts: (1) a StreamSQL script for the direct-query system, (2) an
XACML policy whose obligations encode exactly the same query graph, and
(3) a matching XACML request (optionally carrying a customised user
query).  Query-graph shapes are drawn from seven combinations of
Filter (FB), Map (MB) and Aggregation (AB) boxes with the composition
160 : 170 : 130 : 124 : 254 : 290 : 372
(FB : MB : AB : FB+MB : FB+AB : MB+AB : FB+MB+AB), and "the actual
specifications of each query graph are generated randomly, but ...
parameter names are consistent with those in stream schemas".

Customised user queries are generated as *compatible refinements* of the
policy graph — tighter filter thresholds, identical projections, and
equal-or-coarser windows over a subset of the policy's aggregations — so
the PEP's merge succeeds without NR warnings, matching the paper's setup
where "PDP will always permit the request so that PEP can generate query
graphs from obligations and user queries".
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.obligations import stream_policy
from repro.core.user_query import UserQuery
from repro.expr.ast import AndExpression, BooleanExpression, Operator, SimpleExpression
from repro.streams.graph import QueryGraph
from repro.streams.operators.aggregate import get_aggregate_function
from repro.streams.operators.filter import FilterOperator
from repro.streams.operators.map import MapOperator
from repro.streams.operators.window import (
    AggregateOperator,
    AggregationSpec,
    WindowSpec,
    WindowType,
)
from repro.streams.schema import GPS_SCHEMA, WEATHER_SCHEMA, DataType, Schema
from repro.streams.streamsql.generator import generate_streamsql
from repro.xacml.policy import Policy
from repro.xacml.request import Request


class Table3(NamedTuple):
    """The parameters of the paper's Table 3."""

    n_direct_queries: int = 1500
    direct_query_composition: Tuple[int, ...] = (160, 170, 130, 124, 254, 290, 372)
    n_policies: int = 1000
    n_requests: int = 1500
    zipf_alpha: float = 0.223
    zipf_max_rank: int = 300


TABLE3 = Table3()

#: The seven shapes, as (has_filter, has_map, has_aggregate), in the
#: composition order of Table 3.
SHAPES: Tuple[Tuple[bool, bool, bool], ...] = (
    (True, False, False),   # Single FB
    (False, True, False),   # Single MB
    (False, False, True),   # Single AB
    (True, True, False),    # FB + MB
    (True, False, True),    # FB + AB
    (False, True, True),    # MB + AB
    (True, True, True),     # FB + MB + AB
)

SHAPE_NAMES = ("FB", "MB", "AB", "FB+MB", "FB+AB", "MB+AB", "FB+MB+AB")

#: Shape composition of Table 3 (aligned with SHAPES).
SHAPE_COMPOSITION: Dict[str, int] = dict(
    zip(SHAPE_NAMES, TABLE3.direct_query_composition)
)

#: Plausible value ranges per numeric attribute, used for random filter
#: thresholds so the generated conditions reference real schema names
#: with sensible constants.
_VALUE_RANGES: Dict[str, Tuple[float, float]] = {
    "temperature": (15.0, 38.0),
    "humidity": (20.0, 100.0),
    "solarradiation": (0.0, 1000.0),
    "rainrate": (0.0, 120.0),
    "windspeed": (0.0, 30.0),
    "winddirection": (0.0, 360.0),
    "barometer": (990.0, 1025.0),
    "latitude": (1.2, 1.5),
    "longitude": (103.6, 104.1),
    "altitude": (0.0, 80.0),
    "speed": (0.0, 35.0),
    "heading": (0.0, 360.0),
}

_FILTER_OPS = (Operator.GT, Operator.GE, Operator.LT, Operator.LE)


class WorkloadItem(NamedTuple):
    """One unit of workload: the three files of the paper's setup."""

    index: int
    shape: str
    stream: str
    policy: Policy
    request: Request
    user_query: Optional[UserQuery]
    direct_sql: str
    graph: QueryGraph


class WorkloadGenerator:
    """Seeded generator of the Table 3 workload."""

    def __init__(
        self,
        seed: int = 2012,
        parameters: Table3 = TABLE3,
        streams: Optional[Dict[str, Schema]] = None,
        user_query_fraction: float = 0.3,
    ):
        self._rng = random.Random(seed)
        self.parameters = parameters
        #: The "few real-time data streams" of the authors' deployment:
        #: several weather feeds plus GPS tracks.
        self.streams: Dict[str, Schema] = streams or {
            "weather0": _renamed(WEATHER_SCHEMA, "weather0"),
            "weather1": _renamed(WEATHER_SCHEMA, "weather1"),
            "weather2": _renamed(WEATHER_SCHEMA, "weather2"),
            "weather3": _renamed(WEATHER_SCHEMA, "weather3"),
            "gps0": _renamed(GPS_SCHEMA, "gps0"),
            "gps1": _renamed(GPS_SCHEMA, "gps1"),
        }
        self.user_query_fraction = user_query_fraction

    # -- random graph pieces -----------------------------------------------------

    def _numeric_attributes(self, schema: Schema) -> List[str]:
        return [
            field.name
            for field in schema
            if field.is_numeric and field.dtype is not DataType.TIMESTAMP
        ]

    def _random_filter(self, schema: Schema) -> FilterOperator:
        literal_count = self._rng.choice((1, 1, 2))
        literals: List[BooleanExpression] = []
        attributes = self._rng.sample(
            self._numeric_attributes(schema), k=literal_count
        )
        for attribute in attributes:
            low, high = _VALUE_RANGES.get(attribute.lower(), (0.0, 100.0))
            op = self._rng.choice(_FILTER_OPS)
            # Keep thresholds inside the central band so conditions pass a
            # realistic fraction of tuples.
            value = round(self._rng.uniform(low + 0.1 * (high - low),
                                            high - 0.1 * (high - low)), 2)
            literals.append(SimpleExpression(attribute, op, value))
        condition: BooleanExpression = (
            literals[0] if len(literals) == 1 else AndExpression(tuple(literals))
        )
        return FilterOperator(condition)

    def _random_map(self, schema: Schema, required: Sequence[str] = ()) -> MapOperator:
        names = list(schema.attribute_names)
        count = self._rng.randint(max(2, len(required)), max(3, len(names) - 2))
        chosen = set(a.lower() for a in required)
        chosen.add("samplingtime")
        candidates = [n for n in names if n.lower() not in chosen]
        self._rng.shuffle(candidates)
        for name in candidates[: max(0, count - len(chosen))]:
            chosen.add(name.lower())
        ordered = [n for n in names if n.lower() in chosen]
        return MapOperator(ordered)

    def _random_aggregate(self, schema: Schema) -> AggregateOperator:
        numeric = self._numeric_attributes(schema)
        spec_count = self._rng.choice((1, 2, 2, 3))
        attributes = self._rng.sample(numeric, k=min(spec_count, len(numeric)))
        functions = ("avg", "max", "min", "sum")
        specs = [
            AggregationSpec(attribute, get_aggregate_function(self._rng.choice(functions)))
            for attribute in attributes
        ]
        specs.insert(
            0, AggregationSpec("samplingtime", get_aggregate_function("lastval"))
        )
        size = self._rng.randint(4, 20)
        step = self._rng.randint(2, size)
        return AggregateOperator(WindowSpec(WindowType.TUPLE, size, step), specs)

    def random_graph(self, stream: str, shape: Tuple[bool, bool, bool]) -> QueryGraph:
        """A random, schema-consistent graph of the given FB/MB/AB shape."""
        schema = self.streams[stream]
        has_filter, has_map, has_aggregate = shape
        graph = QueryGraph(stream)
        aggregate = self._random_aggregate(schema) if has_aggregate else None
        if has_filter:
            graph.append(self._random_filter(schema))
        if has_map:
            required = (
                [spec.attribute for spec in aggregate.aggregations]
                if aggregate is not None
                else ()
            )
            graph.append(self._random_map(schema, required=required))
        if aggregate is not None:
            graph.append(aggregate)
        graph.validate(schema)
        return graph

    # -- refinement user queries ----------------------------------------------------

    def _refine(self, stream: str, graph: QueryGraph) -> UserQuery:
        """A customised query compatible with *graph* (no NR on merge)."""
        filter_condition: Optional[BooleanExpression] = None
        policy_filter = graph.filter_operator
        if policy_filter is not None:
            filter_condition = _tighten(policy_filter.condition, self._rng)
        map_attributes: Sequence[str] = ()
        policy_map = graph.map_operator
        if policy_map is not None:
            map_attributes = policy_map.attributes
        window = None
        aggregations: Sequence[AggregationSpec] = ()
        policy_aggregate = graph.aggregate_operator
        if policy_aggregate is not None:
            base = policy_aggregate.window
            window = WindowSpec(
                base.window_type,
                base.size + self._rng.randint(0, 6),
                base.step + self._rng.randint(0, 3),
            )
            aggregations = list(policy_aggregate.aggregations)
        return UserQuery(stream, filter_condition, map_attributes, window, aggregations)

    # -- the full workload -------------------------------------------------------------

    def _shape_sequence(self, count: int) -> List[int]:
        """Shape indexes for *count* items, honouring the composition."""
        composition = self.parameters.direct_query_composition
        total = sum(composition)
        sequence: List[int] = []
        for shape_index, share in enumerate(composition):
            sequence.extend([shape_index] * round(share * count / total))
        while len(sequence) < count:
            sequence.append(len(SHAPES) - 1)
        del sequence[count:]
        self._rng.shuffle(sequence)
        return sequence

    def generate(self) -> List[WorkloadItem]:
        """Produce the full request workload (``n_requests`` items).

        Items 0..n_policies-1 introduce unique policies; the remainder
        reuse earlier policies (the paper has 1000 unique policies behind
        1500 matching requests) with fresh customised queries.
        """
        parameters = self.parameters
        shape_sequence = self._shape_sequence(parameters.n_requests)
        stream_names = sorted(self.streams)
        items: List[WorkloadItem] = []
        policies: List[Tuple[Policy, str, QueryGraph, str]] = []
        for index in range(parameters.n_requests):
            if index < parameters.n_policies:
                shape = SHAPES[shape_sequence[index]]
                shape_name = SHAPE_NAMES[shape_sequence[index]]
                stream = self._rng.choice(stream_names)
                graph = self.random_graph(stream, shape)
                subject = f"user{index}"
                policy = stream_policy(
                    f"policy:{index}", stream, graph, subject=subject,
                    description=f"workload policy {index} ({shape_name})",
                )
                policies.append((policy, subject, graph, shape_name))
            else:
                policy, subject, graph, shape_name = policies[
                    index - parameters.n_policies
                ]
                stream = graph.source
            user_query = (
                self._refine(stream, graph)
                if self._rng.random() < self.user_query_fraction
                else None
            )
            request = Request.simple(subject, stream)
            items.append(
                WorkloadItem(
                    index=index,
                    shape=shape_name,
                    stream=stream,
                    policy=policy,
                    request=request,
                    user_query=user_query,
                    direct_sql=generate_streamsql(graph),
                    graph=graph,
                )
            )
        return items

    def direct_queries(self, items: Sequence[WorkloadItem]) -> List[str]:
        """The StreamSQL scripts for the direct-query baseline."""
        return [item.direct_sql for item in items]

    def unique_policies(self, items: Sequence[WorkloadItem]) -> List[Policy]:
        seen = set()
        policies = []
        for item in items:
            if item.policy.policy_id not in seen:
                seen.add(item.policy.policy_id)
                policies.append(item.policy)
        return policies


def _renamed(schema: Schema, name: str) -> Schema:
    return Schema(name, schema.fields)


def _tighten(condition: BooleanExpression, rng: random.Random) -> BooleanExpression:
    """Tighten every literal of a conjunctive condition.

    ``x > v`` becomes ``x > v'`` with ``v' ≥ v`` (similarly mirrored for
    ``<``), so the user set is a subset of the policy set and the merge
    produces neither NR nor PR for the filter pair.
    """
    if isinstance(condition, SimpleExpression):
        return _tighten_literal(condition, rng)
    if isinstance(condition, AndExpression):
        return AndExpression(
            tuple(_tighten(child, rng) for child in condition.children)
        )
    return condition


def _tighten_literal(literal: SimpleExpression, rng: random.Random) -> SimpleExpression:
    if not isinstance(literal.value, (int, float)):
        return literal
    delta = abs(literal.value) * rng.uniform(0.0, 0.15) + rng.uniform(0.0, 1.0)
    if literal.op in (Operator.GT, Operator.GE):
        return SimpleExpression(literal.attribute, literal.op, round(literal.value + delta, 2))
    if literal.op in (Operator.LT, Operator.LE):
        return SimpleExpression(literal.attribute, literal.op, round(literal.value - delta, 2))
    return literal
