"""Zipf-distributed request sequences (Figure 6(b)'s workload).

"The sequence follows Zipf distribution, which models the scenario where
a small number of popular streams are requested frequently" — with the
paper's parameters α = 0.223 and maxRank = 300 (Table 3).
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")

#: Table 3 values.
DEFAULT_ALPHA = 0.223
DEFAULT_MAX_RANK = 300


def zipf_ranks(
    length: int,
    alpha: float = DEFAULT_ALPHA,
    max_rank: int = DEFAULT_MAX_RANK,
    seed: int = 42,
) -> List[int]:
    """Sample *length* ranks in ``[1, max_rank]`` with P(r) ∝ r^-α."""
    if max_rank <= 0:
        raise ValueError("max_rank must be positive")
    rng = random.Random(seed)
    weights = [rank ** (-alpha) for rank in range(1, max_rank + 1)]
    cumulative = list(itertools.accumulate(weights))
    total = cumulative[-1]
    ranks = []
    for _ in range(length):
        point = rng.random() * total
        ranks.append(bisect.bisect_left(cumulative, point) + 1)
    return ranks


def zipf_sequence(
    population: Sequence[T],
    length: int,
    alpha: float = DEFAULT_ALPHA,
    max_rank: int = DEFAULT_MAX_RANK,
    seed: int = 42,
) -> List[T]:
    """A length-*length* sequence over the first *max_rank* items of
    *population*, rank 1 being ``population[0]``.

    Raises when the population holds fewer than *max_rank* items so a
    mis-sized workload fails loudly instead of silently re-weighting.
    """
    if len(population) < max_rank:
        raise ValueError(
            f"population has {len(population)} items but max_rank={max_rank}"
        )
    return [
        population[rank - 1]
        for rank in zipf_ranks(length, alpha, max_rank, seed)
    ]
