"""The experiment runner: deploys the framework and replays workloads.

One :class:`ExperimentRunner` reproduces the paper's deployment —
data server + StreamBase stand-in on the "server room" machines, proxy,
client — over the simulated network, then replays request sequences:

- :meth:`run_direct` — the direct-query baseline (Figure 6);
- :meth:`run_unique` — the unique query/request sequence (Figures 6(a),
  7(a) and 7(b));
- :meth:`run_zipf` — the Zipf-distributed sequence with the proxy cache
  on or off (Figure 6(b));
- :meth:`load_policies` — the policy-loading measurement (Section 4.2).

Performance runs disable the Section 3.4 single-access constraint — the
paper's throughput workload re-requests streams for the same credentials,
which the constraint would reject; the constraint is evaluated separately
(tests and the attack benchmark).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.merge import MergeOptions
from repro.framework.client import ClientInterface
from repro.framework.direct import DirectQuerySystem
from repro.framework.metrics import MetricsCollector, RequestTrace
from repro.framework.network import LatencyModel, SimulatedNetwork
from repro.framework.proxy import Proxy
from repro.framework.server import DataServer
from repro.streams.engine import StreamEngine
from repro.workload.generator import TABLE3, WorkloadGenerator, WorkloadItem
from repro.workload.zipf import zipf_sequence


class ExperimentRunner:
    """Owns the deployed entities and the metrics collector."""

    def __init__(
        self,
        seed: int = 2012,
        generator: Optional[WorkloadGenerator] = None,
        cache_enabled: bool = True,
        cache_capacity: int = 120,
        merge_options: MergeOptions = MergeOptions(),
    ):
        self.generator = generator or WorkloadGenerator(seed=seed)
        self.network = SimulatedNetwork(LatencyModel(seed=seed))
        self.engine = StreamEngine()
        for name, schema in self.generator.streams.items():
            self.engine.register_input_stream(name, schema)
        self.server = DataServer(
            self.network,
            engine=self.engine,
            merge_options=merge_options,
            enforce_single_access=False,   # perf workload re-requests streams
            allow_partial_results=True,    # workload PRs are recorded, not fatal
        )
        self.proxy = Proxy(
            self.server,
            self.network,
            cache_enabled=cache_enabled,
            cache_capacity=cache_capacity,
        )
        self.metrics = MetricsCollector()
        self.client = ClientInterface(self.proxy, self.network, self.metrics)
        self.direct = DirectQuerySystem(self.engine, self.network, self.metrics)
        #: Per-policy load times of the last :meth:`load_policies` call.
        self.policy_load_times: List[float] = []

    # -- setup phases ---------------------------------------------------------------

    def load_policies(self, items: Sequence[WorkloadItem]) -> List[float]:
        """Load every unique policy; returns the per-policy load times."""
        self.policy_load_times = [
            self.server.load_policy(policy)
            for policy in self.generator.unique_policies(items)
        ]
        return self.policy_load_times

    # -- request sequences --------------------------------------------------------------

    def run_direct(self, items: Sequence[WorkloadItem]) -> List[RequestTrace]:
        """Replay the StreamSQL scripts through the direct-query system."""
        traces = []
        for item in items:
            _, trace = self.direct.submit(item.direct_sql)
            traces.append(trace)
        return traces

    def run_unique(
        self,
        items: Sequence[WorkloadItem],
        system_label: str = "exacml+",
    ) -> List[RequestTrace]:
        """Replay each request exactly once through eXACML+.

        The unique sequence of Figures 6(a) and 7 measures the
        access-control path itself, so the proxy cache is bypassed for
        the duration of the run (caching is the subject of Figure 6(b)).
        """
        self.client.system_label = system_label
        cache_was_enabled = self.proxy.cache_enabled
        self.proxy.cache_enabled = False
        try:
            traces = []
            for item in items:
                _, trace = self.client.request_stream(item.request, item.user_query)
                traces.append(trace)
        finally:
            self.proxy.cache_enabled = cache_was_enabled
        return traces

    def run_zipf(
        self,
        items: Sequence[WorkloadItem],
        length: Optional[int] = None,
        alpha: float = TABLE3.zipf_alpha,
        max_rank: int = TABLE3.zipf_max_rank,
        seed: int = 42,
        system_label: str = "exacml+cache",
    ) -> List[RequestTrace]:
        """Replay a Zipf-distributed sequence drawn from *items*."""
        self.client.system_label = system_label
        sequence = zipf_sequence(
            items, length or len(items), alpha=alpha, max_rank=max_rank, seed=seed
        )
        traces = []
        for item in sequence:
            _, trace = self.client.request_stream(item.request, item.user_query)
            traces.append(trace)
        return traces

    # -- convenience -----------------------------------------------------------------------

    def outcome_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for trace in self.metrics.traces:
            counts[trace.outcome] = counts.get(trace.outcome, 0) + 1
        return counts
