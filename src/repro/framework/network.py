"""Virtual-clock network simulation.

This module is the documented substitution for the paper's testbed (two
IBM x3650 servers, a proxy workstation and a MacBook on a 100 Mbps
intranet — Section 4.2).  Nothing sleeps: delays are *sampled* from a
seeded latency model and accumulated on a :class:`VirtualClock`, so a
benchmark that "takes" 20 virtual minutes finishes in real milliseconds
while producing latency distributions with the paper's shape.

Calibration targets taken from the paper's text and figures:

- most direct queries and eXACML+ requests complete in under one second
  (Figure 6 CDFs span ~0.01–10 s, log-scale);
- network traffic among client, proxy and server "occupies about two
  thirds of the total response time" of eXACML+ requests;
- sending query graphs to the DSMS takes "one third of the total
  response time on average" with "much larger variance", and the first
  connections to StreamBase are much slower than subsequent submissions;
- loading one policy takes 0.25 s on average (σ = 0.06 s), independent
  of the number already loaded.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.errors import TransportError


class VirtualClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock; returns the new time.  Negative deltas raise."""
        if seconds < 0:
            raise TransportError(f"cannot advance the clock by {seconds}")
        self._now += seconds
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(t={self._now:.6f})"


class LatencyModel:
    """Seeded sampler of per-link and per-operation delays.

    Each named link has a lognormal-ish delay: ``base`` plus truncated
    Gaussian jitter, plus a per-kilobyte serialisation term.  Lognormal
    shape comes from clipping at ``floor`` (delays cannot go below the
    propagation floor), which produces the right-skewed distributions
    visible in the paper's CDFs.
    """

    #: Default link parameters: (base seconds, jitter sigma, per-KB seconds).
    DEFAULT_LINKS: Dict[str, Tuple[float, float, float]] = {
        "client-proxy": (0.055, 0.020, 0.0004),
        "proxy-server": (0.048, 0.018, 0.0004),
        "server-dsms": (0.042, 0.015, 0.0004),
        "client-dsms": (0.060, 0.022, 0.0004),
    }

    def __init__(
        self,
        seed: int = 2012,
        links: Optional[Dict[str, Tuple[float, float, float]]] = None,
        dsms_submit_base: float = 0.145,
        dsms_submit_jitter: float = 0.075,
        dsms_connection_setup: float = 2.4,
        dsms_connection_jitter: float = 0.9,
        policy_load_base: float = 0.25,
        policy_load_jitter: float = 0.06,
        floor: float = 0.004,
    ):
        self._rng = random.Random(seed)
        self.links = dict(self.DEFAULT_LINKS)
        if links:
            self.links.update(links)
        self.dsms_submit_base = dsms_submit_base
        self.dsms_submit_jitter = dsms_submit_jitter
        self.dsms_connection_setup = dsms_connection_setup
        self.dsms_connection_jitter = dsms_connection_jitter
        self.policy_load_base = policy_load_base
        self.policy_load_jitter = policy_load_jitter
        self.floor = floor

    def _positive_gauss(self, base: float, jitter: float) -> float:
        return max(self.floor, self._rng.gauss(base, jitter))

    def link_delay(self, link: str, payload_bytes: int = 512) -> float:
        """One-way delay on *link* for a payload of *payload_bytes*."""
        try:
            base, jitter, per_kb = self.links[link]
        except KeyError:
            raise TransportError(f"unknown network link {link!r}") from None
        return self._positive_gauss(base, jitter) + per_kb * (payload_bytes / 1024.0)

    def dsms_submit_delay(self, first_connection: bool, script_bytes: int = 1024) -> float:
        """Delay for shipping a StreamSQL script into the DSMS.

        *first_connection* adds the StreamBase-API connection-establishment
        cost the paper observed at the start of its request sequences.
        """
        delay = self._positive_gauss(self.dsms_submit_base, self.dsms_submit_jitter)
        delay += 0.0004 * (script_bytes / 1024.0)
        if first_connection:
            delay += self._positive_gauss(
                self.dsms_connection_setup, self.dsms_connection_jitter
            )
        return delay

    def policy_load_delay(self) -> float:
        """Delay for loading one policy onto the data server.

        Deliberately independent of how many policies are already loaded,
        matching the paper's measurement (0.25 s ± 0.06 s)."""
        return self._positive_gauss(self.policy_load_base, self.policy_load_jitter)


class SimulatedNetwork:
    """Binds a :class:`LatencyModel` to a :class:`VirtualClock`.

    Also models the DSMS connection pool: each endpoint keeps a pool of
    connections to the stream engine; a submission over a connection that
    has never been used pays the establishment cost.  This reproduces the
    paper's observation that slow submissions cluster at the beginning of
    a request sequence.
    """

    def __init__(
        self,
        model: Optional[LatencyModel] = None,
        clock: Optional[VirtualClock] = None,
        dsms_pool_size: int = 4,
    ):
        self.model = model if model is not None else LatencyModel()
        self.clock = clock if clock is not None else VirtualClock()
        self.dsms_pool_size = dsms_pool_size
        self._pool_state: Dict[str, int] = {}  # endpoint → connections used

    def transfer(self, link: str, payload_bytes: int = 512) -> float:
        """Account one message transfer; returns the delay charged."""
        delay = self.model.link_delay(link, payload_bytes)
        self.clock.advance(delay)
        return delay

    def dsms_submit(self, endpoint: str, script_bytes: int = 1024) -> float:
        """Account one StreamSQL submission from *endpoint*; returns delay."""
        used = self._pool_state.get(endpoint, 0)
        first_connection = used < self.dsms_pool_size
        if first_connection:
            self._pool_state[endpoint] = used + 1
        delay = self.model.dsms_submit_delay(first_connection, script_bytes)
        self.clock.advance(delay)
        return delay

    def policy_load(self) -> float:
        delay = self.model.policy_load_delay()
        self.clock.advance(delay)
        return delay

    def reset_pools(self) -> None:
        """Forget connection state (a fresh run of the experiment)."""
        self._pool_state.clear()
