"""Message types exchanged between the framework entities.

The prototype's entities communicate over sockets (Section 4.1); in this
reproduction messages are plain objects whose *serialised size* drives
the network simulation.  Sizes are estimated from the XML forms actually
exchanged — requests, user queries and policies travel as XML documents,
responses carry a handle URI or an error string.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro.core.user_query import UserQuery
from repro.xacml.request import Request
from repro.xacml.xml_io import request_to_xml


class StreamRequestMessage(NamedTuple):
    """Client → proxy → server: request + optional customised query."""

    request: Request
    user_query: Optional[UserQuery]

    def payload_bytes(self) -> int:
        size = len(request_to_xml(self.request).encode())
        if self.user_query is not None:
            size += len(self.user_query.to_xml().encode())
        return size

    def cache_key(self) -> str:
        """Key under which a proxy may cache the resulting handle.

        Two requests hit the same cache entry when the same subject asks
        for the same resource/action with a byte-identical customised
        query — the proxy cannot do better without interpreting policy.
        """
        query_part = self.user_query.to_xml() if self.user_query else ""
        return "|".join(
            (
                self.request.subject_id or "",
                self.request.resource_id or "",
                self.request.action_id or "",
                query_part,
            )
        )


class StreamResponseMessage(NamedTuple):
    """Server → proxy → client: a handle URI, or an error.

    ``decision``/``policy_id`` carry the PDP verdict alongside the
    transport outcome so served clients (and differential harnesses)
    can compare access-control decisions without dereferencing handles.
    """

    handle_uri: Optional[str]
    error_kind: Optional[str] = None   # "denied" | "nr" | "pr" | "concurrent"
    error_detail: Optional[str] = None
    decision: Optional[str] = None     # Decision.value, when the PDP ran
    policy_id: Optional[str] = None    # deciding policy, when permitted

    def payload_bytes(self) -> int:
        size = len((self.handle_uri or "").encode())
        size += len((self.error_detail or "").encode())
        return max(size, 64)  # framing floor

    @property
    def ok(self) -> bool:
        return self.handle_uri is not None and self.error_kind is None


class PolicyLoadMessage(NamedTuple):
    """Data-owner → server: one policy document."""

    policy_xml: str

    def payload_bytes(self) -> int:
        return len(self.policy_xml.encode())


class DirectQueryMessage(NamedTuple):
    """Client → DSMS: a raw StreamSQL script (the baseline's input)."""

    streamsql: str

    def payload_bytes(self) -> int:
        return len(self.streamsql.encode())
