"""The client interface: where request-fulfilment time is measured.

"The performance of the system is measured by the time taken to fulfil
user's requests on data streams" (Section 4.2) — i.e. from the client
sending the request to the client holding the stream-handle URI.  The
client charges the client↔proxy legs, delegates to the proxy, and emits
one :class:`~repro.framework.metrics.RequestTrace` per request.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.user_query import UserQuery
from repro.framework.messages import StreamRequestMessage, StreamResponseMessage
from repro.framework.metrics import MetricsCollector, RequestTrace
from repro.framework.network import SimulatedNetwork
from repro.framework.proxy import Proxy
from repro.xacml.request import Request


class ClientInterface:
    """Issues access requests through a proxy and records traces."""

    def __init__(
        self,
        proxy: Proxy,
        network: SimulatedNetwork,
        metrics: Optional[MetricsCollector] = None,
        system_label: str = "exacml+",
    ):
        self.proxy = proxy
        self.network = network
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.system_label = system_label
        self._sequence = 0

    def request_stream(
        self, request: Request, user_query: Optional[UserQuery] = None
    ) -> Tuple[StreamResponseMessage, RequestTrace]:
        """Issue one request; returns (response, trace)."""
        self._sequence += 1
        message = StreamRequestMessage(request, user_query)
        start = self.network.clock.now()

        outbound = self.network.transfer("client-proxy", message.payload_bytes())
        proxy_result = self.proxy.process(message)
        inbound = self.network.transfer(
            "client-proxy", proxy_result.response.payload_bytes()
        )

        total = self.network.clock.now() - start
        network_seconds = outbound + inbound + proxy_result.network_seconds
        response = proxy_result.response
        trace = RequestTrace(
            sequence_no=self._sequence,
            system=self.system_label,
            total=total,
            pdp=proxy_result.timing.pdp,
            query_graph=proxy_result.timing.query_graph,
            dsms_submit=proxy_result.timing.dsms_submit,
            network=network_seconds,
            cache_hit=proxy_result.cache_hit,
            outcome="ok" if response.ok else (response.error_kind or "error"),
        )
        self.metrics.add(trace)
        return response, trace
