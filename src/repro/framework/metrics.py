"""Timing instrumentation for the evaluation harness.

Each fulfilled request produces a :class:`RequestTrace` whose fields map
one-to-one onto the series of the paper's Figure 7: total response time,
PDP time, query-graph manipulation time, and DSMS submission time, plus
the simulated network share that Figure 6's discussion attributes about
two thirds of the total to.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple


class RequestTrace(NamedTuple):
    """Timing breakdown of one request (all seconds, virtual clock)."""

    sequence_no: int
    system: str          # "direct" | "exacml+" | "exacml+cache"
    total: float
    pdp: float           # Figure 7 "PDP"
    query_graph: float   # Figure 7 "QueryGraph"
    dsms_submit: float   # Figure 7 "StreamBase"
    network: float
    cache_hit: bool = False
    outcome: str = "ok"  # "ok" | "denied" | "nr" | "pr" | "concurrent"


class DistributionSummary(NamedTuple):
    """Descriptive statistics of a latency sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p90: float
    p99: float
    maximum: float


def summarize(samples: Sequence[float]) -> DistributionSummary:
    """Compute the summary statistics used in EXPERIMENTS.md tables."""
    if not samples:
        return DistributionSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    ordered = sorted(samples)
    n = len(ordered)
    mean = sum(ordered) / n
    variance = sum((x - mean) ** 2 for x in ordered) / n
    return DistributionSummary(
        count=n,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=ordered[0],
        p50=percentile(ordered, 0.50),
        p90=percentile(ordered, 0.90),
        p99=percentile(ordered, 0.99),
        maximum=ordered[-1],
    )


def percentile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted sample."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1 - fraction) + ordered[upper] * fraction


def cdf_points(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs — the curves of Figure 6."""
    ordered = sorted(samples)
    n = len(ordered)
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


class MetricsCollector:
    """Accumulates request traces and renders evaluation tables."""

    def __init__(self):
        self.traces: List[RequestTrace] = []

    def add(self, trace: RequestTrace) -> None:
        self.traces.append(trace)

    def extend(self, traces: Iterable[RequestTrace]) -> None:
        self.traces.extend(traces)

    def totals(self, system: Optional[str] = None) -> List[float]:
        return [
            t.total
            for t in self.traces
            if (system is None or t.system == system) and t.outcome == "ok"
        ]

    def by_system(self) -> Dict[str, List[RequestTrace]]:
        grouped: Dict[str, List[RequestTrace]] = {}
        for trace in self.traces:
            grouped.setdefault(trace.system, []).append(trace)
        return grouped

    def summary(self, system: Optional[str] = None) -> DistributionSummary:
        return summarize(self.totals(system))

    def network_share(self, system: str) -> float:
        """Mean fraction of total response time spent on the network."""
        rows = [t for t in self.traces if t.system == system and t.outcome == "ok"]
        if not rows:
            return 0.0
        return sum(t.network / t.total for t in rows if t.total > 0) / len(rows)

    def submit_share(self, system: str) -> float:
        """Mean fraction of total response time spent on DSMS submission."""
        rows = [t for t in self.traces if t.system == system and t.outcome == "ok"]
        if not rows:
            return 0.0
        return sum(t.dsms_submit / t.total for t in rows if t.total > 0) / len(rows)

    def cache_hit_rate(self, system: str = "exacml+cache") -> float:
        rows = [t for t in self.traces if t.system == system and t.outcome == "ok"]
        if not rows:
            return 0.0
        return sum(1 for t in rows if t.cache_hit) / len(rows)

    def cdf(self, system: str) -> List[Tuple[float, float]]:
        return cdf_points(self.totals(system))

    def ascii_cdf(
        self,
        systems: Sequence[str],
        width: int = 60,
        points: Sequence[float] = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0),
    ) -> str:
        """Render Figure-6-style CDF rows at fixed time points (log grid)."""
        lines = [
            "time(s)   " + "  ".join(f"{system:>14s}" for system in systems)
        ]
        samples = {system: sorted(self.totals(system)) for system in systems}
        for point in points:
            row = [f"{point:7.2f}   "]
            for system in systems:
                ordered = samples[system]
                if not ordered:
                    row.append(f"{'-':>14s}  ")
                    continue
                fraction = _fraction_at_or_below(ordered, point)
                row.append(f"{fraction:14.3f}  ")
            lines.append("".join(row).rstrip())
        return "\n".join(lines)


def _fraction_at_or_below(ordered: Sequence[float], value: float) -> float:
    """Fraction of (sorted) samples ≤ value, via bisection."""
    import bisect

    return bisect.bisect_right(ordered, value) / len(ordered)
