"""Deployment latency profiles.

The paper's future work: "migrate the framework to commercial Cloud
environments such as Amazon EC2 and Microsoft's Azure for more
comprehensive evaluations".  The testbed (the default profile) is the
authors' 100 Mbps university intranet; the public-cloud profiles model a
client reaching a cloud region over the Internet, with intra-datacentre
links between proxy, server and DSMS.

Numbers are representative of 2012-era published measurements: ~5–15 ms
intra-datacentre RTT, 40–120 ms client-to-region latency, and slower
first-connection establishment through cloud load balancers.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import FrameworkError
from repro.framework.network import LatencyModel


def intranet_profile(seed: int = 2012) -> LatencyModel:
    """The paper's testbed: all machines on one 100 Mbps intranet."""
    return LatencyModel(seed=seed)


def ec2_like_profile(seed: int = 2012) -> LatencyModel:
    """Client over the Internet; proxy/server/DSMS inside one EC2 region."""
    return LatencyModel(
        seed=seed,
        links={
            "client-proxy": (0.085, 0.030, 0.0008),   # WAN hop
            "proxy-server": (0.008, 0.003, 0.0002),   # intra-DC
            "server-dsms": (0.006, 0.002, 0.0002),    # intra-DC
            "client-dsms": (0.090, 0.032, 0.0008),    # WAN hop
        },
        dsms_submit_base=0.060,
        dsms_submit_jitter=0.030,
        dsms_connection_setup=3.0,
        dsms_connection_jitter=1.1,
        policy_load_base=0.18,
        policy_load_jitter=0.05,
    )


def azure_like_profile(seed: int = 2012) -> LatencyModel:
    """Same topology with Azure-flavoured constants (slightly slower DC)."""
    return LatencyModel(
        seed=seed,
        links={
            "client-proxy": (0.095, 0.034, 0.0008),
            "proxy-server": (0.010, 0.004, 0.0002),
            "server-dsms": (0.008, 0.003, 0.0002),
            "client-dsms": (0.100, 0.036, 0.0008),
        },
        dsms_submit_base=0.070,
        dsms_submit_jitter=0.034,
        dsms_connection_setup=3.4,
        dsms_connection_jitter=1.2,
        policy_load_base=0.21,
        policy_load_jitter=0.05,
    )


PROFILES = {
    "intranet": intranet_profile,
    "ec2": ec2_like_profile,
    "azure": azure_like_profile,
}


def get_profile(name: str, seed: int = 2012) -> LatencyModel:
    """Build the named latency profile."""
    try:
        factory = PROFILES[name]
    except KeyError:
        raise FrameworkError(
            f"unknown deployment profile {name!r}; known: {sorted(PROFILES)}"
        ) from None
    return factory(seed=seed)
