"""The direct-query baseline (no access control).

"We compare the results with that of a system that quer[ies] directly to
StreamBase DSMS, which is refer[red] to as direct-query system" (Section
4.2).  The client ships a StreamSQL script straight to the DSMS and gets
a stream-handle URI back; no PDP, no PEP, no proxy.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from repro.errors import StreamError, StreamSQLError
from repro.framework.messages import DirectQueryMessage, StreamResponseMessage
from repro.framework.metrics import MetricsCollector, RequestTrace
from repro.framework.network import SimulatedNetwork
from repro.streams.engine import StreamEngine


class DirectQuerySystem:
    """Submits StreamSQL scripts directly to the stream engine."""

    def __init__(
        self,
        engine: StreamEngine,
        network: SimulatedNetwork,
        metrics: Optional[MetricsCollector] = None,
        name: str = "direct-client",
    ):
        self.engine = engine
        self.network = network
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.name = name
        self._sequence = 0

    def submit(self, streamsql: str) -> Tuple[StreamResponseMessage, RequestTrace]:
        """Submit one script; returns (response, trace)."""
        self._sequence += 1
        message = DirectQueryMessage(streamsql)
        start = self.network.clock.now()

        outbound = self.network.transfer("client-dsms", message.payload_bytes())
        compute_start = time.perf_counter()
        error: Optional[str] = None
        handle_uri: Optional[str] = None
        try:
            handle = self.engine.register_streamsql(streamsql)
            handle_uri = handle.uri
        except (StreamSQLError, StreamError) as exc:
            error = str(exc)
        compute = time.perf_counter() - compute_start
        self.network.clock.advance(compute)
        submit_delay = self.network.dsms_submit(
            self.name, script_bytes=message.payload_bytes()
        )
        response = StreamResponseMessage(
            handle_uri, "denied" if error else None, error
        )
        inbound = self.network.transfer("client-dsms", response.payload_bytes())

        total = self.network.clock.now() - start
        trace = RequestTrace(
            sequence_no=self._sequence,
            system="direct",
            total=total,
            pdp=0.0,
            query_graph=0.0,
            dsms_submit=compute + submit_delay,
            network=outbound + inbound,
            outcome="ok" if response.ok else "error",
        )
        self.metrics.add(trace)
        return response, trace
