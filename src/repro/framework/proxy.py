"""The proxy with a stream-handle cache.

"Unlike eXACML, what [is] cached in the proxy is not actual data, but
data stream handles, whose sizes are significantly smaller" (Section
4.2).  A cache entry maps a request fingerprint — subject, resource,
action and the byte-exact customised query — to the handle URI the
server previously returned.  A hit answers the client without touching
the server (or the DSMS) at all.

The cache is LRU-bounded; entries are invalidated when the underlying
handle is withdrawn (revocation must not be masked by the proxy).  Two
mechanisms keep that guarantee:

- **revalidation** — every hit checks the handle is still live before
  answering (the seed behaviour, kept as the backstop);
- **proactive purge** — the proxy subscribes to the server's policy
  store (a single :class:`~repro.xacml.store.PolicyStore` or the
  invalidation bus of a :class:`~repro.xacml.sharding.ShardedPolicyStore`
  — both present the same listener contract) and drops every entry whose
  handle died when a policy is removed or updated, so revoked handles do
  not linger in the cache occupying LRU slots until their next lookup.

Store listeners run in subscription order and the graph manager
subscribes at instance construction, so by the time the proxy observes
an event the spawned graphs are already withdrawn.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import NamedTuple, Optional

from repro.framework.messages import StreamRequestMessage, StreamResponseMessage
from repro.framework.network import SimulatedNetwork
from repro.framework.server import DataServer, ServerTiming


class ProxyResult(NamedTuple):
    """Proxy-side outcome: response + timing breakdown components."""

    response: StreamResponseMessage
    timing: ServerTiming
    network_seconds: float   # proxy↔server legs (zero on a cache hit)
    cache_hit: bool


class Proxy:
    """Caches handle responses between clients and the data server."""

    def __init__(
        self,
        server: DataServer,
        network: SimulatedNetwork,
        cache_enabled: bool = True,
        cache_capacity: int = 1024,
    ):
        self.server = server
        self.network = network
        self.cache_enabled = cache_enabled
        self.cache_capacity = cache_capacity
        self._cache: "OrderedDict[str, StreamResponseMessage]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Entries dropped by policy-event purges (vs lazy revalidation).
        self.proactive_invalidations = 0
        # A cache-less proxy has nothing to purge, so it doesn't pin
        # itself to the store's listener list (mirroring the cache-less
        # PDP's behaviour).
        if cache_enabled:
            self.server.instance.store.add_listener(self._on_policy_event)

    def process(self, message: StreamRequestMessage) -> ProxyResult:
        """Serve one client request, consulting the cache first."""
        key = message.cache_key()
        probe_compute = 0.0
        if self.cache_enabled:
            cached = self._lookup(key)
            if cached is not None:
                started = time.perf_counter()
                # The handle must still be live; a withdrawn query must
                # not be served from cache (revocation correctness).
                live = self._handle_live(cached)
                probe_compute = time.perf_counter() - started
                self.network.clock.advance(probe_compute)
                if live:
                    self.hits += 1
                    timing = ServerTiming(0.0, probe_compute, 0.0, probe_compute)
                    return ProxyResult(cached, timing, 0.0, True)
                self._cache.pop(key, None)
        self.misses += 1
        outbound = self.network.transfer("proxy-server", message.payload_bytes())
        response, timing = self.server.process(message)
        inbound = self.network.transfer("proxy-server", response.payload_bytes())
        if self.cache_enabled and response.ok:
            self._store(key, response)
        if probe_compute:
            # Dead-handle fall-through: the cache probe was charged to
            # the clock exactly once above, so it must appear exactly
            # once in the returned breakdown too — folded into the
            # compute legs, not left to be mis-read as network time
            # when callers reconstruct shares from ``total - compute``.
            timing = timing._replace(
                query_graph=timing.query_graph + probe_compute,
                compute_total=timing.compute_total + probe_compute,
            )
        return ProxyResult(response, timing, outbound + inbound, False)

    def invalidate(self) -> None:
        """Drop every cache entry."""
        self._cache.clear()

    def detach(self) -> None:
        """Unsubscribe from the server's policy store events.

        Call when discarding a transient proxy over a long-lived server,
        so the store's listener list doesn't keep the proxy (and its
        handle cache) alive and swept on every policy event — the same
        lifecycle contract as ``PolicyDecisionPoint.detach``.
        """
        self.server.instance.store.remove_listener(self._on_policy_event)

    def _on_policy_event(self, event: str, policy) -> None:
        """Purge entries whose handle a policy removal/update revoked.

        Runs after the graph manager's revocation listener (subscription
        order), so a dead handle is observable here the moment the event
        fires.  Purging only what actually died keeps unrelated hot
        entries warm; output-wise this is identical to lazy revalidation
        (a purged entry would have failed its next liveness check), it
        just stops revoked handles from squatting in LRU slots.
        """
        if event not in ("removed", "updated") or not self._cache:
            return
        dead = [
            key
            for key, response in self._cache.items()
            if not self._handle_live(response)
        ]
        for key in dead:
            self._cache.pop(key, None)
            self.proactive_invalidations += 1

    # -- internals ---------------------------------------------------------------

    def _lookup(self, key: str) -> Optional[StreamResponseMessage]:
        response = self._cache.get(key)
        if response is not None:
            self._cache.move_to_end(key)
        return response

    def _store(self, key: str, response: StreamResponseMessage) -> None:
        self._cache[key] = response
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_capacity:
            self._cache.popitem(last=False)

    def _handle_live(self, response: StreamResponseMessage) -> bool:
        from repro.errors import UnknownHandleError

        try:
            self.server.instance.engine.lookup(response.handle_uri)
        except UnknownHandleError:
            return False
        return True

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
