"""The proxy with a stream-handle cache.

"Unlike eXACML, what [is] cached in the proxy is not actual data, but
data stream handles, whose sizes are significantly smaller" (Section
4.2).  A cache entry maps a request fingerprint — subject, resource,
action and the byte-exact customised query — to the handle URI the
server previously returned.  A hit answers the client without touching
the server (or the DSMS) at all.

The cache is LRU-bounded; entries are invalidated when the underlying
handle is withdrawn (revocation must not be masked by the proxy).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import NamedTuple, Optional

from repro.framework.messages import StreamRequestMessage, StreamResponseMessage
from repro.framework.network import SimulatedNetwork
from repro.framework.server import DataServer, ServerTiming


class ProxyResult(NamedTuple):
    """Proxy-side outcome: response + timing breakdown components."""

    response: StreamResponseMessage
    timing: ServerTiming
    network_seconds: float   # proxy↔server legs (zero on a cache hit)
    cache_hit: bool


class Proxy:
    """Caches handle responses between clients and the data server."""

    def __init__(
        self,
        server: DataServer,
        network: SimulatedNetwork,
        cache_enabled: bool = True,
        cache_capacity: int = 1024,
    ):
        self.server = server
        self.network = network
        self.cache_enabled = cache_enabled
        self.cache_capacity = cache_capacity
        self._cache: "OrderedDict[str, StreamResponseMessage]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def process(self, message: StreamRequestMessage) -> ProxyResult:
        """Serve one client request, consulting the cache first."""
        key = message.cache_key()
        if self.cache_enabled:
            cached = self._lookup(key)
            if cached is not None:
                started = time.perf_counter()
                # The handle must still be live; a withdrawn query must
                # not be served from cache (revocation correctness).
                live = self._handle_live(cached)
                lookup_compute = time.perf_counter() - started
                self.network.clock.advance(lookup_compute)
                if live:
                    self.hits += 1
                    timing = ServerTiming(0.0, lookup_compute, 0.0, lookup_compute)
                    return ProxyResult(cached, timing, 0.0, True)
                self._cache.pop(key, None)
        self.misses += 1
        outbound = self.network.transfer("proxy-server", message.payload_bytes())
        response, timing = self.server.process(message)
        inbound = self.network.transfer("proxy-server", response.payload_bytes())
        if self.cache_enabled and response.ok:
            self._store(key, response)
        return ProxyResult(response, timing, outbound + inbound, False)

    def invalidate(self) -> None:
        """Drop every cache entry."""
        self._cache.clear()

    # -- internals ---------------------------------------------------------------

    def _lookup(self, key: str) -> Optional[StreamResponseMessage]:
        response = self._cache.get(key)
        if response is not None:
            self._cache.move_to_end(key)
        return response

    def _store(self, key: str, response: StreamResponseMessage) -> None:
        self._cache[key] = response
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_capacity:
            self._cache.popitem(last=False)

    def _handle_live(self, response: StreamResponseMessage) -> bool:
        from repro.errors import UnknownHandleError

        try:
            self.server.instance.engine.lookup(response.handle_uri)
        except UnknownHandleError:
            return False
        return True

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
