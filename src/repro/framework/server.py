"""The cloud data server: XACML+ instance behind the simulated network.

The server performs the real access-control computation (PDP evaluation,
obligation decoding, merging, NR/PR analysis, StreamSQL generation and
engine registration) and charges the measured time to the virtual clock,
then adds the simulated server→DSMS submission delay.  Policy loading
pays the paper's measured per-policy cost (0.25 s ± 0.06 s) regardless
of how many policies are already loaded.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Union

import time

from repro.errors import (
    AccessDeniedError,
    ConcurrentAccessError,
    EmptyResultWarning,
    MergeError,
    PartialResultWarning,
)
from repro.core.merge import MergeOptions
from repro.core.xacml_plus import XacmlPlusInstance
from repro.framework.messages import (
    PolicyLoadMessage,
    StreamRequestMessage,
    StreamResponseMessage,
)
from repro.framework.network import SimulatedNetwork
from repro.streams.engine import StreamEngine
from repro.xacml.policy import Policy
from repro.xacml.xml_io import parse_policy_xml


class ServerTiming(NamedTuple):
    """Server-side breakdown of one request (seconds)."""

    pdp: float
    query_graph: float
    dsms_submit: float     # real submit compute + simulated DSMS network
    compute_total: float   # everything charged to the clock server-side


class DataServer:
    """Hosts the XACML+ instance; entry point for proxies."""

    def __init__(
        self,
        network: SimulatedNetwork,
        engine: Optional[StreamEngine] = None,
        merge_options: MergeOptions = MergeOptions(),
        enforce_single_access: bool = True,
        allow_partial_results: bool = False,
        name: str = "server",
        pdp_use_index: bool = True,
        pdp_cache_size: Optional[int] = None,
        pdp_shards: Optional[int] = None,
        pdp_partitioner=None,
    ):
        self.network = network
        self.name = name
        self.instance = XacmlPlusInstance(
            engine=engine,
            merge_options=merge_options,
            enforce_single_access=enforce_single_access,
            allow_partial_results=allow_partial_results,
            pdp_use_index=pdp_use_index,
            pdp_cache_size=pdp_cache_size,
            pdp_shards=pdp_shards,
            pdp_partitioner=pdp_partitioner,
        )
        #: Count of requests processed (all outcomes).
        self.requests_processed = 0

    # -- policy management ------------------------------------------------------

    def load_policy(self, policy: Union[Policy, str, PolicyLoadMessage]) -> float:
        """Load one policy; returns the (virtual) seconds the load took."""
        if isinstance(policy, PolicyLoadMessage):
            policy = policy.policy_xml
        if isinstance(policy, str):
            policy = parse_policy_xml(policy)
        delay = self.network.policy_load()
        self.instance.load_policy(policy)
        return delay

    def update_policy(self, policy: Union[Policy, str, PolicyLoadMessage]) -> float:
        """Replace a loaded policy; spawned query graphs are revoked and
        the PDP's decision cache is flushed before the call returns."""
        if isinstance(policy, PolicyLoadMessage):
            policy = policy.policy_xml
        if isinstance(policy, str):
            policy = parse_policy_xml(policy)
        delay = self.network.policy_load()
        self.instance.update_policy(policy)
        return delay

    def remove_policy(self, policy_id: str) -> float:
        delay = self.network.policy_load()
        self.instance.remove_policy(policy_id)
        return delay

    # -- request processing --------------------------------------------------------

    def process(self, message: StreamRequestMessage, pdp_response=None):
        """Process one request; returns (response, :class:`ServerTiming`).

        All failures the PEP can signal are mapped onto error responses
        rather than exceptions — the entity at the other end of a socket
        only ever sees a response message.

        *pdp_response* threads a decision evaluated out-of-band (e.g. on
        the shard worker pool by an async front-end) into the PEP, which
        then skips its own PDP call.
        """
        self.requests_processed += 1
        started = time.perf_counter()
        try:
            result = self.instance.request_stream(
                message.request, message.user_query, pdp_response=pdp_response
            )
        except AccessDeniedError as error:
            decision = getattr(error.decision, "value", None)
            return self._error_response("denied", str(error), started, decision)
        except ConcurrentAccessError as error:
            return self._error_response("concurrent", str(error), started)
        except EmptyResultWarning as error:
            return self._error_response("nr", str(error), started)
        except PartialResultWarning as error:
            return self._error_response("pr", str(error), started)
        except MergeError as error:
            return self._error_response("nr", str(error), started)
        compute = time.perf_counter() - started
        self.network.clock.advance(compute)
        submit_network = self.network.dsms_submit(
            self.name, script_bytes=len(result.streamsql.encode())
        )
        timing = ServerTiming(
            pdp=result.timings.pdp,
            query_graph=result.timings.query_graph,
            dsms_submit=result.timings.dsms_submit + submit_network,
            compute_total=compute + submit_network,
        )
        response = StreamResponseMessage(
            handle_uri=result.handle.uri,
            decision=result.response.decision.value,
            policy_id=result.response.policy_id,
        )
        return response, timing

    def _error_response(
        self, kind: str, detail: str, started: float, decision=None
    ):
        compute = time.perf_counter() - started
        self.network.clock.advance(compute)
        timing = ServerTiming(0.0, compute, 0.0, compute)
        return StreamResponseMessage(None, kind, detail, decision=decision), timing
