"""The eXACML+ cloud framework (the paper's Figure 3(a)).

Entities: a cloud **data server** hosting the XACML+ instance, a **proxy**
with a stream-handle cache, and the **client interface**; plus the
**direct-query system** baseline that submits StreamSQL straight to the
DSMS without access control.

The paper's four-machine testbed is replaced by a virtual-clock network
simulation (:mod:`repro.framework.network`): computation (PDP, graph
merging, NR/PR, SQL generation) is executed and timed for real, while
wire time is sampled from a seeded latency model calibrated to the
paper's reported characteristics (request fulfilment < 1 s, network ≈ ⅔
of response time, DSMS submission ≈ ⅓, long first-connection tail).
"""

from repro.framework.network import LatencyModel, SimulatedNetwork, VirtualClock
from repro.framework.profiles import PROFILES, get_profile
from repro.framework.metrics import MetricsCollector, RequestTrace
from repro.framework.server import DataServer
from repro.framework.proxy import Proxy
from repro.framework.client import ClientInterface
from repro.framework.direct import DirectQuerySystem

__all__ = [
    "LatencyModel",
    "SimulatedNetwork",
    "VirtualClock",
    "PROFILES",
    "get_profile",
    "MetricsCollector",
    "RequestTrace",
    "DataServer",
    "Proxy",
    "ClientInterface",
    "DirectQuerySystem",
]
