"""Length-prefixed wire format for the serving front-end.

Every frame is a 4-byte big-endian unsigned length followed by exactly
that many payload bytes; the payload is a UTF-8 JSON envelope::

    {"seq": <int>, "op": "<op name>", "body": {...}}

Sequence numbers are per-connection and client-assigned; the server
echoes them on replies, and guarantees replies leave a connection in
request order (so a pipelined client may also match positionally).

The codec is deliberately sans-IO: :class:`FrameDecoder` consumes raw
byte chunks and yields complete payloads, so the exact same code path
is driven by the asyncio server, the client, and socketless property
tests.  All malformed input — oversized length prefixes, truncated
frames, non-JSON payloads, unknown ops, envelope/body shape errors —
surfaces as :class:`~repro.errors.TransportError`; nothing in this
module raises anything else on bad bytes.

Payloads reuse the XML document forms of ``framework/messages.py``
(requests, user queries and policies travel exactly as the simulated
network sizes them), so a served deployment and the simulation exchange
byte-identical documents.
"""

from __future__ import annotations

import dataclasses
import json
import struct
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Type

from repro.errors import TransportError

#: Frames above this are protocol violations — reject before buffering,
#: so a corrupt or hostile length prefix cannot balloon memory.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct("!I")
HEADER_BYTES = _HEADER.size


# -- operations (client → server) ----------------------------------------------------

@dataclass(frozen=True)
class EvaluateOp:
    """One access request: XML request + optional customised query.

    ``decide_only`` asks for the bare PDP verdict — no PEP workflow, no
    engine registration — the cheap, side-effect-free form benchmarks
    and differential probes use.
    """

    request_xml: str
    user_query_xml: Optional[str] = None
    decide_only: bool = False


@dataclass(frozen=True)
class LoadOp:
    """Data-owner → server: load one XML policy document."""

    policy_xml: str


@dataclass(frozen=True)
class UpdateOp:
    """Replace a loaded policy (revokes its spawned graphs)."""

    policy_xml: str


@dataclass(frozen=True)
class RevokeOp:
    """Remove a policy by id (revokes its spawned graphs)."""

    policy_id: str


@dataclass(frozen=True)
class IngestOp:
    """Append records to an input stream."""

    stream: str
    records: List[dict] = field(default_factory=list)


@dataclass(frozen=True)
class PingOp:
    """Liveness probe; the server acks without touching the instance."""


# -- replies (server → client) -------------------------------------------------------

@dataclass(frozen=True)
class EvaluateReply:
    """Outcome of one :class:`EvaluateOp`."""

    ok: bool
    handle_uri: Optional[str] = None
    decision: Optional[str] = None
    policy_id: Optional[str] = None
    error_kind: Optional[str] = None
    error_detail: Optional[str] = None


@dataclass(frozen=True)
class AckReply:
    """Success reply for load/update/revoke/ingest/ping."""

    op: str
    detail: Optional[str] = None
    count: int = 0


@dataclass(frozen=True)
class ErrorReply:
    """The operation failed; the connection stays usable.

    ``retryable`` distinguishes transient faults from fatal ones: the
    server sets it for failures a later attempt can outrun (a shard
    worker mid-restart, for instance), and resilient clients retry
    *only* such replies — a fatal error (bad request, unknown policy,
    degraded shard) retried forever would just burn the deadline.
    """

    error_kind: str
    error_detail: str = ""
    retryable: bool = False


#: op-name → message class, both directions; the single source of truth
#: the codec and the property tests iterate over.
MESSAGE_TYPES: Dict[str, Type] = {
    "evaluate": EvaluateOp,
    "load": LoadOp,
    "update": UpdateOp,
    "revoke": RevokeOp,
    "ingest": IngestOp,
    "ping": PingOp,
    "evaluate_reply": EvaluateReply,
    "ack": AckReply,
    "error": ErrorReply,
}
_OP_NAMES = {cls: name for name, cls in MESSAGE_TYPES.items()}


# -- framing -------------------------------------------------------------------------

def encode_frame(payload: bytes) -> bytes:
    """Prefix *payload* with its length; rejects oversized payloads."""
    if len(payload) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental (sans-IO) frame parser.

    Feed it byte chunks of any granularity; iterate the complete
    payloads it has accumulated.  Oversized length prefixes raise
    immediately (before the body arrives); :meth:`eof` raises if the
    peer hung up mid-frame.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[bytes]:
        """Consume *data*; return every payload completed by it."""
        self._buffer.extend(data)
        frames: List[bytes] = []
        while True:
            if len(self._buffer) < HEADER_BYTES:
                return frames
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise TransportError(
                    f"declared frame length {length} exceeds the "
                    f"{MAX_FRAME_BYTES}-byte limit"
                )
            if len(self._buffer) < HEADER_BYTES + length:
                return frames
            frames.append(bytes(self._buffer[HEADER_BYTES:HEADER_BYTES + length]))
            del self._buffer[:HEADER_BYTES + length]

    def eof(self) -> None:
        """Signal end of input; raises if a frame was left unfinished."""
        if self._buffer:
            raise TransportError(
                f"connection closed mid-frame with {len(self._buffer)} "
                "buffered bytes"
            )

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


# -- codec ---------------------------------------------------------------------------

def encode_message(seq: int, message) -> bytes:
    """Encode one op/reply object into a complete frame."""
    op = _OP_NAMES.get(type(message))
    if op is None:
        raise TransportError(f"unregistered message type {type(message).__name__}")
    envelope = {"seq": seq, "op": op, "body": dataclasses.asdict(message)}
    return encode_frame(json.dumps(envelope, separators=(",", ":")).encode())


def decode_message(payload: bytes) -> Tuple[int, object]:
    """Decode one frame payload into ``(seq, message)``.

    Every way the payload can be malformed — bad UTF-8, bad JSON, a
    non-object envelope, a missing/invalid ``seq``/``op``, an unknown
    op, body fields that do not match the message type — raises
    :class:`TransportError`.
    """
    try:
        envelope = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TransportError(f"undecodable frame payload: {error}") from error
    if not isinstance(envelope, dict):
        raise TransportError(
            f"frame envelope must be an object, got {type(envelope).__name__}"
        )
    seq = envelope.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool):
        raise TransportError(f"invalid sequence number {seq!r}")
    op = envelope.get("op")
    message_type = MESSAGE_TYPES.get(op)
    if message_type is None:
        raise TransportError(f"unknown op {op!r}")
    body = envelope.get("body")
    if not isinstance(body, dict):
        raise TransportError(f"op {op!r} body must be an object")
    expected = {f.name for f in dataclasses.fields(message_type)}
    unknown = set(body) - expected
    if unknown:
        raise TransportError(
            f"op {op!r} carries unknown fields {sorted(unknown)}"
        )
    try:
        message = message_type(**body)
    except TypeError as error:
        raise TransportError(f"op {op!r} body mismatch: {error}") from error
    return seq, message


def iter_messages(decoder: FrameDecoder, data: bytes) -> Iterator[Tuple[int, object]]:
    """Feed *data* and decode every completed frame (test convenience)."""
    for payload in decoder.feed(data):
        yield decode_message(payload)
