"""Per-op latency percentiles for the serving front-end.

The report follows the dbworkload run-table shape — one row per op
type with throughput-free latency columns (mean / p50 / p90 / p99 /
max, in milliseconds) — reusing the repository's canonical
:func:`repro.framework.metrics.summarize` so served numbers and the
simulation's EXPERIMENTS tables are computed identically.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from repro.framework.metrics import DistributionSummary, summarize


class LatencyRecorder:
    """Accumulates per-op latency samples (seconds); reports percentiles.

    Thread-safe: the asyncio server records from its event loop while
    benchmarks snapshot from the driving thread.
    """

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = {}  # guarded by: self._lock
        self._lock = threading.Lock()

    def record(self, op: str, seconds: float) -> None:
        with self._lock:
            self._samples.setdefault(op, []).append(seconds)

    def record_many(self, op: str, seconds: Sequence[float]) -> None:
        """Fold a batch of samples in under one lock acquisition (the
        load-generation parent merges per-worker sample deltas)."""
        if not seconds:
            return
        with self._lock:
            self._samples.setdefault(op, []).extend(seconds)

    def count(self, op: Optional[str] = None) -> int:
        with self._lock:
            if op is not None:
                return len(self._samples.get(op, ()))
            return sum(len(samples) for samples in self._samples.values())

    @property
    def ops(self) -> Sequence[str]:
        with self._lock:
            return sorted(self._samples)

    def summary(self, op: str) -> DistributionSummary:
        with self._lock:
            samples = list(self._samples.get(op, ()))
        return summarize(samples)

    def snapshot(self) -> Dict[str, DistributionSummary]:
        """Summaries of every op seen so far — one consistent instant.

        All samples are copied under a *single* lock acquisition, so a
        mid-run snapshot can never mix counts from different moments
        (summarizing per op via :meth:`summary` would take the lock
        once per op, letting a concurrent recorder slip samples in
        between rows).  The summarizing itself runs outside the lock.
        """
        with self._lock:
            samples = {
                op: list(values) for op, values in sorted(self._samples.items())
            }
        return {op: summarize(values) for op, values in samples.items()}

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready percentiles in milliseconds (for ``BENCH_*.json``)."""
        report: Dict[str, Dict[str, float]] = {}
        for op, stats in self.snapshot().items():
            report[op] = {
                "count": stats.count,
                "mean_ms": stats.mean * 1e3,
                "p50_ms": stats.p50 * 1e3,
                "p90_ms": stats.p90 * 1e3,
                "p99_ms": stats.p99 * 1e3,
                "max_ms": stats.maximum * 1e3,
            }
        return report

    def table(self) -> str:
        """The dbworkload-style run table."""
        header = (
            f"{'op':>12s} {'ops':>8s} {'mean(ms)':>10s} {'p50(ms)':>10s} "
            f"{'p90(ms)':>10s} {'p99(ms)':>10s} {'max(ms)':>10s}"
        )
        lines = [header]
        for op, stats in self.snapshot().items():
            lines.append(
                f"{op:>12s} {stats.count:>8d} {stats.mean * 1e3:>10.3f} "
                f"{stats.p50 * 1e3:>10.3f} {stats.p90 * 1e3:>10.3f} "
                f"{stats.p99 * 1e3:>10.3f} {stats.maximum * 1e3:>10.3f}"
            )
        return "\n".join(lines)
