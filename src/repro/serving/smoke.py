"""Served-smoke entry point: ``python -m repro.serving.smoke``.

Starts a real :class:`AsyncDataServer` on an ephemeral loopback port,
drives a short mixed workload (evaluate / ingest / load / update /
revoke) over several pipelined connections, prints the per-op
percentile report and exits non-zero unless every op type produced
latency samples.  CI runs this as the served-smoke job; it is also the
quickest local way to see the serving stack working end to end.
"""

from __future__ import annotations

import asyncio
import random
import sys
import time

from repro.core import stream_policy
from repro.framework.network import SimulatedNetwork
from repro.framework.server import DataServer
from repro.serving.client import AsyncClient
from repro.serving.server import AsyncDataServer
from repro.serving.wire import EvaluateOp, IngestOp, LoadOp, RevokeOp, UpdateOp
from repro.streams.engine import StreamEngine
from repro.streams.graph import QueryGraph
from repro.streams.operators import FilterOperator
from repro.streams.schema import WEATHER_SCHEMA
from repro.xacml.request import Request
from repro.xacml.xml_io import policy_to_xml, request_to_xml

N_CONNECTIONS = 4
OPS_PER_CONNECTION = 150
STREAM = "weather"
TIMEOUT = 60.0

EXPECTED_OPS = ("EvaluateOp", "IngestOp", "LoadOp", "UpdateOp", "RevokeOp")


def make_server() -> DataServer:
    network = SimulatedNetwork()
    engine = StreamEngine()
    engine.register_input_stream(STREAM, WEATHER_SCHEMA)
    server = DataServer(
        network,
        engine=engine,
        enforce_single_access=False,
        allow_partial_results=True,
    )
    for j in range(8):
        server.load_policy(
            stream_policy(
                f"p:{j}",
                STREAM,
                QueryGraph(STREAM).append(FilterOperator("rainrate > 5")),
                subject=f"user{j}",
            )
        )
    return server


def build_script(connection_id: int):
    rng = random.Random(1000 + connection_id)
    ops = []
    live = []
    sequence = 0
    graph = lambda t: QueryGraph(STREAM).append(FilterOperator(f"rainrate > {t}"))  # noqa: E731
    for _ in range(OPS_PER_CONNECTION):
        roll = rng.random()
        if roll < 0.7:
            subject = f"user{rng.randrange(10)}"  # user8/user9 → denied
            ops.append(
                EvaluateOp(
                    request_to_xml(Request.simple(subject, STREAM)), None, True
                )
            )
        elif roll < 0.8:
            records = [
                {
                    "samplingtime": i,
                    "temperature": 25.0,
                    "humidity": 60.0,
                    "solarradiation": 100.0,
                    "rainrate": rng.uniform(0, 12),
                    "windspeed": 3.0,
                    "winddirection": 90,
                    "barometer": 1013.0,
                }
                for i in range(3)
            ]
            ops.append(IngestOp(STREAM, records))
        else:
            kind = rng.choice(["load", "update", "revoke"])
            if kind == "load" or not live:
                pid = f"churn:{connection_id}:{sequence}"
                sequence += 1
                live.append(pid)
                policy = stream_policy(
                    pid, STREAM, graph(rng.randint(1, 9)),
                    subject=f"churn:{connection_id}",
                )
                ops.append(LoadOp(policy_to_xml(policy)))
            elif kind == "update":
                policy = stream_policy(
                    rng.choice(live), STREAM, graph(rng.randint(1, 9)),
                    subject=f"churn:{connection_id}",
                )
                ops.append(UpdateOp(policy_to_xml(policy)))
            else:
                ops.append(RevokeOp(live.pop(rng.randrange(len(live)))))
    return ops


async def run_smoke() -> int:
    server = make_server()
    scripts = [build_script(cid) for cid in range(N_CONNECTIONS)]
    total = sum(len(script) for script in scripts)
    started = time.perf_counter()
    async with AsyncDataServer(server) as front:
        print(f"serving on 127.0.0.1:{front.port} — "
              f"{N_CONNECTIONS} connections x {OPS_PER_CONNECTION} ops")

        async def drive(script):
            async with await AsyncClient.connect("127.0.0.1", front.port) as client:
                for start in range(0, len(script), 25):
                    await client.pipeline(script[start:start + 25])

        await asyncio.gather(*(drive(script) for script in scripts))
        elapsed = time.perf_counter() - started
        print(front.stats.table())
        print(
            f"{total} requests in {elapsed:.2f}s "
            f"({total / elapsed:.0f} req/s, {front.read_pauses} read pauses)"
        )
        report = front.stats.to_dict()
    missing = [op for op in EXPECTED_OPS if not report.get(op, {}).get("count")]
    if missing:
        print(f"FAIL: no percentile samples for {missing}", file=sys.stderr)
        return 1
    bad = [
        op for op in EXPECTED_OPS
        if not (
            report[op]["p50_ms"] <= report[op]["p90_ms"] <= report[op]["p99_ms"]
        )
    ]
    if bad:
        print(f"FAIL: unordered percentiles for {bad}", file=sys.stderr)
        return 1
    print("served-smoke OK: percentile report emitted for every op type")
    return 0


def main() -> int:
    return asyncio.run(asyncio.wait_for(run_smoke(), TIMEOUT))


if __name__ == "__main__":
    raise SystemExit(main())
