"""``asyncio``-based serving front-end over a real :class:`DataServer`.

The paper's prototype serves clients over sockets (Section 4.1); this
module puts a real TCP listener in front of the reproduction's data
server.  Design:

Connection anatomy
    Each accepted connection runs two tasks.  The *reader* parses
    length-prefixed frames and enqueues decoded operations onto a
    bounded per-connection queue (the pipeline); the *responder* —
    exactly one per connection — executes operations and writes replies
    in arrival order, so a pipelined client never observes reordering
    within its connection.

Backpressure
    Three mechanisms compose, each pausing the reader when saturated:
    a global in-flight semaphore (``max_in_flight`` decoded-but-
    unanswered operations across all connections), the bounded pipeline
    queue (``pipeline_depth`` per connection), and the transport's
    write-buffer high watermark — ``drain()`` in the responder blocks
    once ``write_high_water`` bytes sit unsent, which keeps the queue
    full, which pauses the reader.  ``read_pauses`` counts reader
    stalls so tests can observe the watermark engaging.

Execution
    Operations run on the event-loop thread, which serializes them
    exactly like the in-process :class:`DataServer` (whose engine and
    registries are not thread-safe) — the differential harness relies
    on this.  The one exception: when a :class:`ProcessShardPool` is
    attached, PDP evaluation is shipped to the pool from an executor
    thread (the pool is multi-driver safe) and the resulting decision
    is threaded back into the PEP via the ``pdp_response`` seam.

Failure containment
    Payload-level garbage inside an intact frame produces an in-order
    :class:`ErrorReply` and the connection lives on.  Framing-level
    corruption (oversized length prefix, truncated frame) kills only
    that connection.  A client vanishing mid-pipeline cancels its
    responder and releases its in-flight permits; other connections
    never notice.
"""

from __future__ import annotations

import asyncio
import logging
import socket
import time
from typing import Optional, Set

from repro.core.user_query import UserQuery
from repro.errors import ShardUnavailableError, TransportError
from repro.framework.messages import StreamRequestMessage
from repro.framework.server import DataServer
from repro.serving.stats import LatencyRecorder
from repro.serving.wire import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    AckReply,
    ErrorReply,
    EvaluateOp,
    EvaluateReply,
    IngestOp,
    LoadOp,
    PingOp,
    RevokeOp,
    UpdateOp,
    _HEADER,
    decode_message,
    encode_message,
)
from repro.xacml.response import Decision
from repro.xacml.xml_io import parse_request_xml

logger = logging.getLogger(__name__)

_CLOSE = object()


class AsyncDataServer:
    """TCP front-end: concurrent connections, pipelining, backpressure.

    Use::

        front = await AsyncDataServer(server).start()
        ...
        await front.aclose()

    ``port=0`` (the default) binds an ephemeral loopback port; the
    bound port is available as :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        server: DataServer,
        host: str = "127.0.0.1",
        port: int = 0,
        max_in_flight: int = 256,
        pipeline_depth: int = 32,
        write_high_water: int = 64 * 1024,
        sndbuf: Optional[int] = None,
        pool=None,
    ):
        self.server = server
        self.host = host
        self.port = port
        self.pipeline_depth = max(1, pipeline_depth)
        self.write_high_water = write_high_water
        #: Shrink the kernel send buffer (per accepted socket) so the
        #: userspace write watermark — not ~200 KB of kernel buffering —
        #: decides when backpressure engages.  Tests use this.
        self.sndbuf = sndbuf
        self.pool = pool
        self.stats = LatencyRecorder()
        self.connections_total = 0  # guarded by: event-loop
        self.active_connections = 0  # guarded by: event-loop
        #: Reader stalls: how often the pipeline queue or the in-flight
        #: semaphore made the reader wait (the backpressure signal).
        self.read_pauses = 0  # guarded by: event-loop
        #: Connections dropped for framing-level protocol violations.
        self.protocol_errors = 0  # guarded by: event-loop
        self._in_flight = asyncio.Semaphore(max(1, max_in_flight))
        self._asyncio_server: Optional[asyncio.base_events.Server] = None
        self._connection_tasks: Set[asyncio.Task] = set()

    # -- lifecycle --------------------------------------------------------------

    async def start(self) -> "AsyncDataServer":
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._asyncio_server.sockets[0].getsockname()[1]
        return self

    async def __aenter__(self) -> "AsyncDataServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        """Stop accepting, then tear down every live connection."""
        if self._asyncio_server is None:
            return
        self._asyncio_server.close()
        await self._asyncio_server.wait_closed()
        self._asyncio_server = None
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(*self._connection_tasks, return_exceptions=True)
        self._connection_tasks.clear()

    # -- connection handling -----------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
            task.add_done_callback(self._connection_tasks.discard)
        self.connections_total += 1
        self.active_connections += 1
        sock = writer.get_extra_info("socket")
        if self.sndbuf is not None and sock is not None:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, self.sndbuf)
        writer.transport.set_write_buffer_limits(high=self.write_high_water)
        queue: asyncio.Queue = asyncio.Queue(self.pipeline_depth)
        responder = asyncio.create_task(self._respond_loop(queue, writer))
        clean_eof = False
        try:
            while True:
                try:
                    header = await reader.readexactly(HEADER_BYTES)
                except asyncio.IncompleteReadError as error:
                    if error.partial:
                        raise TransportError(
                            "connection closed mid-frame (truncated header)"
                        )
                    clean_eof = True
                    break
                (length,) = _HEADER.unpack(header)
                if length > MAX_FRAME_BYTES:
                    raise TransportError(
                        f"declared frame length {length} exceeds the "
                        f"{MAX_FRAME_BYTES}-byte limit"
                    )
                try:
                    payload = await reader.readexactly(length)
                except asyncio.IncompleteReadError:
                    raise TransportError(
                        "connection closed mid-frame (truncated body)"
                    )
                try:
                    seq, message = decode_message(payload)
                except TransportError as error:
                    # An intact frame with a garbage payload: answer it
                    # (in order, like any op) and keep serving.
                    seq, message = -1, ErrorReply("TransportError", str(error))
                await self._enqueue(queue, (seq, time.perf_counter(), message))
        except (TransportError, ConnectionResetError, OSError):
            self.protocol_errors += 1
        except asyncio.CancelledError:
            # Server shutdown cancelled this connection; finish the
            # teardown below and end the task cleanly (re-raising only
            # trips asyncio's noisy connection-callback logging).
            pass
        finally:
            try:
                if clean_eof:
                    # Let the responder flush the pipelined tail first.
                    await queue.put(_CLOSE)
                    try:
                        await responder
                    except Exception as error:
                        logger.debug("responder failed during drain: %s", error)
                else:
                    responder.cancel()
                    try:
                        await responder
                    except (asyncio.CancelledError, Exception) as error:
                        logger.debug("responder cancel teardown: %r", error)
                    # Permits of dropped (still-queued) items.
                    while not queue.empty():
                        if queue.get_nowait() is not _CLOSE:
                            self._in_flight.release()
                writer.close()
                try:
                    await writer.wait_closed()
                except Exception as error:
                    logger.debug("wait_closed after teardown: %s", error)
            except asyncio.CancelledError:
                # Cancelled mid-teardown (server shutdown): finish with
                # the synchronous essentials and end cleanly.
                responder.cancel()
                writer.close()
            finally:
                self.active_connections -= 1

    async def _enqueue(self, queue: asyncio.Queue, item) -> None:
        """Admit one decoded op, pausing the reader when saturated."""
        if self._in_flight.locked():
            self.read_pauses += 1
        await self._in_flight.acquire()
        try:
            if queue.full():
                self.read_pauses += 1
            await queue.put(item)
        except BaseException:
            self._in_flight.release()
            raise

    async def _respond_loop(self, queue: asyncio.Queue, writer) -> None:
        """The single per-connection responder: strict arrival order.

        Exits only on the close sentinel or cancellation — a peer that
        stops reading breaks the *writes*, not the loop, so already-
        pipelined operations still execute and release their permits
        (and a full queue can never deadlock the reader's shutdown).
        """
        broken = False
        while True:
            item = await queue.get()
            if item is _CLOSE:
                return
            seq, received, message = item
            try:
                if isinstance(message, ErrorReply):
                    reply, op_name = message, None  # decode failure, pre-made
                else:
                    op_name = type(message).__name__
                    reply = await self.execute(message)
                if not broken:
                    try:
                        writer.write(encode_message(seq, reply))
                        await writer.drain()
                    except asyncio.CancelledError:
                        raise
                    except Exception as error:
                        logger.debug("reply write failed, connection broken: %s", error)
                        broken = True
                if op_name is not None and not broken:
                    self.stats.record(op_name, time.perf_counter() - received)
            finally:
                self._in_flight.release()

    # -- operation execution -----------------------------------------------------

    async def execute(self, message):
        """Execute one decoded op; never raises — failures become
        :class:`ErrorReply`, exactly what goes on the wire.  Public so
        differential harnesses can replay served semantics in-process.
        """
        try:
            return await self._execute(message)
        except asyncio.CancelledError:
            raise
        except ShardUnavailableError as error:
            # A dead/restarting shard is a transient, *retryable* fault
            # (unless the shard was declared degraded): flag it so
            # resilient clients back off and retry while the supervisor
            # respawns the worker — the connection stays usable either
            # way.
            return ErrorReply(
                type(error).__name__, str(error), retryable=error.retryable
            )
        except Exception as error:
            return ErrorReply(type(error).__name__, str(error))

    async def _execute(self, message):
        if isinstance(message, EvaluateOp):
            return await self._evaluate(message)
        if isinstance(message, (LoadOp, UpdateOp)):
            apply = (
                self.server.load_policy
                if isinstance(message, LoadOp)
                else self.server.update_policy
            )
            apply(message.policy_xml)
            op = "load" if isinstance(message, LoadOp) else "update"
            return AckReply(op)
        if isinstance(message, RevokeOp):
            self.server.remove_policy(message.policy_id)
            return AckReply("revoke", detail=message.policy_id)
        if isinstance(message, IngestOp):
            count = self.server.instance.engine.push_batch(
                message.stream, message.records
            )
            return AckReply("ingest", count=count)
        if isinstance(message, PingOp):
            return AckReply("ping")
        return ErrorReply("TransportError", f"unserveable op {type(message).__name__}")

    async def _evaluate(self, op: EvaluateOp):
        request = parse_request_xml(op.request_xml)
        pdp_response = None
        if self.pool is not None:
            # The pool is multi-driver: executor threads are drivers.
            pdp_response = await asyncio.get_running_loop().run_in_executor(
                None, self.pool.evaluate, request
            )
        if op.decide_only:
            response = (
                pdp_response
                if pdp_response is not None
                else self.server.instance.pdp.evaluate(request)
            )
            return EvaluateReply(
                ok=response.decision is Decision.PERMIT,
                decision=response.decision.value,
                policy_id=response.policy_id,
            )
        user_query = (
            UserQuery.from_xml(op.user_query_xml) if op.user_query_xml else None
        )
        message = StreamRequestMessage(request, user_query)
        response, _timing = self.server.process(message, pdp_response=pdp_response)
        return EvaluateReply(
            ok=response.ok,
            handle_uri=response.handle_uri,
            decision=response.decision,
            policy_id=response.policy_id,
            error_kind=response.error_kind,
            error_detail=response.error_detail,
        )
