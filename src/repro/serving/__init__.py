"""Real asyncio serving front-end (the paper's Section 4.1 socket layer).

The simulation stack (`repro.framework`) models the prototype's
entities over a virtual clock; this package puts a real wire in front
of the same :class:`~repro.framework.server.DataServer`:

``wire``
    Length-prefixed frames and the JSON codec for the five operation
    types (evaluate / load / update / revoke / ingest) plus replies.
``server``
    :class:`AsyncDataServer` — ``asyncio.start_server`` front-end with
    per-connection pipelining, a bounded in-flight semaphore and
    write-buffer backpressure.
``client``
    :class:`AsyncClient` — pipelined batches over one connection, with
    per-call deadlines and retry/backoff on retryable errors.
``stats``
    :class:`LatencyRecorder` — per-op p50/p90/p99 in the dbworkload
    run-table shape.
"""

from repro.serving.client import RETRYABLE_OPS, AsyncClient
from repro.serving.server import AsyncDataServer
from repro.serving.stats import LatencyRecorder
from repro.serving.wire import (
    MAX_FRAME_BYTES,
    AckReply,
    ErrorReply,
    EvaluateOp,
    EvaluateReply,
    FrameDecoder,
    IngestOp,
    LoadOp,
    PingOp,
    RevokeOp,
    UpdateOp,
    decode_message,
    encode_frame,
    encode_message,
)

__all__ = [
    "RETRYABLE_OPS",
    "AsyncClient",
    "AsyncDataServer",
    "LatencyRecorder",
    "MAX_FRAME_BYTES",
    "AckReply",
    "ErrorReply",
    "EvaluateOp",
    "EvaluateReply",
    "FrameDecoder",
    "IngestOp",
    "LoadOp",
    "PingOp",
    "RevokeOp",
    "UpdateOp",
    "decode_message",
    "encode_frame",
    "encode_message",
]
