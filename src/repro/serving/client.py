"""Pipelined asyncio client for :class:`AsyncDataServer`.

One connection, client-assigned sequence numbers, and two calling
styles: :meth:`call` for one op at a time, :meth:`pipeline` to ship a
whole batch before reading any reply (the server answers strictly in
order, so replies are matched positionally and the echoed sequence
numbers are verified as they come back).
"""

from __future__ import annotations

import asyncio
import socket
from typing import List, Optional, Sequence, Union

from repro.core.user_query import UserQuery
from repro.errors import TransportError
from repro.serving.wire import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    EvaluateOp,
    IngestOp,
    LoadOp,
    PingOp,
    RevokeOp,
    UpdateOp,
    _HEADER,
    decode_message,
    encode_message,
)
from repro.xacml.policy import Policy
from repro.xacml.request import Request
from repro.xacml.xml_io import policy_to_xml, request_to_xml


class AsyncClient:
    """One served connection; create via :meth:`connect`."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._seq = 0

    @classmethod
    async def connect(
        cls, host: str, port: int, rcvbuf: Optional[int] = None
    ) -> "AsyncClient":
        """Open a connection; *rcvbuf* shrinks the kernel receive buffer
        (set before connecting) so backpressure tests control how many
        response bytes the network path absorbs."""
        if rcvbuf is None:
            reader, writer = await asyncio.open_connection(host, port)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcvbuf)
            sock.setblocking(False)
            await asyncio.get_running_loop().sock_connect(sock, (host, port))
            reader, writer = await asyncio.open_connection(sock=sock)
        return cls(reader, writer)

    async def __aenter__(self) -> "AsyncClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass

    # -- raw op interface --------------------------------------------------------

    def send_nowait(self, op) -> int:
        """Buffer one op without flushing; returns its sequence number."""
        seq = self._seq
        self._seq += 1
        self._writer.write(encode_message(seq, op))
        return seq

    async def call(self, op):
        """Send one op and await its reply."""
        return (await self.pipeline([op]))[0]

    async def pipeline(self, ops: Sequence) -> List:
        """Ship every op, then read every reply (in order)."""
        seqs = [self.send_nowait(op) for op in ops]
        await self._writer.drain()
        return [await self._read_reply(expected) for expected in seqs]

    async def _read_reply(self, expected_seq: int):
        try:
            header = await self._reader.readexactly(HEADER_BYTES)
            (length,) = _HEADER.unpack(header)
            if length > MAX_FRAME_BYTES:
                raise TransportError(f"oversized reply frame ({length} bytes)")
            payload = await self._reader.readexactly(length)
        except asyncio.IncompleteReadError as error:
            raise TransportError("server closed the connection") from error
        seq, reply = decode_message(payload)
        # seq -1 flags a reply to a frame the server could not decode;
        # it still occupies this pipeline slot (replies are in order).
        if seq not in (expected_seq, -1):
            raise TransportError(
                f"reply out of order: expected seq {expected_seq}, got {seq}"
            )
        return reply

    # -- convenience wrappers ----------------------------------------------------

    async def evaluate(
        self,
        request: Union[Request, str],
        user_query: Optional[Union[UserQuery, str]] = None,
        decide_only: bool = False,
    ):
        if isinstance(request, Request):
            request = request_to_xml(request)
        if isinstance(user_query, UserQuery):
            user_query = user_query.to_xml()
        return await self.call(EvaluateOp(request, user_query, decide_only))

    async def load(self, policy: Union[Policy, str]):
        if isinstance(policy, Policy):
            policy = policy_to_xml(policy)
        return await self.call(LoadOp(policy))

    async def update(self, policy: Union[Policy, str]):
        if isinstance(policy, Policy):
            policy = policy_to_xml(policy)
        return await self.call(UpdateOp(policy))

    async def revoke(self, policy_id: str):
        return await self.call(RevokeOp(policy_id))

    async def ingest(self, stream: str, records: Sequence[dict]):
        return await self.call(IngestOp(stream, list(records)))

    async def ping(self):
        return await self.call(PingOp())
