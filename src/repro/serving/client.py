"""Pipelined asyncio client for :class:`AsyncDataServer`.

One connection, client-assigned sequence numbers, and two calling
styles: :meth:`call` for one op at a time, :meth:`pipeline` to ship a
whole batch before reading any reply (the server answers strictly in
order, so replies are matched positionally and the echoed sequence
numbers are verified as they come back).

**Deadlines.**  Every :meth:`call`/:meth:`pipeline` carries a per-call
deadline (``timeout=`` per call, :attr:`DEFAULT_TIMEOUT` otherwise); a
call that misses it raises :class:`~repro.errors.ClientTimeoutError` —
typed apart from :class:`~repro.errors.TransportError`, because the
transport may be healthy while the server is merely hung, and a
timed-out *mutation* may or may not have been applied.  A timeout also
desynchronizes the connection: replies are matched positionally, so
once a reply is abandoned mid-read every later slot would be off by
one — the client marks itself broken and every later call fails fast
with a :class:`TransportError` telling the caller to reconnect.

**Retries.**  :meth:`call` retries an op only when *all three* hold:
the server answered (so the positional protocol is still in sync) with
an :class:`ErrorReply` marked ``retryable`` (a shard mid-restart, for
instance), and the op is idempotent (:data:`RETRYABLE_OPS` — evaluate
and ping).  Mutations are never auto-retried: a retryable refusal is
surfaced for the caller to decide, and a timeout is ambiguous anyway.
Backoff is exponential with full jitter, capped, and counted in
:attr:`retries_performed` so tests can observe the policy engaging.
The call's single deadline spans the whole retry loop — attempts *and*
backoff sleeps — so retries can never multiply the caller's timeout.
"""

from __future__ import annotations

import asyncio
import logging
import random
import socket
from typing import List, Optional, Sequence, Union

from repro.core.user_query import UserQuery
from repro.errors import ClientTimeoutError, TransportError
from repro.serving.wire import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    ErrorReply,
    EvaluateOp,
    IngestOp,
    LoadOp,
    PingOp,
    RevokeOp,
    UpdateOp,
    _HEADER,
    decode_message,
    encode_message,
)
from repro.xacml.policy import Policy
from repro.xacml.request import Request
from repro.xacml.xml_io import policy_to_xml, request_to_xml

logger = logging.getLogger(__name__)

#: Ops that are safe to resend after a retryable server-side refusal:
#: decide/ping have no server-side effects.  Mutations (load, update,
#: revoke, ingest) are deliberately absent.
RETRYABLE_OPS = (EvaluateOp, PingOp)


class AsyncClient:
    """One served connection; create via :meth:`connect`."""

    #: Per-call deadline applied when a call does not pass its own
    #: ``timeout``.  ``None`` (or a non-positive value) waits forever —
    #: the pre-PR-7 behaviour, opt-in only.
    DEFAULT_TIMEOUT = 30.0

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        timeout: Optional[float] = DEFAULT_TIMEOUT,
        max_retries: int = 3,
        retry_base_delay: float = 0.05,
        retry_max_delay: float = 1.0,
        rng: Optional[random.Random] = None,
    ):
        self._reader = reader
        self._writer = writer
        self._seq = 0  # guarded by: event-loop
        self._timeout = timeout
        self.max_retries = max(0, max_retries)
        self.retry_base_delay = retry_base_delay
        self.retry_max_delay = retry_max_delay
        # Jitter need not be reproducible; tests inject their own rng.
        self._rng = rng if rng is not None else random.Random()  # analysis: allow[seed-random] retry jitter is deliberately unseeded; deterministic tests inject rng
        #: Set after a deadline miss: the positional reply protocol is
        #: off by one from here on, so the connection refuses further
        #: calls rather than mismatching replies.
        self._desynced = False  # guarded by: event-loop
        #: Observability: retryable-error resends and deadline misses.
        self.retries_performed = 0  # guarded by: event-loop
        self.timeouts = 0  # guarded by: event-loop

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        rcvbuf: Optional[int] = None,
        **kwargs,
    ) -> "AsyncClient":
        """Open a connection; *rcvbuf* shrinks the kernel receive buffer
        (set before connecting) so backpressure tests control how many
        response bytes the network path absorbs.  Remaining keyword
        arguments (``timeout``, ``max_retries``, ...) configure the
        client."""
        if rcvbuf is None:
            reader, writer = await asyncio.open_connection(host, port)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcvbuf)
                sock.setblocking(False)
                await asyncio.get_running_loop().sock_connect(sock, (host, port))
                reader, writer = await asyncio.open_connection(sock=sock)
            except BaseException:
                # Until open_connection hands the socket to a transport,
                # nothing else will ever close it.
                sock.close()
                raise
        return cls(reader, writer, **kwargs)

    async def __aenter__(self) -> "AsyncClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception as error:
            logger.debug("wait_closed during aclose: %s", error)

    # -- deadlines ---------------------------------------------------------------

    def _deadline(self, timeout: Optional[float]) -> Optional[float]:
        """Absolute loop-time deadline for one call, or None."""
        if timeout is None:
            timeout = self._timeout
        if timeout is None or timeout <= 0:
            return None
        return asyncio.get_running_loop().time() + timeout

    async def _bounded(self, coroutine, deadline: Optional[float]):
        """Run *coroutine* under the call deadline.

        A miss abandons the awaited read mid-slot — the connection is
        desynchronized from that point and marked unusable."""
        if deadline is None:
            return await coroutine
        remaining = deadline - asyncio.get_running_loop().time()
        try:
            if remaining <= 0:
                raise asyncio.TimeoutError
            return await asyncio.wait_for(coroutine, remaining)
        except asyncio.TimeoutError:
            self._desynced = True
            self.timeouts += 1
            raise ClientTimeoutError(
                "served call missed its deadline; the connection is "
                "desynchronized — reconnect to continue"
            ) from None

    def _check_usable(self) -> None:
        if self._desynced:
            raise TransportError(
                "connection desynchronized by an earlier timeout; "
                "open a new connection"
            )

    # -- raw op interface --------------------------------------------------------

    def send_nowait(self, op) -> int:
        """Buffer one op without flushing; returns its sequence number."""
        seq = self._seq
        # analysis: allow[guarded-by] sync helper invoked only from this client's coroutines, so still on the loop
        self._seq += 1
        self._writer.write(encode_message(seq, op))
        return seq

    async def call(self, op, timeout: Optional[float] = None):
        """Send one op and await its reply, with the retry policy.

        Retries (idempotent ops, retryable error replies only) resend
        the op after an exponential full-jitter backoff.  One overall
        deadline — ``timeout`` (or the default) measured from entry —
        bounds the *whole* loop, attempts and backoff sleeps included:
        a call with ``timeout=T`` returns (or raises) within ~``T``,
        never ``max_retries × T``.  When the budget runs out between
        attempts, the last (retryable) error reply is surfaced rather
        than sleeping past the deadline.
        """
        deadline = self._deadline(timeout)
        attempt = 0
        while True:
            reply = (await self._pipeline([op], deadline))[0]
            if not (
                isinstance(reply, ErrorReply)
                and reply.retryable
                and isinstance(op, RETRYABLE_OPS)
                and attempt < self.max_retries
            ):
                return reply
            attempt += 1
            cap = min(
                self.retry_base_delay * (2 ** (attempt - 1)),
                self.retry_max_delay,
            )
            delay = self._rng.uniform(0, cap)
            if deadline is not None:
                remaining = deadline - asyncio.get_running_loop().time()
                if remaining <= delay:
                    # Out of budget: the next attempt could not finish
                    # inside the deadline anyway.
                    return reply
            self.retries_performed += 1
            await asyncio.sleep(delay)

    async def pipeline(self, ops: Sequence, timeout: Optional[float] = None):
        """Ship every op, then read every reply (in order).

        One deadline covers the whole batch.  No automatic retries at
        this level: a pipeline mixes op kinds, and partial resends
        would reorder the batch semantics callers rely on.
        """
        return await self._pipeline(ops, self._deadline(timeout))

    async def _pipeline(self, ops: Sequence, deadline: Optional[float]):
        self._check_usable()
        seqs = [self.send_nowait(op) for op in ops]
        await self._bounded(self._writer.drain(), deadline)
        return [
            await self._bounded(self._read_reply(expected), deadline)
            for expected in seqs
        ]

    async def pipeline_timed(self, ops: Sequence, timeout: Optional[float] = None):
        """Like :meth:`pipeline`, but returns ``(reply, seconds)`` pairs.

        Each op is timed from batch admission (the shared write) to its
        own reply arriving — the client-observed latency a load
        generator wants per op, queueing delay behind earlier replies
        included.
        """
        self._check_usable()
        deadline = self._deadline(timeout)
        loop = asyncio.get_running_loop()
        seqs = [self.send_nowait(op) for op in ops]
        started = loop.time()
        await self._bounded(self._writer.drain(), deadline)
        timed = []
        for expected in seqs:
            reply = await self._bounded(self._read_reply(expected), deadline)
            timed.append((reply, loop.time() - started))
        return timed

    async def _read_reply(self, expected_seq: int):
        try:
            header = await self._reader.readexactly(HEADER_BYTES)
            (length,) = _HEADER.unpack(header)
            if length > MAX_FRAME_BYTES:
                raise TransportError(f"oversized reply frame ({length} bytes)")
            payload = await self._reader.readexactly(length)
        except asyncio.IncompleteReadError as error:
            raise TransportError("server closed the connection") from error
        seq, reply = decode_message(payload)
        # seq -1 flags a reply to a frame the server could not decode;
        # it still occupies this pipeline slot (replies are in order).
        if seq not in (expected_seq, -1):
            raise TransportError(
                f"reply out of order: expected seq {expected_seq}, got {seq}"
            )
        return reply

    # -- convenience wrappers ----------------------------------------------------

    async def evaluate(
        self,
        request: Union[Request, str],
        user_query: Optional[Union[UserQuery, str]] = None,
        decide_only: bool = False,
        timeout: Optional[float] = None,
    ):
        if isinstance(request, Request):
            request = request_to_xml(request)
        if isinstance(user_query, UserQuery):
            user_query = user_query.to_xml()
        return await self.call(
            EvaluateOp(request, user_query, decide_only), timeout=timeout
        )

    async def load(self, policy: Union[Policy, str]):
        if isinstance(policy, Policy):
            policy = policy_to_xml(policy)
        return await self.call(LoadOp(policy))

    async def update(self, policy: Union[Policy, str]):
        if isinstance(policy, Policy):
            policy = policy_to_xml(policy)
        return await self.call(UpdateOp(policy))

    async def revoke(self, policy_id: str):
        return await self.call(RevokeOp(policy_id))

    async def ingest(self, stream: str, records: Sequence[dict]):
        return await self.call(IngestOp(stream, list(records)))

    async def ping(self, timeout: Optional[float] = None):
        return await self.call(PingOp(), timeout=timeout)
