"""Testing utilities shipped with the library.

``faults``
    Fault-injection harness for the robustness layer: scheduled worker
    kills, invalidation-mirror chaos (delays/drops), wire-frame
    garbling and reader stalls — the controlled failure modes the
    chaos differential suite (``tests/chaos``) drives against the
    supervised :class:`~repro.xacml.sharding.ProcessShardPool` and the
    serving front-end.
"""

from repro.testing.faults import (
    FaultInjector,
    MirrorChaos,
    WorkerKiller,
    garble_payload,
    stalled_pipeline,
)

__all__ = [
    "FaultInjector",
    "MirrorChaos",
    "WorkerKiller",
    "garble_payload",
    "stalled_pipeline",
]
