"""Fault-injection harness for the robustness layer.

A :class:`~repro.xacml.sharding.ProcessShardPool` accepts a
``fault_injector`` whose hooks fire on the pool's two traffic planes:

``on_command(pool, shard_id, op)``
    Called for every command submitted to a shard worker (evaluate
    batches, mirrored mutations, catch-up replay, stats/flush) —
    *before* the command is shipped.  :class:`WorkerKiller` uses it to
    terminate a worker after its K-th command, deterministically
    placing a crash mid-traffic.

``on_mirror(pool, shard_id, op) -> Optional[str]``
    Called when a shard-level store mutation is about to be mirrored
    into its worker.  Returning ``"drop"`` suppresses the mirror — the
    pool responds by killing that worker (a replica that missed a
    mutation is unknowable), so a dropped invalidation ack converts
    into a supervised crash-rebuild instead of silent staleness.
    :class:`MirrorChaos` drops and/or delays acks this way.

The wire-level faults are plain helpers: :func:`garble_payload`
corrupts a frame payload (keeping the frame intact, so it exercises
payload containment, not connection teardown) and
:func:`stalled_pipeline` drives a client that ships a whole batch and
then stops reading — the backpressure-under-stall shape.

Everything here is deterministic given its inputs (seeded RNGs,
explicit schedules), so a chaos run that fails is replayable from its
printed seed.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple, Union


class FaultInjector:
    """No-op base injector; subclass and override the hooks you need."""

    def on_command(self, pool, shard_id: int, op: str) -> None:
        """A command is about to ship to *shard_id*'s worker."""

    def on_mirror(self, pool, shard_id: int, op: str) -> Optional[str]:
        """A mutation is about to mirror into *shard_id*'s worker.
        Return ``"drop"`` to suppress it (the pool kills the worker)."""
        return None


class WorkerKiller(FaultInjector):
    """Kill shard workers at scheduled points in the command stream.

    *schedule* maps ``shard_id`` to the 1-based command counts at which
    that shard's worker is terminated — an ``int`` for a single kill, a
    list for repeated kills (each against whatever generation is then
    live, so a respawned worker can be killed again).  Counts are per
    shard and include every command kind, which makes placement
    deterministic for a serial driver and merely *bounded* for
    concurrent ones — either way the differential property must hold.
    """

    def __init__(self, schedule: Dict[int, Union[int, Iterable[int]]]):
        self._lock = threading.Lock()
        self._due: Dict[int, List[int]] = {}
        for shard_id, counts in schedule.items():
            if isinstance(counts, int):
                counts = [counts]
            self._due[shard_id] = sorted(counts)
        self._counts: Dict[int, int] = {}
        #: Log of performed kills: ``(shard_id, command_count, op)``.
        self.kills: List[Tuple[int, int, str]] = []

    def on_command(self, pool, shard_id: int, op: str) -> None:
        kill = False
        with self._lock:
            count = self._counts.get(shard_id, 0) + 1
            self._counts[shard_id] = count
            due = self._due.get(shard_id)
            if due and count >= due[0]:
                due.pop(0)
                self.kills.append((shard_id, count, op))
                kill = True
        if kill:
            pool.kill_worker(
                shard_id,
                reason=f"fault injection: kill after command {count} ({op})",
            )


class MirrorChaos(FaultInjector):
    """Delay and/or drop mirrored invalidation acks.

    A *delay* stretches the synchronous mutation fan-out (mutation
    latency, never correctness — the ack still happens); a *drop*
    suppresses the mirror entirely, which the pool converts into a
    worker kill + supervised rebuild.  Seeded, with an optional drop
    budget so a run cannot degrade every shard.
    """

    def __init__(
        self,
        seed: int = 0,
        drop_rate: float = 0.0,
        delay: float = 0.0,
        max_drops: Optional[int] = None,
    ):
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self.drop_rate = drop_rate
        self.delay = delay
        self.max_drops = max_drops
        self.delayed = 0
        self.dropped = 0

    def on_mirror(self, pool, shard_id: int, op: str) -> Optional[str]:
        if self.delay > 0:
            time.sleep(self.delay)
            with self._lock:
                self.delayed += 1
        if self.drop_rate <= 0:
            return None
        with self._lock:
            if self.max_drops is not None and self.dropped >= self.max_drops:
                return None
            if self._rng.random() >= self.drop_rate:
                return None
            self.dropped += 1
        return "drop"


def garble_payload(payload: bytes) -> bytes:
    """Corrupt a frame payload so it can never decode.

    The first byte becomes ``0xFF`` — invalid UTF-8, guaranteed
    undecodable — while the frame around it stays well-formed, so the
    server must answer an in-order ``ErrorReply`` (seq ``-1``) and keep
    the connection alive.  (Randomly flipping a byte could leave valid
    JSON with a *different meaning* — e.g. a changed seq digit — which
    tests protocol desync, not payload containment.)
    """
    if not payload:
        return b"\xff"
    return b"\xff" + payload[1:]


async def stalled_pipeline(client, ops, stall: float = 0.25):
    """Ship every op, stall the reader for *stall* seconds, then drain.

    While the reader sleeps, the server keeps executing and writing
    into a path nobody drains — engaging its write-buffer watermark and
    in-flight accounting.  Replies still come back complete and in
    order.  (Reaches into the client's raw send/read internals on
    purpose: the public ``pipeline`` never stalls between phases.)
    """
    seqs = [client.send_nowait(op) for op in ops]
    await client._writer.drain()
    await asyncio.sleep(stall)
    return [await client._read_reply(seq) for seq in seqs]
