"""Compile filter conditions to plain Python closures.

The interpreter in :mod:`repro.expr.evaluate` re-walks the expression
AST for every tuple: recursive ``isinstance`` dispatch per node, a
name-based attribute lookup per leaf, and an :class:`Operator` enum
dispatch per comparison.  That cost is paid once per tuple per
registered query, which makes per-tuple operator evaluation the engine's
bottleneck at query fan-out.

This module closes that gap with the standard interpreter→compiler
jump: a :class:`~repro.expr.ast.BooleanExpression` is compiled *once*
against a resolved :class:`~repro.streams.schema.Schema` into Python
source that

- resolves every attribute reference to a positional index into the
  tuple's value vector (``v[3]`` instead of a case-insensitive name
  lookup),
- specialises every comparison to the native operator for the leaf's
  dtype (``v[3] > 5.0`` instead of ``Operator.GT.apply(...)``),
- short-circuits AND/OR through Python's own ``and``/``or``.

The source is compiled with :func:`eval` in a restricted namespace: no
builtins, and literals that cannot be embedded verbatim (non-finite
floats) are passed through a constants tuple, so no user-controlled
text is ever spliced into the generated code (string literals are
embedded via ``repr``, which escapes quoting).

Compilation validates the expression against the schema exactly like
the interpreter would at evaluation time: an unknown attribute raises
:class:`UnknownAttributeError`, a string/numeric mismatch or a boolean
attribute raises :class:`ExpressionTypeError`.  For any schema-valid
expression and schema-conformant tuple the compiled closure is
decision-identical to :func:`repro.expr.evaluate.evaluate` — the
differential harness in ``tests/properties`` proves it.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import TYPE_CHECKING, Callable, List, Sequence

from repro.errors import ExpressionTypeError
from repro.expr.ast import (
    AndExpression,
    BooleanExpression,
    NotExpression,
    Operator,
    OrExpression,
    SimpleExpression,
    TrueExpression,
)

if TYPE_CHECKING:  # deferred: repro.streams imports back into repro.expr
    from repro.streams.schema import Schema
    from repro.streams.tuples import StreamTuple

#: Comparison spellings in generated source (EQ/NE widen to Python's).
_OP_SOURCE = {
    Operator.LT: "<",
    Operator.GT: ">",
    Operator.LE: "<=",
    Operator.GE: ">=",
    Operator.EQ: "==",
    Operator.NE: "!=",
}


def _literal_source(value, constants: List) -> str:
    """Source text for a leaf literal, spilling to the constants tuple.

    ``repr`` round-trips ints, strings and finite floats exactly;
    non-finite floats (``nan``/``inf``) have no literal spelling in an
    empty namespace, so they ride in via ``C``.
    """
    if isinstance(value, float) and not math.isfinite(value):
        constants.append(value)
        return f"C[{len(constants) - 1}]"
    return repr(value)


def _leaf_source(leaf: SimpleExpression, schema: "Schema", constants: List) -> str:
    from repro.streams.schema import DataType

    field = schema.field(leaf.attribute)  # raises UnknownAttributeError
    literal_is_str = isinstance(leaf.value, str)
    if field.dtype is DataType.BOOL:
        raise ExpressionTypeError(
            f"attribute {field.name!r} is boolean; filter conditions "
            f"compare numbers or strings"
        )
    if literal_is_str != (field.dtype is DataType.STRING):
        raise ExpressionTypeError(
            f"cannot compare attribute {field.name!r} ({field.dtype.value}) "
            f"with literal {leaf.value!r}"
        )
    index = schema.position(leaf.attribute)
    return f"v[{index}] {_OP_SOURCE[leaf.op]} {_literal_source(leaf.value, constants)}"


def _expression_source(
    expression: BooleanExpression, schema: "Schema", constants: List
) -> str:
    """Recursively render *expression* as Python source over ``v``."""
    if isinstance(expression, TrueExpression):
        return "True"
    if isinstance(expression, SimpleExpression):
        return _leaf_source(expression, schema, constants)
    if isinstance(expression, AndExpression):
        return "(" + " and ".join(
            _expression_source(child, schema, constants)
            for child in expression.children
        ) + ")"
    if isinstance(expression, OrExpression):
        return "(" + " or ".join(
            _expression_source(child, schema, constants)
            for child in expression.children
        ) + ")"
    if isinstance(expression, NotExpression):
        return f"(not {_expression_source(expression.child, schema, constants)})"
    raise ExpressionTypeError(f"cannot compile expression node {expression!r}")


def _build(source: str, constants: List):
    """Evaluate generated lambda *source* in a builtins-free namespace."""
    namespace = {"__builtins__": {}, "C": tuple(constants)}
    return eval(compile(source, "<compiled-condition>", "eval"), namespace)


@lru_cache(maxsize=512)
def _compiled_pair(expression: BooleanExpression, schema: "Schema"):
    """(row predicate, row mask) for *expression* over *schema*.

    Cached on the (expression, schema) pair — both are immutable and
    hashable — so every FilterOperator copy of the same condition over
    the same schema shares one compilation.
    """
    constants: List = []
    body = _expression_source(expression, schema, constants)
    row_predicate = _build(f"lambda v: {body}", constants)
    # One inlined comprehension per batch: no per-row function call.
    # ``for v in (t.values,)`` binds each tuple's value vector to ``v``
    # without an intermediate list or an extra call frame.
    row_mask = _build(f"lambda ts: [{body} for t in ts for v in (t.values,)]", constants)
    return row_predicate, row_mask


def compile_predicate(
    expression: BooleanExpression, schema: "Schema"
) -> Callable[["StreamTuple"], bool]:
    """Compile *expression* into a ``StreamTuple -> bool`` closure.

    The closure assumes its argument conforms to *schema* (the engine
    validates graphs against stream schemas before execution); feeding
    tuples of a different layout is undefined, exactly as for any
    operator used outside a validated pipeline.
    """
    row_predicate, _ = _compiled_pair(expression, schema)
    return lambda tup: bool(row_predicate(tup.values))


def compile_row_predicate(
    expression: BooleanExpression, schema: "Schema"
) -> Callable[[tuple], bool]:
    """Like :func:`compile_predicate`, but over raw value vectors.

    The fastest entry point when the caller already holds
    ``StreamTuple.values`` (or schema-ordered plain tuples).
    """
    row_predicate, _ = _compiled_pair(expression, schema)
    return row_predicate


def compile_batch(
    expression: BooleanExpression, schema: "Schema"
) -> Callable[[Sequence["StreamTuple"]], List[bool]]:
    """Compile *expression* into a vectorized mask function.

    The returned closure maps a batch of tuples to one boolean per
    tuple, evaluating the condition inside a single list comprehension
    so the per-tuple cost is the specialised comparisons alone.
    """
    _, row_mask = _compiled_pair(expression, schema)
    return row_mask


def clear_compile_cache() -> None:
    """Drop all cached compilations (tests and long-lived processes)."""
    _compiled_pair.cache_clear()
