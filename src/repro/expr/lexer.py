"""Tokenizer for filter-condition strings.

Accepts the condition syntax used throughout the paper: identifiers,
numeric literals, single-quoted string literals, the six comparison
operators (plus ``==`` and ``<>`` aliases), AND / OR / NOT (case
insensitive), TRUE, and parentheses.
"""

from __future__ import annotations

import enum
from typing import Iterator, NamedTuple, Optional

from repro.errors import ExpressionSyntaxError


class TokenType(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"
    AND = "and"
    OR = "or"
    NOT = "not"
    TRUE = "true"
    LPAREN = "("
    RPAREN = ")"
    END = "end"


class Token(NamedTuple):
    type: TokenType
    text: str
    value: object
    position: int


_KEYWORDS = {
    "and": TokenType.AND,
    "or": TokenType.OR,
    "not": TokenType.NOT,
    "true": TokenType.TRUE,
}

_TWO_CHAR_OPS = ("<=", ">=", "!=", "<>", "==")
_ONE_CHAR_OPS = ("<", ">", "=")


def tokenize(text: str) -> Iterator[Token]:
    """Yield tokens for *text*, ending with a single END token."""
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "(":
            yield Token(TokenType.LPAREN, "(", None, i)
            i += 1
            continue
        if ch == ")":
            yield Token(TokenType.RPAREN, ")", None, i)
            i += 1
            continue
        two = text[i : i + 2]
        if two in _TWO_CHAR_OPS:
            yield Token(TokenType.OP, two, None, i)
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            yield Token(TokenType.OP, ch, None, i)
            i += 1
            continue
        if ch == "'":
            literal, consumed = _read_string(text, i)
            yield Token(TokenType.STRING, text[i : i + consumed], literal, i)
            i += consumed
            continue
        if ch.isdigit() or (ch in "+-." and _starts_number(text, i)):
            value, consumed = _read_number(text, i)
            yield Token(TokenType.NUMBER, text[i : i + consumed], value, i)
            i += consumed
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = _KEYWORDS.get(word.lower(), TokenType.IDENT)
            yield Token(kind, word, word.lower(), i)
            i = j
            continue
        raise ExpressionSyntaxError(f"unexpected character {ch!r}", position=i)
    yield Token(TokenType.END, "", None, n)


def _starts_number(text: str, i: int) -> bool:
    """True when a sign or dot at *i* begins a numeric literal."""
    j = i + 1
    return j < len(text) and (text[j].isdigit() or (text[i] != "." and text[j] == "."))


def _read_string(text: str, start: int):
    """Read a single-quoted string literal with '' as the escape for '."""
    i = start + 1
    parts = []
    while i < len(text):
        ch = text[i]
        if ch == "'":
            if i + 1 < len(text) and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1 - start
        parts.append(ch)
        i += 1
    raise ExpressionSyntaxError("unterminated string literal", position=start)


def _read_number(text: str, start: int):
    """Read an int or float literal (optional sign, decimals, exponent)."""
    i = start
    n = len(text)
    if text[i] in "+-":
        i += 1
    digits_start = i
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = text[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > digits_start:
            seen_exp = True
            i += 1
            if i < n and text[i] in "+-":
                i += 1
        else:
            break
    literal = text[start:i]
    try:
        value: object = float(literal) if (seen_dot or seen_exp) else int(literal)
    except ValueError:
        raise ExpressionSyntaxError(f"bad numeric literal {literal!r}", position=start) from None
    return value, i - start
