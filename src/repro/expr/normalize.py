"""Normalisation of complex expressions (Section 3.5, Steps 1 and 2).

Step 1 — *NOT elimination*: push every NOT down to the leaves with
De Morgan's laws, then remove it at each leaf using the operator-negation
rules of the paper's Table 2 (``NOT (x > v)`` becomes ``x <= v`` etc.).

Step 2 — *DNF conversion*: convert the NOT-free expression to postfix form
and evaluate the postfix sequence with a stack, applying the distributive
law when an AND is popped and concatenating disjuncts when an OR is
popped.  The result is a disjunctive normal form represented as a list of
conjunctions, each conjunction a tuple of :class:`SimpleExpression`.

The DNF representation is what the NR/PR checker consumes: it calls the
pairwise ``checkTwoSimpleExpression`` on every pair of simple expressions
within each conjunction (cost ``O(k · n²)`` as the paper notes, for ``k``
conjunctions of at most ``n`` literals each).
"""

from __future__ import annotations

from typing import List, Tuple, Union

from repro.errors import ExpressionError
from repro.expr.ast import (
    AndExpression,
    BooleanExpression,
    NotExpression,
    OrExpression,
    SimpleExpression,
    TrueExpression,
)

#: One DNF conjunction: an ordered, de-duplicated tuple of simple expressions.
Conjunction = Tuple[SimpleExpression, ...]
#: A full DNF: a list of conjunctions (their disjunction).  The empty
#: conjunction ``()`` denotes TRUE.
DNF = List[Conjunction]

#: Markers used in the postfix token stream.
_AND = "AND"
_OR = "OR"
PostfixToken = Union[SimpleExpression, TrueExpression, str]


def eliminate_not(expression: BooleanExpression) -> BooleanExpression:
    """Return an equivalent expression containing no NOT nodes (Step 1)."""
    return _eliminate(expression, negate=False)


def _eliminate(expression: BooleanExpression, negate: bool) -> BooleanExpression:
    if isinstance(expression, NotExpression):
        return _eliminate(expression.child, not negate)
    if isinstance(expression, SimpleExpression):
        return expression.negate() if negate else expression
    if isinstance(expression, TrueExpression):
        # NOT TRUE is FALSE; we have no False node, so encode it as an
        # unsatisfiable comparison on a reserved attribute.  In practice
        # policies never negate TRUE, but the algebra must stay closed.
        if negate:
            return _false_expression()
        return expression
    if isinstance(expression, AndExpression):
        children = tuple(_eliminate(c, negate) for c in expression.children)
        return OrExpression(children) if negate else AndExpression(children)
    if isinstance(expression, OrExpression):
        children = tuple(_eliminate(c, negate) for c in expression.children)
        return AndExpression(children) if negate else OrExpression(children)
    raise ExpressionError(f"unknown expression node {expression!r}")


def _false_expression() -> BooleanExpression:
    """An always-false complex expression (x < 0 AND x > 0)."""
    from repro.expr.ast import Operator

    attr = "__false__"
    return AndExpression(
        (
            SimpleExpression(attr, Operator.LT, 0),
            SimpleExpression(attr, Operator.GT, 0),
        )
    )


def to_postfix(expression: BooleanExpression) -> List[PostfixToken]:
    """Convert a NOT-free expression into a postfix token sequence.

    The paper's Step 2 first rewrites the infix expression to postfix and
    then evaluates it; this mirrors that pipeline so the implementation
    follows the published algorithm (rather than recursing on the AST
    directly, which would be equivalent but less faithful).
    """
    output: List[PostfixToken] = []
    _postfix_walk(expression, output)
    return output


def _postfix_walk(expression: BooleanExpression, output: List[PostfixToken]) -> None:
    if isinstance(expression, (SimpleExpression, TrueExpression)):
        output.append(expression)
        return
    if isinstance(expression, AndExpression):
        marker = _AND
    elif isinstance(expression, OrExpression):
        marker = _OR
    elif isinstance(expression, NotExpression):
        raise ExpressionError("to_postfix requires a NOT-free expression; run eliminate_not first")
    else:
        raise ExpressionError(f"unknown expression node {expression!r}")
    _postfix_walk(expression.children[0], output)
    for child in expression.children[1:]:
        _postfix_walk(child, output)
        output.append(marker)


def to_dnf(expression: BooleanExpression) -> DNF:
    """Normalise *expression* to DNF (Steps 1 + 2 of Section 3.5).

    Returns a list of conjunctions.  Within each conjunction duplicate
    literals are removed and order is first-appearance, which keeps the
    pairwise NR/PR scan deterministic.

    >>> from repro.expr.parser import parse_condition
    >>> dnf = to_dnf(parse_condition("(a>20 AND a<30) OR NOT(a != 40)"))
    >>> [[s.to_condition_string() for s in conj] for conj in dnf]
    [['a > 20', 'a < 30'], ['a = 40']]
    """
    positive = eliminate_not(expression)
    postfix = to_postfix(positive)
    stack: List[DNF] = []
    for token in postfix:
        if token == _AND:
            right = stack.pop()
            left = stack.pop()
            # Distributive law: (A1|A2|...) AND (B1|B2|...) =
            # OR over all pairs (Ai AND Bj).
            product: DNF = []
            for a in left:
                for b in right:
                    product.append(_merge_conjunctions(a, b))
            stack.append(product)
        elif token == _OR:
            right = stack.pop()
            left = stack.pop()
            stack.append(left + right)
        elif isinstance(token, TrueExpression):
            stack.append([()])
        else:
            stack.append([(token,)])
    if len(stack) != 1:
        raise ExpressionError("postfix evaluation left a malformed stack")
    return _dedupe_conjunctions(stack[0])


def _merge_conjunctions(a: Conjunction, b: Conjunction) -> Conjunction:
    merged = list(a)
    seen = set(a)
    for literal in b:
        if literal not in seen:
            merged.append(literal)
            seen.add(literal)
    return tuple(merged)


def _dedupe_conjunctions(dnf: DNF) -> DNF:
    seen = set()
    result: DNF = []
    for conjunction in dnf:
        key = frozenset(conjunction)
        if key not in seen:
            seen.add(key)
            result.append(conjunction)
    # TRUE absorbs everything: if any conjunction is empty, the whole
    # disjunction is TRUE.
    if any(not conjunction for conjunction in result):
        return [()]
    return result
