"""Evaluate filter conditions against stream tuples or plain mappings."""

from __future__ import annotations

from typing import Any, Mapping, Union

from repro.errors import ExpressionTypeError, UnknownAttributeError
from repro.expr.ast import (
    AndExpression,
    BooleanExpression,
    NotExpression,
    OrExpression,
    SimpleExpression,
    TrueExpression,
)


def evaluate(expression: BooleanExpression, record: Union[Mapping[str, Any], Any]) -> bool:
    """Evaluate *expression* against *record*.

    *record* may be a :class:`~repro.streams.tuples.StreamTuple` or any
    mapping from attribute name to value.  Attribute lookup is
    case-insensitive.  Comparing a string attribute with a numeric literal
    (or vice versa) raises :class:`ExpressionTypeError` — the engine
    validates conditions against the schema before execution, so this
    signals a programming error rather than silently filtering out tuples.
    """
    # One-element holder for the lazily-built lowercased-key view of a
    # plain dict, so the case-insensitive fallback is built at most once
    # per evaluate() call instead of re-scanning every item for every
    # attribute reference in the expression.
    return _evaluate(expression, record, [])


def _evaluate(expression: BooleanExpression, record, lowered: list) -> bool:
    if isinstance(expression, TrueExpression):
        return True
    if isinstance(expression, SimpleExpression):
        value = _lookup(record, expression.attribute, lowered)
        return _compare(expression, value)
    if isinstance(expression, AndExpression):
        return all(_evaluate(child, record, lowered) for child in expression.children)
    if isinstance(expression, OrExpression):
        return any(_evaluate(child, record, lowered) for child in expression.children)
    if isinstance(expression, NotExpression):
        return not _evaluate(expression.child, record, lowered)
    raise ExpressionTypeError(f"cannot evaluate expression node {expression!r}")


def _lookup(record, attribute: str, lowered: list):
    getter = getattr(record, "get", None)
    if getter is not None and hasattr(record, "__contains__"):
        if attribute in record:
            return record[attribute]
        # Case-insensitive fallback for plain dicts: fold the keys once
        # and reuse the folded view for every later attribute reference.
        if isinstance(record, Mapping):
            if not lowered:
                folded = {}
                for key, value in record.items():
                    folded.setdefault(key.lower(), value)
                lowered.append(folded)
            if attribute in lowered[0]:
                return lowered[0][attribute]
        raise UnknownAttributeError(attribute)
    raise ExpressionTypeError(f"cannot look up attributes on {type(record).__name__}")


def _compare(expression: SimpleExpression, value) -> bool:
    literal = expression.value
    value_is_str = isinstance(value, str)
    literal_is_str = isinstance(literal, str)
    if value_is_str != literal_is_str:
        raise ExpressionTypeError(
            f"cannot compare attribute {expression.attribute!r} value {value!r} "
            f"with literal {literal!r}"
        )
    if isinstance(value, bool):
        raise ExpressionTypeError(
            f"attribute {expression.attribute!r} is boolean; filter conditions "
            f"compare numbers or strings"
        )
    return expression.op.apply(value, literal)
