"""Evaluate filter conditions against stream tuples or plain mappings."""

from __future__ import annotations

from typing import Any, Mapping, Union

from repro.errors import ExpressionTypeError, UnknownAttributeError
from repro.expr.ast import (
    AndExpression,
    BooleanExpression,
    NotExpression,
    OrExpression,
    SimpleExpression,
    TrueExpression,
)


def evaluate(expression: BooleanExpression, record: Union[Mapping[str, Any], Any]) -> bool:
    """Evaluate *expression* against *record*.

    *record* may be a :class:`~repro.streams.tuples.StreamTuple` or any
    mapping from attribute name to value.  Attribute lookup is
    case-insensitive.  Comparing a string attribute with a numeric literal
    (or vice versa) raises :class:`ExpressionTypeError` — the engine
    validates conditions against the schema before execution, so this
    signals a programming error rather than silently filtering out tuples.
    """
    if isinstance(expression, TrueExpression):
        return True
    if isinstance(expression, SimpleExpression):
        value = _lookup(record, expression.attribute)
        return _compare(expression, value)
    if isinstance(expression, AndExpression):
        return all(evaluate(child, record) for child in expression.children)
    if isinstance(expression, OrExpression):
        return any(evaluate(child, record) for child in expression.children)
    if isinstance(expression, NotExpression):
        return not evaluate(expression.child, record)
    raise ExpressionTypeError(f"cannot evaluate expression node {expression!r}")


def _lookup(record, attribute: str):
    getter = getattr(record, "get", None)
    if getter is not None and hasattr(record, "__contains__"):
        if attribute in record:
            return record[attribute]
        # Fall back to case-insensitive scan for plain dicts.
        if isinstance(record, Mapping):
            for key, value in record.items():
                if key.lower() == attribute:
                    return value
        raise UnknownAttributeError(attribute)
    raise ExpressionTypeError(f"cannot look up attributes on {type(record).__name__}")


def _compare(expression: SimpleExpression, value) -> bool:
    literal = expression.value
    value_is_str = isinstance(value, str)
    literal_is_str = isinstance(literal, str)
    if value_is_str != literal_is_str:
        raise ExpressionTypeError(
            f"cannot compare attribute {expression.attribute!r} value {value!r} "
            f"with literal {literal!r}"
        )
    if isinstance(value, bool):
        raise ExpressionTypeError(
            f"attribute {expression.attribute!r} is boolean; filter conditions "
            f"compare numbers or strings"
        )
    return expression.op.apply(value, literal)
