"""Recursive-descent parser for filter conditions.

Grammar (standard precedence NOT > AND > OR)::

    or_expr   := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := NOT not_expr | primary
    primary   := '(' or_expr ')' | TRUE | comparison
    comparison:= IDENT op literal | literal op IDENT

The reversed form ``literal op IDENT`` (e.g. ``5 < rainrate``) is accepted
and normalised into the canonical ``IDENT op literal`` orientation.
"""

from __future__ import annotations

from typing import List

from repro.errors import ExpressionSyntaxError
from repro.expr.ast import (
    AndExpression,
    BooleanExpression,
    NotExpression,
    Operator,
    OrExpression,
    SimpleExpression,
    TrueExpression,
)
from repro.expr.lexer import Token, TokenType, tokenize

#: Orientation flip used when the literal appears on the left of the operator.
_MIRROR = {
    Operator.LT: Operator.GT,
    Operator.GT: Operator.LT,
    Operator.LE: Operator.GE,
    Operator.GE: Operator.LE,
    Operator.EQ: Operator.EQ,
    Operator.NE: Operator.NE,
}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, token_type: TokenType) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise ExpressionSyntaxError(
                f"expected {token_type.value}, found {token.text or 'end of input'!r}",
                position=token.position,
            )
        return self._advance()

    def parse(self) -> BooleanExpression:
        expression = self._or_expr()
        end = self._peek()
        if end.type is not TokenType.END:
            raise ExpressionSyntaxError(
                f"unexpected trailing input {end.text!r}", position=end.position
            )
        return expression

    def _or_expr(self) -> BooleanExpression:
        parts = [self._and_expr()]
        while self._peek().type is TokenType.OR:
            self._advance()
            parts.append(self._and_expr())
        if len(parts) == 1:
            return parts[0]
        return OrExpression(tuple(parts))

    def _and_expr(self) -> BooleanExpression:
        parts = [self._not_expr()]
        while self._peek().type is TokenType.AND:
            self._advance()
            parts.append(self._not_expr())
        if len(parts) == 1:
            return parts[0]
        return AndExpression(tuple(parts))

    def _not_expr(self) -> BooleanExpression:
        if self._peek().type is TokenType.NOT:
            self._advance()
            return NotExpression(self._not_expr())
        return self._primary()

    def _primary(self) -> BooleanExpression:
        token = self._peek()
        if token.type is TokenType.LPAREN:
            self._advance()
            inner = self._or_expr()
            self._expect(TokenType.RPAREN)
            return inner
        if token.type is TokenType.TRUE:
            self._advance()
            return TrueExpression()
        if token.type is TokenType.IDENT:
            return self._comparison_from_ident()
        if token.type in (TokenType.NUMBER, TokenType.STRING):
            return self._comparison_from_literal()
        raise ExpressionSyntaxError(
            f"expected a comparison, found {token.text or 'end of input'!r}",
            position=token.position,
        )

    def _comparison_from_ident(self) -> SimpleExpression:
        ident = self._advance()
        op_token = self._expect(TokenType.OP)
        op = Operator.parse(op_token.text)
        literal = self._peek()
        if literal.type not in (TokenType.NUMBER, TokenType.STRING):
            raise ExpressionSyntaxError(
                f"expected a literal after {op_token.text!r}, found {literal.text!r}",
                position=literal.position,
            )
        self._advance()
        return SimpleExpression(ident.value, op, literal.value)

    def _comparison_from_literal(self) -> SimpleExpression:
        literal = self._advance()
        op_token = self._expect(TokenType.OP)
        op = Operator.parse(op_token.text)
        ident = self._expect(TokenType.IDENT)
        return SimpleExpression(ident.value, _MIRROR[op], literal.value)


def parse_condition(text: str) -> BooleanExpression:
    """Parse a condition string into a :class:`BooleanExpression`.

    >>> parse_condition("rainrate > 5").to_condition_string()
    'rainrate > 5'
    """
    if not text or not text.strip():
        raise ExpressionSyntaxError("empty condition")
    return _Parser(list(tokenize(text))).parse()
