"""Simplification of merged filter conditions.

Section 3.1: merging two filters yields ``C3 = (C1) AND (C2)``, and
"there are cases that C3 can be further simplified.  For example, if
C1 = x > v1 and C2 = x > v2, C3 can be written as x > v2 iff v2 >= v1."

This module implements that simplification for conjunctions of simple
expressions: redundant literals (those implied by another literal on the
same attribute) are dropped.  Simplification is *sound*: the returned
expression is logically equivalent to the input conjunction.  It is not a
full minimiser — matching the paper, only pairwise subsumption between
simple expressions is applied, which already collapses the common
policy-tightens-user patterns.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.expr.ast import (
    AndExpression,
    BooleanExpression,
    SimpleExpression,
    TrueExpression,
)
from repro.expr.normalize import to_dnf
from repro.expr.satisfiability import is_subset


def conjoin(first: BooleanExpression, second: BooleanExpression) -> BooleanExpression:
    """``(C1) AND (C2)`` with TRUE treated as the identity element."""
    if isinstance(first, TrueExpression):
        return second
    if isinstance(second, TrueExpression):
        return first
    return AndExpression((first, second))


def simplify_conjunction(literals: Sequence[SimpleExpression]) -> List[SimpleExpression]:
    """Drop literals implied by another literal on the same attribute.

    >>> from repro.expr.parser import parse_condition
    >>> a = parse_condition("x > 5")
    >>> b = parse_condition("x > 8")
    >>> [s.to_condition_string() for s in simplify_conjunction([a, b])]
    ['x > 8']
    """
    unique: List[SimpleExpression] = []
    seen = set()
    for literal in literals:
        if literal not in seen:
            unique.append(literal)
            seen.add(literal)
    kept: List[SimpleExpression] = []
    for i, literal in enumerate(unique):
        redundant = False
        for j, other in enumerate(unique):
            if i == j or literal.attribute != other.attribute:
                continue
            # `other` implies `literal` → literal is redundant.  Break the
            # tie between logically-equal literals by index so exactly one
            # survives.
            if is_subset(other, literal) and not (is_subset(literal, other) and i < j):
                redundant = True
                break
        if not redundant:
            kept.append(literal)
    return kept


def simplify_merged_condition(
    first: BooleanExpression, second: BooleanExpression
) -> BooleanExpression:
    """Merge two filter conditions and simplify the result.

    The conditions are conjoined, normalised to DNF, each conjunction is
    simplified via :func:`simplify_conjunction`, and the expression is
    rebuilt.  When either input is TRUE the other is returned unchanged.
    Purely for cosmetics/efficiency of the generated StreamSQL — the
    NR/PR analysis runs on the un-simplified form.
    """
    if isinstance(first, TrueExpression):
        return second
    if isinstance(second, TrueExpression):
        return first
    merged = conjoin(first, second)
    dnf = to_dnf(merged)
    rebuilt = _rebuild_from_dnf(dnf)
    return rebuilt if rebuilt is not None else merged


def _rebuild_from_dnf(dnf) -> Optional[BooleanExpression]:
    from repro.expr.ast import OrExpression

    disjuncts: List[BooleanExpression] = []
    for conjunction in dnf:
        if not conjunction:
            return TrueExpression()
        simplified = simplify_conjunction(conjunction)
        if len(simplified) == 1:
            disjuncts.append(simplified[0])
        else:
            disjuncts.append(AndExpression(tuple(simplified)))
    if not disjuncts:
        return None
    if len(disjuncts) == 1:
        return disjuncts[0]
    return OrExpression(tuple(disjuncts))
