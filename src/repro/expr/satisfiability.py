"""Pairwise simple-expression satisfiability (``checkTwoSimpleExpression``).

Section 3.5 of the paper resolves NR/PR warnings for filter operators by
pairwise comparison of simple expressions inside each DNF conjunction.
Two questions are answered for a pair on the same attribute:

1. *Can any value satisfy both?*  If not, the pair is contradictory and
   the conjunction can never be true (→ NR).
2. *Does the policy-side expression withhold values the user-side
   expression admits?*  If the user's value set is not a subset of the
   policy's, some tuples matching the user query will be filtered out by
   policy (→ PR).

The value domain is the reals for numeric comparisons (the six operators
``< > <= >= = !=``) and an unbounded string universe for ``=`` / ``!=``
on strings.  All 36 numeric operator pairs are covered by the set algebra
below (each simple expression denotes a point, a punctured line, or a
half-line; emptiness and subset tests are decided exactly).
"""

from __future__ import annotations

import enum
from typing import Iterable, List, Sequence, Tuple

from repro.expr.ast import BooleanExpression, Operator, SimpleExpression


class PairVerdict(enum.IntEnum):
    """Outcome of a pairwise (or aggregated) NR/PR check.

    Ordered so that ``max`` combines severities: OK < PR < NR.
    """

    OK = 0
    PR = 1
    NR = 2


# ---------------------------------------------------------------------------
# Set algebra over a single attribute's value domain
# ---------------------------------------------------------------------------

def _is_string(expression: SimpleExpression) -> bool:
    return isinstance(expression.value, str)


def satisfies(expression: SimpleExpression, value) -> bool:
    """True when *value* is in the set denoted by *expression*."""
    return expression.op.apply(value, expression.value)


def intersection_empty(first: SimpleExpression, second: SimpleExpression) -> bool:
    """True when no single value satisfies both expressions.

    The two expressions must reference the same attribute; a mixed
    string/number pair is trivially empty (a value cannot be both).
    """
    if first.attribute != second.attribute:
        return False
    if _is_string(first) != _is_string(second):
        return True
    if _is_string(first):
        return _string_intersection_empty(first, second)
    return _numeric_intersection_empty(first, second)


def is_subset(inner: SimpleExpression, outer: SimpleExpression) -> bool:
    """True when every value satisfying *inner* also satisfies *outer*."""
    if inner.attribute != outer.attribute:
        return False
    if _is_string(inner) != _is_string(outer):
        # A string constraint can never be contained in a numeric one
        # (both denote non-empty sets in disjoint universes) — except the
        # degenerate equality case which cannot arise with typed schemas.
        return False
    if _is_string(inner):
        return _string_is_subset(inner, outer)
    return _numeric_is_subset(inner, outer)


def _string_intersection_empty(a: SimpleExpression, b: SimpleExpression) -> bool:
    if a.op is Operator.EQ and b.op is Operator.EQ:
        return a.value != b.value
    if a.op is Operator.EQ and b.op is Operator.NE:
        return a.value == b.value
    if a.op is Operator.NE and b.op is Operator.EQ:
        return a.value == b.value
    # NE & NE over an unbounded string universe always intersect.
    return False


def _string_is_subset(inner: SimpleExpression, outer: SimpleExpression) -> bool:
    if inner.op is Operator.EQ:
        if outer.op is Operator.EQ:
            return inner.value == outer.value
        return inner.value != outer.value  # {v} ⊆ ¬{w} iff v != w
    # inner is NE — an infinite set.
    if outer.op is Operator.EQ:
        return False
    return inner.value == outer.value  # ¬{v} ⊆ ¬{w} iff v == w


# Numeric case analysis.  Classify each expression as a point (EQ),
# a hole (NE, i.e. the line minus a point) or a ray.

_LOWER_RAYS = (Operator.GT, Operator.GE)   # (v, ∞) / [v, ∞)
_UPPER_RAYS = (Operator.LT, Operator.LE)   # (−∞, v) / (−∞, v]


def _numeric_intersection_empty(a: SimpleExpression, b: SimpleExpression) -> bool:
    if a.op is Operator.EQ:
        return not satisfies(b, a.value)
    if b.op is Operator.EQ:
        return not satisfies(a, b.value)
    # Neither is a point.  Holes never empty an infinite set; only two
    # opposite rays can fail to intersect.
    a_lower = a.op in _LOWER_RAYS
    a_upper = a.op in _UPPER_RAYS
    b_lower = b.op in _LOWER_RAYS
    b_upper = b.op in _UPPER_RAYS
    if a_lower and b_upper:
        return _rays_disjoint(a, b)
    if b_lower and a_upper:
        return _rays_disjoint(b, a)
    return False


def _rays_disjoint(lower: SimpleExpression, upper: SimpleExpression) -> bool:
    """Disjointness of a lower ray (>, >=) and an upper ray (<, <=)."""
    both_inclusive = lower.op is Operator.GE and upper.op is Operator.LE
    if both_inclusive:
        return lower.value > upper.value
    return lower.value >= upper.value


def _numeric_is_subset(inner: SimpleExpression, outer: SimpleExpression) -> bool:
    if inner.op is Operator.EQ:
        return satisfies(outer, inner.value)
    if outer.op is Operator.EQ:
        return False  # any non-point numeric set is infinite
    if outer.op is Operator.NE:
        if inner.op is Operator.NE:
            return inner.value == outer.value
        # ray ⊆ hole iff the hole's point lies outside the ray
        return not satisfies(inner, outer.value)
    if inner.op is Operator.NE:
        return False  # a hole spans the whole line; no ray contains it
    # ray ⊆ ray: must point the same direction
    inner_lower = inner.op in _LOWER_RAYS
    outer_lower = outer.op in _LOWER_RAYS
    if inner_lower != outer_lower:
        return False
    if inner_lower:
        # [/( v1, ∞) ⊆ [/( v2, ∞)
        if outer.op is Operator.GT and inner.op is Operator.GE:
            return inner.value > outer.value
        return inner.value >= outer.value
    # upper rays
    if outer.op is Operator.LT and inner.op is Operator.LE:
        return inner.value < outer.value
    return inner.value <= outer.value


# ---------------------------------------------------------------------------
# checkTwoSimpleExpression and the Step-3 aggregation
# ---------------------------------------------------------------------------

def conjunction_unsatisfiable(literals: Sequence[SimpleExpression]) -> bool:
    """True when the conjunction of *literals* admits no value assignment.

    Decided by pairwise :func:`intersection_empty` on same-attribute
    literals — exact for conjunctions of the six comparison operators
    (each attribute's constraint set is an intersection of points, holes
    and rays, and such an intersection is empty iff some pair is).
    """
    n = len(literals)
    for i in range(n):
        for j in range(i + 1, n):
            if intersection_empty(literals[i], literals[j]):
                return True
    return False


def _conjunction_implies_literal(
    conjunction: Sequence[SimpleExpression], literal: SimpleExpression
) -> bool:
    """True when some literal of *conjunction* alone implies *literal*.

    Sound but incomplete: two literals on the same attribute may jointly
    imply a third even when neither does alone.  Good enough for the
    subsumption feed, which only needs "provably implies".
    """
    return any(is_subset(candidate, literal) for candidate in conjunction)


def implies(first: "BooleanExpression", second: "BooleanExpression") -> bool:
    """True when *first* **provably** implies *second* (first ⇒ second).

    Both expressions are normalised to DNF; ``first ⇒ second`` holds when
    every satisfiable conjunction of *first* implies some conjunction of
    *second*, each literal of which must be implied by a same-attribute
    literal of the first-side conjunction (:func:`is_subset`).

    The check is **sound** (a True answer is always correct — the
    property the shared-plan subsumption feed depends on, pinned by a
    hypothesis test) but **incomplete**: it may answer False for
    implications that need cross-literal or cross-conjunction reasoning.
    """
    from repro.expr.normalize import to_dnf

    first_dnf = to_dnf(first)
    second_dnf = to_dnf(second)
    for first_conj in first_dnf:
        if not first_conj:
            # TRUE conjunction on the left: second must contain TRUE too.
            if any(not conj for conj in second_dnf):
                continue
            return False
        if conjunction_unsatisfiable(first_conj):
            continue  # an unsatisfiable disjunct implies anything
        if not any(
            all(
                _conjunction_implies_literal(first_conj, literal)
                for literal in second_conj
            )
            for second_conj in second_dnf
        ):
            return False
    return True


def check_two_simple_expressions(
    policy_side: SimpleExpression, user_side: SimpleExpression
) -> PairVerdict:
    """The paper's ``checkTwoSimpleExpression`` for one (policy, user) pair.

    Returns :data:`PairVerdict.NR` when the pair is contradictory (no value
    satisfies both), :data:`PairVerdict.PR` when the policy constraint
    withholds part of what the user constraint admits, and
    :data:`PairVerdict.OK` otherwise.  Expressions on different attributes
    never interact (OK) — "checking is only necessary when S1.x = S2.x".
    """
    if policy_side.attribute != user_side.attribute:
        return PairVerdict.OK
    if intersection_empty(policy_side, user_side):
        return PairVerdict.NR
    if is_subset(user_side, policy_side):
        return PairVerdict.OK
    return PairVerdict.PR


def conjunction_verdict(
    literals: Sequence[Tuple[SimpleExpression, str]]
) -> PairVerdict:
    """Verdict for one DNF conjunction of origin-tagged literals.

    *literals* is a sequence of ``(simple_expression, origin)`` pairs with
    origin ``"policy"`` or ``"user"``.  Any contradictory pair — whatever
    the origins — makes the conjunction unsatisfiable (NR).  A PR verdict
    only arises from cross-origin pairs: the user's own literals
    constraining each other is not a policy conflict.
    """
    n = len(literals)
    worst = PairVerdict.OK
    for i in range(n):
        expr_i, origin_i = literals[i]
        for j in range(i + 1, n):
            expr_j, origin_j = literals[j]
            if expr_i.attribute != expr_j.attribute:
                continue
            if intersection_empty(expr_i, expr_j):
                return PairVerdict.NR
            if origin_i == origin_j:
                continue
            if origin_i == "policy":
                verdict = check_two_simple_expressions(expr_i, expr_j)
            else:
                verdict = check_two_simple_expressions(expr_j, expr_i)
            worst = max(worst, verdict)
    return worst


def dnf_verdict(conjunction_verdicts: Iterable[PairVerdict]) -> PairVerdict:
    """Aggregate per-conjunction verdicts per Step 3 of Section 3.5.

    "If all conjunctive expressions are marked with PR or NR, alert PR or
    NR, respectively": every conjunction NR → NR (no disjunct can produce
    output); otherwise every conjunction marked (NR or PR) → PR; otherwise
    no alert.
    """
    verdicts: List[PairVerdict] = list(conjunction_verdicts)
    if not verdicts:
        return PairVerdict.NR  # an empty disjunction is FALSE
    if all(v is PairVerdict.NR for v in verdicts):
        return PairVerdict.NR
    if all(v in (PairVerdict.NR, PairVerdict.PR) for v in verdicts):
        return PairVerdict.PR
    return PairVerdict.OK
