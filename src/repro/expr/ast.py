"""AST for filter conditions (the paper's simple/complex expressions).

Section 3.5 defines:

- a *simple expression* ``x op v`` where ``x`` is an attribute name,
  ``op ∈ {<, >, >=, <=, =, !=}``, and ``v`` is a number (or a string, only
  when op is ``=`` or ``!=``);
- a *complex expression*: simple expressions connected by NOT, AND, OR.

The AST nodes here are immutable and hashable so they can be deduplicated
inside conjunctions and used as dict keys by the satisfiability checker.
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Tuple, Union

from repro.errors import ExpressionError, ExpressionTypeError

Value = Union[int, float, str]


class Operator(enum.Enum):
    """Comparison operators of simple expressions."""

    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "="
    NE = "!="

    @property
    def negated(self) -> "Operator":
        """The operator produced by eliminating NOT (paper's Table 2)."""
        return _NEGATIONS[self]

    @property
    def is_equality(self) -> bool:
        return self in (Operator.EQ, Operator.NE)

    def apply(self, left, right) -> bool:
        """Evaluate ``left op right``."""
        if self is Operator.LT:
            return left < right
        if self is Operator.GT:
            return left > right
        if self is Operator.LE:
            return left <= right
        if self is Operator.GE:
            return left >= right
        if self is Operator.EQ:
            return left == right
        return left != right

    @classmethod
    def parse(cls, text: str) -> "Operator":
        aliases = {
            "<": cls.LT, ">": cls.GT, "<=": cls.LE, ">=": cls.GE,
            "=": cls.EQ, "==": cls.EQ, "!=": cls.NE, "<>": cls.NE,
        }
        if text not in aliases:
            raise ExpressionError(f"unknown comparison operator {text!r}")
        return aliases[text]


#: Table 2 of the paper: rules to convert NOT(x op v) into x op' v.
_NEGATIONS = {
    Operator.GT: Operator.LE,
    Operator.LT: Operator.GE,
    Operator.GE: Operator.LT,
    Operator.LE: Operator.GT,
    Operator.EQ: Operator.NE,
    Operator.NE: Operator.EQ,
}


class BooleanExpression:
    """Base class for all condition AST nodes."""

    def attributes(self) -> FrozenSet[str]:
        """The set of attribute names (lower-cased) referenced."""
        raise NotImplementedError

    def to_condition_string(self) -> str:
        """Render this expression back to StreamSQL condition syntax."""
        raise NotImplementedError

    def __and__(self, other: "BooleanExpression") -> "BooleanExpression":
        return AndExpression((self, other))

    def __or__(self, other: "BooleanExpression") -> "BooleanExpression":
        return OrExpression((self, other))

    def __invert__(self) -> "BooleanExpression":
        return NotExpression(self)


class TrueExpression(BooleanExpression):
    """The always-true condition (a filter that passes everything).

    Used as the identity element when merging filter conditions, so a
    graph with no policy filter merges cleanly with a user filter.
    """

    def attributes(self) -> FrozenSet[str]:
        return frozenset()

    def to_condition_string(self) -> str:
        return "TRUE"

    def __eq__(self, other) -> bool:
        return isinstance(other, TrueExpression)

    def __hash__(self) -> int:
        return hash("TRUE")

    def __repr__(self) -> str:
        return "TrueExpression()"


class SimpleExpression(BooleanExpression):
    """A leaf comparison ``attribute op value``."""

    __slots__ = ("attribute", "op", "value")

    def __init__(self, attribute: str, op: Operator, value: Value):
        if not attribute:
            raise ExpressionError("simple expression needs an attribute name")
        if isinstance(value, bool) or not isinstance(value, (int, float, str)):
            raise ExpressionTypeError(
                f"simple-expression value must be a number or string, got {value!r}"
            )
        if isinstance(value, str) and not op.is_equality:
            raise ExpressionTypeError(
                f"string value {value!r} only allowed with = or !=, not {op.value}"
            )
        self.attribute = attribute.lower()
        self.op = op
        self.value = value

    def negate(self) -> "SimpleExpression":
        """NOT-elimination at the leaf (Table 2)."""
        return SimpleExpression(self.attribute, self.op.negated, self.value)

    def attributes(self) -> FrozenSet[str]:
        return frozenset((self.attribute,))

    def to_condition_string(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"{self.attribute} {self.op.value} '{escaped}'"
        return f"{self.attribute} {self.op.value} {_format_number(self.value)}"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, SimpleExpression)
            and self.attribute == other.attribute
            and self.op == other.op
            and self.value == other.value
            and isinstance(self.value, str) == isinstance(other.value, str)
        )

    def __hash__(self) -> int:
        return hash((self.attribute, self.op, self.value, isinstance(self.value, str)))

    def __repr__(self) -> str:
        return f"SimpleExpression({self.attribute!r}, {self.op.value!r}, {self.value!r})"


def _flatten(kind, children):
    flat = []
    for child in children:
        if isinstance(child, kind):
            flat.extend(child.children)
        else:
            flat.append(child)
    return tuple(flat)


class AndExpression(BooleanExpression):
    """Conjunction of two or more sub-expressions (flattened)."""

    __slots__ = ("children",)

    def __init__(self, children: Tuple[BooleanExpression, ...]):
        flat = _flatten(AndExpression, children)
        if len(flat) < 2:
            raise ExpressionError("AND needs at least two operands")
        self.children = flat

    def attributes(self) -> FrozenSet[str]:
        return frozenset().union(*(c.attributes() for c in self.children))

    def to_condition_string(self) -> str:
        return " AND ".join(_wrap(c, for_and=True) for c in self.children)

    def __eq__(self, other) -> bool:
        return isinstance(other, AndExpression) and self.children == other.children

    def __hash__(self) -> int:
        return hash(("AND", self.children))

    def __repr__(self) -> str:
        return f"AndExpression({self.children!r})"


class OrExpression(BooleanExpression):
    """Disjunction of two or more sub-expressions (flattened)."""

    __slots__ = ("children",)

    def __init__(self, children: Tuple[BooleanExpression, ...]):
        flat = _flatten(OrExpression, children)
        if len(flat) < 2:
            raise ExpressionError("OR needs at least two operands")
        self.children = flat

    def attributes(self) -> FrozenSet[str]:
        return frozenset().union(*(c.attributes() for c in self.children))

    def to_condition_string(self) -> str:
        return " OR ".join(_wrap(c, for_and=False) for c in self.children)

    def __eq__(self, other) -> bool:
        return isinstance(other, OrExpression) and self.children == other.children

    def __hash__(self) -> int:
        return hash(("OR", self.children))

    def __repr__(self) -> str:
        return f"OrExpression({self.children!r})"


class NotExpression(BooleanExpression):
    """Logical negation of a sub-expression."""

    __slots__ = ("child",)

    def __init__(self, child: BooleanExpression):
        self.child = child

    def attributes(self) -> FrozenSet[str]:
        return self.child.attributes()

    def to_condition_string(self) -> str:
        return f"NOT ({self.child.to_condition_string()})"

    def __eq__(self, other) -> bool:
        return isinstance(other, NotExpression) and self.child == other.child

    def __hash__(self) -> int:
        return hash(("NOT", self.child))

    def __repr__(self) -> str:
        return f"NotExpression({self.child!r})"


def _wrap(expression: BooleanExpression, for_and: bool) -> str:
    """Parenthesise OR-children inside AND renderings to keep precedence."""
    text = expression.to_condition_string()
    if for_and and isinstance(expression, OrExpression):
        return f"({text})"
    return text


def _format_number(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)
