"""Boolean condition toolkit for filter operators and NR/PR analysis.

The paper's filter conditions are *complex expressions*: simple expressions
``x op v`` (op in <, >, <=, >=, =, !=; v a number, or a string for =/!=)
connected with NOT, AND, OR.  This package provides:

- an AST (:mod:`repro.expr.ast`) and a parser (:mod:`repro.expr.parser`),
- NOT-elimination via the paper's Table 2 and De Morgan's laws, postfix
  conversion and DNF normalisation (:mod:`repro.expr.normalize`) — the
  Steps 1 and 2 of Section 3.5,
- pairwise simple-expression satisfiability — the paper's
  ``checkTwoSimpleExpression`` over all 36 operator pairs
  (:mod:`repro.expr.satisfiability`),
- filter-merge simplification (:mod:`repro.expr.simplify`),
- evaluation of conditions against stream tuples (:mod:`repro.expr.evaluate`),
- schema-specialised compilation of conditions to plain Python closures
  for the engine's hot path (:mod:`repro.expr.compile`).
"""

from repro.expr.ast import (
    AndExpression,
    BooleanExpression,
    NotExpression,
    Operator,
    OrExpression,
    SimpleExpression,
    TrueExpression,
)
from repro.expr.parser import parse_condition
from repro.expr.normalize import eliminate_not, to_dnf, to_postfix
from repro.expr.satisfiability import (
    PairVerdict,
    check_two_simple_expressions,
    conjunction_verdict,
    dnf_verdict,
)
from repro.expr.simplify import simplify_conjunction
from repro.expr.evaluate import evaluate
from repro.expr.compile import (
    compile_batch,
    compile_predicate,
    compile_row_predicate,
)

__all__ = [
    "AndExpression",
    "BooleanExpression",
    "NotExpression",
    "Operator",
    "OrExpression",
    "SimpleExpression",
    "TrueExpression",
    "parse_condition",
    "eliminate_not",
    "to_dnf",
    "to_postfix",
    "PairVerdict",
    "check_two_simple_expressions",
    "conjunction_verdict",
    "dnf_verdict",
    "simplify_conjunction",
    "evaluate",
    "compile_batch",
    "compile_predicate",
    "compile_row_predicate",
]
