"""Match and comparison functions usable in targets and conditions.

A pragmatic subset of the XACML function library: equality for every
datatype, ordered comparisons for numbers, and a regular-expression match
for strings.  Functions are registered by their (shortened) ids so
policies serialise with recognisable names.
"""

from __future__ import annotations

import re
from typing import Callable, Dict

from repro.errors import XacmlError
from repro.xacml.attributes import AttributeValue

#: function-id → implementation taking (request_value, policy_value).
FUNCTIONS: Dict[str, Callable[[object, object], bool]] = {}


def register_function(function_id: str, implementation: Callable[[object, object], bool]) -> None:
    FUNCTIONS[function_id] = implementation


def get_function(function_id: str) -> Callable[[object, object], bool]:
    try:
        return FUNCTIONS[function_id]
    except KeyError:
        raise XacmlError(f"unknown XACML function {function_id!r}") from None


def apply_function(function_id: str, request_value: AttributeValue, policy_value: AttributeValue) -> bool:
    """Apply *function_id* to a request value and a policy value."""
    implementation = get_function(function_id)
    try:
        return bool(implementation(request_value.value, policy_value.value))
    except TypeError:
        # Type mismatch (e.g. comparing a string with a number) means the
        # match simply fails — XACML treats this as Indeterminate at the
        # match level, which our PDP folds into "no match".
        return False


STRING_EQUAL = "string-equal"
STRING_REGEXP_MATCH = "string-regexp-match"
INTEGER_EQUAL = "integer-equal"
DOUBLE_EQUAL = "double-equal"
BOOLEAN_EQUAL = "boolean-equal"
INTEGER_GREATER_THAN = "integer-greater-than"
INTEGER_GREATER_THAN_OR_EQUAL = "integer-greater-than-or-equal"
INTEGER_LESS_THAN = "integer-less-than"
INTEGER_LESS_THAN_OR_EQUAL = "integer-less-than-or-equal"
DOUBLE_GREATER_THAN = "double-greater-than"
DOUBLE_GREATER_THAN_OR_EQUAL = "double-greater-than-or-equal"
DOUBLE_LESS_THAN = "double-less-than"
DOUBLE_LESS_THAN_OR_EQUAL = "double-less-than-or-equal"


def _regexp_match(request_value, policy_value) -> bool:
    return re.fullmatch(str(policy_value), str(request_value)) is not None


for _fid, _impl in {
    STRING_EQUAL: lambda a, b: str(a) == str(b),
    STRING_REGEXP_MATCH: _regexp_match,
    INTEGER_EQUAL: lambda a, b: int(a) == int(b),
    DOUBLE_EQUAL: lambda a, b: float(a) == float(b),
    BOOLEAN_EQUAL: lambda a, b: bool(a) == bool(b),
    INTEGER_GREATER_THAN: lambda a, b: a > b,
    INTEGER_GREATER_THAN_OR_EQUAL: lambda a, b: a >= b,
    INTEGER_LESS_THAN: lambda a, b: a < b,
    INTEGER_LESS_THAN_OR_EQUAL: lambda a, b: a <= b,
    DOUBLE_GREATER_THAN: lambda a, b: a > b,
    DOUBLE_GREATER_THAN_OR_EQUAL: lambda a, b: a >= b,
    DOUBLE_LESS_THAN: lambda a, b: a < b,
    DOUBLE_LESS_THAN_OR_EQUAL: lambda a, b: a <= b,
}.items():
    register_function(_fid, _impl)
