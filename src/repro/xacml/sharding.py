"""Sharded policy store and PDP with coherent cross-shard invalidation.

One XACML+ instance evaluates requests as fast as the hardware allows
(indexed candidate selection, decision caching); scaling past one
instance means partitioning the policy population so independent
instances each own a slice of the decision work.  This module provides
the partitioned analogues of :class:`~repro.xacml.store.PolicyStore` and
:class:`~repro.xacml.pdp.PolicyDecisionPoint` — the unsharded pair
survives unchanged as the reference mode for differential testing
(``PolicyDecisionPoint.reference()`` over a single store; the sharding
equivalence harness in ``tests/properties`` pins the two bit-identical).

**Partitioning.**  Placement is pluggable (:class:`PartitionStrategy`).
The default :class:`ResourceKeyPartitioner` hash-partitions policies by
the literal resource-id values their target can match — the *candidate
keys* the PR 1 target index extracts (``string-equal`` on the standard
resource-id attribute).  A policy whose keyed category is a wildcard or
carries any non-indexable alternative (regex matches, non-standard
attributes) over-approximates to *every* shard, exactly mirroring the
index's wildcard-bucket fallback; a multi-literal target is placed on
each literal's shard.  :class:`SubjectKeyPartitioner` applies the same
rule to subject-id keys — the right axis for subject-heavy populations
(the Table-3/zipf workloads), whose resource targets are often wildcards
and would otherwise replicate everywhere and degenerate every request to
a scatter.  :class:`CompositeKeyPartitioner` picks per policy: resource
keys when the resource category is literal, else subject keys, else full
replication — and routes requests over exactly the dimensions the
current population actually uses.  The hash is :func:`zlib.crc32` —
stable across processes, unlike ``hash(str)``, so placement (and
therefore benchmark shard balance) is reproducible, and a worker process
agrees with its parent about who owns what.

**Routing.**  The placement rule yields the routing invariant: every
policy whose target could match a request lives on every shard the
strategy routes that request to.  A request routing to a single shard —
the overwhelmingly common shape — is answered entirely by that shard's
PDP (its index, its decision cache).  A request with no value in any
partitioned dimension can only match fully-replicated policies, so any
one shard (shard 0) answers it.  Requests spanning shards take the
*scatter* path: candidates are gathered from each relevant shard,
de-duplicated (wildcard replicas appear once per shard) and re-ordered
by global load sequence, then combined through the same
:func:`repro.xacml.pdp.decide` step as everything else.

**Scatter caching and single-flight.**  The scatter path keeps its own
:class:`~repro.xacml.pdp.DecisionCache` — an LRU keyed by the full
request fingerprint, bucketed by the candidate policy ids that produced
each decision and invalidated through the :class:`InvalidationBus`
(``removed``/``updated`` evict the policy's bucket — updates also probe
for newly-matching entries — and ``loaded`` flushes wholesale, exactly
the per-store discipline).  Concurrent identical scatter requests are
de-duplicated *single-flight*: one thread gathers and merges, the rest
wait on the published result.  Coherence under concurrency comes from a
version stamp: every bus event bumps a version, a merge records the
version it started under, and a merge that an event overlapped is
returned to its own (concurrent) caller but never cached and never
handed to waiters — a waiter that joined after the mutation retries
against the post-mutation store, so a completed mutation is never
masked by an in-flight merge.

**Why single-shard routing is exact.**  Shard stores are loaded in
global event order with their global sequence numbers pinned
(:meth:`PolicyStore.load`'s ``sequence`` parameter), so a shard's
candidate list is the global candidate list restricted to policies that
can plausibly match the request — and the built-in combining algorithms
ignore NotApplicable policies, the same argument that makes the PR 1
target index sound.  Pinning matters on update: a new policy version
whose keys move it onto a different shard arrives there as a
shard-local *load* but keeps its original global position, matching the
single store's update-in-place semantics.

**Invalidation.**  Shard-local coherence is free: each shard is a full
:class:`PolicyStore`, so its index and its PDP's per-policy decision
cache react to the shard-local loaded/updated/removed events exactly as
in the single-instance engine (a migrating update decomposes into
``removed`` on shards the policy left, ``updated`` where it stayed and
``loaded`` — a conservative full flush — where it arrived).  Cross-shard
coherence flows through the :class:`InvalidationBus`: every logical
store event is published exactly once (never once per replica) to
subscribers that span shards — query-graph revocation, audit trails,
the proxy handle cache and the scatter decision cache.  The bus exposes
the same ``add_listener`` contract as ``PolicyStore``, so every
existing store observer works unchanged against a sharded deployment.
Shard-*level* observers (:meth:`ShardedPolicyStore.add_shard_listener`)
additionally see each per-replica operation with its pinned sequence —
the feed a :class:`ProcessShardPool` mirrors into worker processes.

**Worker processes.**  :class:`ProcessShardPool` runs each shard's
indexed+cached PDP on a real ``multiprocessing`` worker: one process
per shard, a command/response queue pair per worker, routed requests
shipped in batches and evaluated by the worker's own
:class:`PolicyDecisionPoint` over a mirrored shard store.  Mutations
fan out synchronously through the shard-listener feed (the store
mutation does not return until every affected worker has applied and
acknowledged its shard-local operation), so worker caches invalidate
coherently; scatter requests are merged parent-side through the same
cached single-flight path as the in-process engine.  The pool exists so
``benchmarks/bench_pdp_sharding.py`` can *measure* multi-core scale-out
wall-clock instead of assuming it via the makespan model, and so a
concurrent serving front-end (:mod:`repro.serving`) can fan request
work across cores.

**Multi-driver protocol.**  The pool is safe to drive from many
threads at once.  Every command a driver sends carries a *tag* —
``(driver_id, sequence)``, where each driver thread is lazily assigned
its own id — and every worker response echoes the tag of the command
that produced it.  A single dispatcher thread per shard drains that
shard's response queue and completes the matching
:class:`_PendingCall`, so two drivers' interleaved batches can never
be cross-matched: a response resolves exactly the call that registered
its tag, and a response whose tag is no longer registered (its caller
timed out and gave up) is dropped on the floor.  Each worker remains
internally serial, like a real one-process-per-shard deployment;
concurrency comes from interleaving *batches* of different drivers in
the worker's command queue.

**Supervision and self-healing.**  A worker failure is *contained*,
never pool-fatal (PR 6 poisoned the whole pool on any worker death;
a serving stack cannot afford that).  The shard's dispatcher detects
the dead process within a poll interval, fails only *that shard's*
in-flight commands with a retryable
:class:`~repro.errors.ShardUnavailableError`, and hands the shard to
the supervisor, which — after an exponential restart backoff — rebuilds
the worker from authoritative parent state: a consistent snapshot of
the shard's :class:`PolicyStore` replica (policies *with their pinned
global load sequences*) taken under the store's mutation lock, plus a
catch-up replay of every shard-level operation that arrived while the
worker was down or restarting.  Mutations therefore never block on a
dead shard (they queue for catch-up and return), and the rebuilt
worker is bit-identical to a worker that observed every event live —
the chaos differential suite pins decisions *through* crashes.

Restarts are budgeted: at most ``max_restarts`` within
``restart_window`` seconds; a shard that exhausts the budget is
declared **degraded** and stops being respawned (``revive()`` re-arms
it).  While a shard is down, restarting, or degraded, its traffic
follows the ``on_unavailable`` policy: ``"fallback"`` (the default)
answers from a parent-side, cache-less indexed PDP over the same
authoritative shard store — decision-identical, serialised behind the
store's mutation lock — while ``"error"`` surfaces the typed
:class:`~repro.errors.ShardUnavailableError` for clients to retry
(``retryable=False`` once degraded).  Healthy shards never notice:
their workers, dispatchers and caches are untouched by a neighbour's
crash-restart cycle.
"""

from __future__ import annotations

import logging
import multiprocessing
import queue as pyqueue
import threading
import time
import zlib
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.errors import PolicyStoreError, ShardUnavailableError
from repro.xacml.attributes import RESOURCE_ID, SUBJECT_ID, AttributeCategory
from repro.xacml.index import _category_keys
from repro.xacml.pdp import (
    DEFAULT_CACHE_SIZE,
    DecisionCache,
    PolicyDecisionPoint,
    decide,
)
from repro.xacml.policy import Policy
from repro.xacml.request import Request
from repro.xacml.response import Response
from repro.xacml.store import ChangeListener, PolicyStore

logger = logging.getLogger(__name__)


def shard_of(key: str, n_shards: int) -> int:
    """The shard owning routing key *key* — stable across processes."""
    return zlib.crc32(key.encode("utf-8")) % n_shards


# -- partitioning strategies ---------------------------------------------------------

class PartitionStrategy:
    """Decides where policies live and which shards a request must visit.

    The contract both sides must uphold together: *every policy whose
    target could match a request is placed on at least one shard that
    ``shards_for_request`` returns for it* (replicating to all shards is
    always a sound fallback).  Placement must be deterministic and
    process-stable so parent and worker processes agree.

    ``policy_placed`` / ``policy_removed`` are lifecycle hooks the store
    calls after each logical mutation; stateless strategies ignore them,
    the composite uses them to track which dimensions the population
    actually occupies.
    """

    name = "base"

    def shards_for_policy(self, policy: Policy, n_shards: int) -> FrozenSet[int]:
        raise NotImplementedError

    def shards_for_request(self, request: Request, n_shards: int) -> Tuple[int, ...]:
        raise NotImplementedError

    def policy_placed(self, policy: Policy) -> None:
        pass

    def policy_removed(self, policy: Policy) -> None:
        pass

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class _KeyedPartitioner(PartitionStrategy):
    """Hash-partitioning on one indexed category's literal keys."""

    #: Overridden per subclass: (AttributeCategory, standard attribute id).
    category: AttributeCategory
    attribute_id: str

    def _policy_keys(self, policy: Policy) -> Optional[FrozenSet[str]]:
        """Literal keys of the partitioned category, or None (wildcard)."""
        alternatives = (
            policy.target.resources
            if self.category is AttributeCategory.RESOURCE
            else policy.target.subjects
        )
        keys = _category_keys(alternatives, self.category, self.attribute_id)
        return None if keys is None else frozenset(keys)

    def shards_for_policy(self, policy: Policy, n_shards: int) -> FrozenSet[int]:
        keys = self._policy_keys(policy)
        if keys is None:
            return frozenset(range(n_shards))
        return frozenset(shard_of(key, n_shards) for key in keys)

    def shards_for_request(self, request: Request, n_shards: int) -> Tuple[int, ...]:
        values = request.values_of(self.category, self.attribute_id)
        if not values:
            # Only fully-replicated policies can match; shard 0 is as
            # authoritative as any.
            return (0,)
        return tuple(
            sorted({shard_of(str(value.value), n_shards) for value in values})
        )


class ResourceKeyPartitioner(_KeyedPartitioner):
    """Partition by the target's literal resource-id keys (the default)."""

    name = "resource"
    category = AttributeCategory.RESOURCE
    attribute_id = RESOURCE_ID


class SubjectKeyPartitioner(_KeyedPartitioner):
    """Partition by the target's literal subject-id keys.

    The right axis when policies are per-subject grants over wildcard
    resources (the paper's Table 3 shape): under resource keys every
    such policy replicates everywhere and every request degenerates to
    a scatter; under subject keys they spread and requests route.
    """

    name = "subject"
    category = AttributeCategory.SUBJECT
    attribute_id = SUBJECT_ID


class CompositeKeyPartitioner(PartitionStrategy):
    """Per-policy dimension choice: resource keys when literal, else
    subject keys, else full replication.

    Routing visits, for each dimension the *current population actually
    uses*, the shards the request's values of that dimension hash to —
    so a homogeneous population routes single-shard exactly like the
    matching single-dimension strategy, and a mixed population pays a
    (at most two-shard) scatter only where both dimensions are live.
    The population counts are maintained through the store's
    ``policy_placed`` / ``policy_removed`` hooks; count transitions only
    ever *widen* routing while the policies that required the extra
    dimension exist, so shard-local decision caches stay coherent (a
    request is answered by one shard's PDP only while that shard
    provably holds every policy that could match it).
    """

    name = "composite"

    def __init__(self):
        self._resource = ResourceKeyPartitioner()
        self._subject = SubjectKeyPartitioner()
        #: Live policy count per partitioned dimension.
        self._counts = {"resource": 0, "subject": 0}

    def _dimension(self, policy: Policy) -> Optional[str]:
        if self._resource._policy_keys(policy) is not None:
            return "resource"
        if self._subject._policy_keys(policy) is not None:
            return "subject"
        return None

    def shards_for_policy(self, policy: Policy, n_shards: int) -> FrozenSet[int]:
        dimension = self._dimension(policy)
        if dimension == "resource":
            return self._resource.shards_for_policy(policy, n_shards)
        if dimension == "subject":
            return self._subject.shards_for_policy(policy, n_shards)
        return frozenset(range(n_shards))

    def shards_for_request(self, request: Request, n_shards: int) -> Tuple[int, ...]:
        shards = set()
        if self._counts["resource"]:
            for value in request.values_of(AttributeCategory.RESOURCE, RESOURCE_ID):
                shards.add(shard_of(str(value.value), n_shards))
        if self._counts["subject"]:
            for value in request.values_of(AttributeCategory.SUBJECT, SUBJECT_ID):
                shards.add(shard_of(str(value.value), n_shards))
        if not shards:
            return (0,)
        return tuple(sorted(shards))

    def policy_placed(self, policy: Policy) -> None:
        dimension = self._dimension(policy)
        if dimension is not None:
            self._counts[dimension] += 1

    def policy_removed(self, policy: Policy) -> None:
        dimension = self._dimension(policy)
        if dimension is not None:
            self._counts[dimension] -= 1

    def stats(self) -> Dict[str, int]:
        return dict(self._counts)


#: Registry of named strategies for configuration surfaces
#: (``XacmlPlusInstance(pdp_partitioner="subject")`` and friends).
PARTITIONERS: Dict[str, Callable[[], PartitionStrategy]] = {
    "resource": ResourceKeyPartitioner,
    "subject": SubjectKeyPartitioner,
    "composite": CompositeKeyPartitioner,
}


def make_partitioner(
    spec: Union[None, str, PartitionStrategy]
) -> PartitionStrategy:
    """Resolve a strategy instance, name, or None (→ resource default)."""
    if spec is None:
        return ResourceKeyPartitioner()
    if isinstance(spec, PartitionStrategy):
        return spec
    try:
        return PARTITIONERS[spec]()
    except KeyError:
        raise PolicyStoreError(
            f"unknown partitioner {spec!r}; known: {sorted(PARTITIONERS)}"
        ) from None


class InvalidationBus:
    """Fans logical policy-store events to cross-shard subscribers.

    Presents the :class:`~repro.xacml.store.PolicyStore` listener
    contract (``add_listener`` / ``remove_listener``, events in
    {"loaded", "updated", "removed"}) over a sharded store: one publish
    per *logical* event, after every shard replica has been brought up
    to date, in subscription order.  Query-graph managers, audit trails
    and proxy handle caches subscribe here exactly as they would to a
    single store.
    """

    def __init__(self):
        self._listeners: List[ChangeListener] = []  # guarded by: owner
        #: Logical events published (for monitoring and tests).
        self.published = 0  # guarded by: owner
        #: Listener invocations that raised (contained, see publish).
        self.listener_failures = 0  # guarded by: owner

    def add_listener(self, listener: ChangeListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: ChangeListener) -> None:
        """Unregister a listener; unknown listeners are ignored."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    # PolicyStore-style aliases so bus-aware and store-aware code can
    # subscribe through one name.
    subscribe = add_listener
    unsubscribe = remove_listener

    def publish(self, event: str, policy: Policy) -> None:
        """Deliver one logical event to every subscriber.

        Per-listener exceptions are contained: a raising subscriber is
        logged and counted, and delivery continues to the remaining
        subscribers — one broken observer (a half-torn-down proxy
        cache, a buggy audit hook) must never leave the others with a
        stale view of a mutation the store has already applied.
        """
        self.published += 1
        for listener in list(self._listeners):
            try:
                listener(event, policy)
            except Exception:
                self.listener_failures += 1
                logger.exception(
                    "invalidation listener %r failed on %r(%s); "
                    "continuing delivery", listener, event, policy.policy_id,
                )


#: Shard-level observers: (shard_id, op, payload, sequence) with op in
#: {"load", "update", "remove"}; payload is the Policy for load/update
#: and the policy id for remove; sequence is pinned for loads only.
ShardListener = Callable[[int, str, object, Optional[int]], None]


class ShardedPolicyStore:
    """N :class:`PolicyStore` shards behind one logical store facade.

    Drop-in for the places a single store is observed or mutated —
    ``load`` / ``update`` / ``remove`` / ``get`` / ``policies`` /
    ``policies_for`` / ``add_listener`` all keep their single-store
    signatures and semantics; listeners are served by the
    :class:`InvalidationBus` (one event per logical mutation).  Each
    shard store keeps its own PR 1 target index, so per-shard candidate
    selection works exactly as in the single-instance engine.

    Mutations and the cross-shard candidate merge are serialised behind
    one lock, so a concurrent scatter evaluation never observes a
    half-migrated replica set; single-shard reads stay lock-free (each
    shard is driven serially, in-process or by its worker).
    """

    def __init__(
        self,
        n_shards: int,
        partitioner: Union[None, str, PartitionStrategy] = None,
    ):
        if n_shards <= 0:
            raise PolicyStoreError(f"shard count must be positive, got {n_shards}")
        self.n_shards = n_shards
        self.partitioner = make_partitioner(partitioner)
        self.shards: List[PolicyStore] = [PolicyStore() for _ in range(n_shards)]
        self.bus = InvalidationBus()
        #: Logical view: id → policy, in load order (updates keep position).
        self._policies: Dict[str, Policy] = {}  # guarded by: self._mutation_lock
        #: policy id → shards holding a replica.
        self._placement: Dict[str, FrozenSet[int]] = {}  # guarded by: self._mutation_lock
        #: policy id → global load sequence (updates keep the original).
        self._sequence: Dict[str, int] = {}  # guarded by: self._mutation_lock
        self._next_sequence = 0  # guarded by: self._mutation_lock
        #: Policies currently replicated to every shard (wildcard /
        #: non-indexable targets under the strategy) — a balance metric.
        self.replicated = 0  # guarded by: self._mutation_lock
        self._shard_listeners: List[ShardListener] = []  # guarded by: owner
        self._mutation_lock = threading.Lock()

    # -- placement ---------------------------------------------------------------

    def _shards_for_policy(self, policy: Policy) -> FrozenSet[int]:
        """The shards that must hold *policy* (all, for wildcards)."""
        return self.partitioner.shards_for_policy(policy, self.n_shards)

    def shards_for_request(self, request: Request) -> Tuple[int, ...]:
        """The shards whose policies could match *request*, ascending.

        A request with no value in any partitioned dimension can only
        match fully-replicated policies, which every shard holds — any
        single shard is authoritative, so shard 0 is returned.
        """
        return self.partitioner.shards_for_request(request, self.n_shards)

    def placement_of(self, policy_id: str) -> FrozenSet[int]:
        """The shards holding *policy_id* (empty frozenset if unknown)."""
        return self._placement.get(policy_id, frozenset())

    def sequence_of(self, policy_id: str) -> int:
        """Global load-order position of *policy_id*."""
        return self._sequence[policy_id]

    # -- listeners ---------------------------------------------------------------

    def add_listener(self, listener: ChangeListener) -> None:
        self.bus.add_listener(listener)

    def remove_listener(self, listener: ChangeListener) -> None:
        self.bus.remove_listener(listener)

    def add_shard_listener(self, listener: ShardListener) -> None:
        """Observe every per-replica operation (see :data:`ShardListener`).

        Shard listeners fire *before* the logical bus event, once per
        affected shard, after the whole mutation has been applied
        in-process (every shard store and the logical bookkeeping) —
        the replication feed a worker pool mirrors.  A listener that
        raises does not unwind the applied mutation: the bus event
        still goes out, then the failure propagates to the mutator.
        """
        self._shard_listeners.append(listener)

    def remove_shard_listener(self, listener: ShardListener) -> None:
        try:
            self._shard_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_shard(
        self, shard_id: int, op: str, payload, sequence: Optional[int] = None
    ) -> None:
        for listener in list(self._shard_listeners):
            listener(shard_id, op, payload, sequence)

    # -- mutation ----------------------------------------------------------------

    def _finish_mutation(self, shard_ops, event: str, policy: Policy) -> None:
        """Fan a completed mutation out: shard listeners, then the bus.

        Runs only after the in-process shard stores *and* the logical
        bookkeeping are fully applied, so a listener that fails (e.g. a
        dead worker mirror) can never leave this store half-mutated —
        and the logical bus event still reaches in-process subscribers
        (scatter cache, proxy, graph revocation), keeping them coherent
        with the state that was in fact applied, before the listener's
        failure propagates to the mutator.
        """
        try:
            for shard_id, op, payload, sequence in shard_ops:
                self._notify_shard(shard_id, op, payload, sequence)
        finally:
            self.bus.publish(event, policy)

    def load(self, policy: Policy) -> None:
        """Load a new policy onto its owning shard(s)."""
        if policy.policy_id in self._policies:
            raise PolicyStoreError(f"policy {policy.policy_id!r} is already loaded")
        with self._mutation_lock:
            shard_ids = self._shards_for_policy(policy)
            sequence = self._next_sequence
            self._next_sequence += 1
            shard_ops = []
            for shard_id in sorted(shard_ids):
                self.shards[shard_id].load(policy, sequence=sequence)
                shard_ops.append((shard_id, "load", policy, sequence))
            self._policies[policy.policy_id] = policy
            self._placement[policy.policy_id] = shard_ids
            self._sequence[policy.policy_id] = sequence
            if len(shard_ids) == self.n_shards:
                self.replicated += 1
            self.partitioner.policy_placed(policy)
            self._finish_mutation(shard_ops, "loaded", policy)

    def update(self, policy: Policy) -> None:
        """Replace a loaded policy, migrating replicas as its keys move.

        Decomposes into shard-local events — ``updated`` on shards in
        both placements, ``removed`` where the new version no longer
        belongs, ``loaded`` (with the original global sequence pinned)
        where it newly belongs — then publishes one logical ``updated``.
        """
        if policy.policy_id not in self._policies:
            raise PolicyStoreError(f"policy {policy.policy_id!r} is not loaded")
        with self._mutation_lock:
            old_policy = self._policies[policy.policy_id]
            old_shards = self._placement[policy.policy_id]
            new_shards = self._shards_for_policy(policy)
            sequence = self._sequence[policy.policy_id]
            shard_ops = []
            for shard_id in sorted(old_shards - new_shards):
                self.shards[shard_id].remove(policy.policy_id)
                shard_ops.append((shard_id, "remove", policy.policy_id, None))
            for shard_id in sorted(old_shards & new_shards):
                self.shards[shard_id].update(policy)
                shard_ops.append((shard_id, "update", policy, None))
            for shard_id in sorted(new_shards - old_shards):
                self.shards[shard_id].load(policy, sequence=sequence)
                shard_ops.append((shard_id, "load", policy, sequence))
            self._policies[policy.policy_id] = policy
            self._placement[policy.policy_id] = new_shards
            if len(old_shards) == self.n_shards and len(new_shards) < self.n_shards:
                self.replicated -= 1
            elif len(old_shards) < self.n_shards and len(new_shards) == self.n_shards:
                self.replicated += 1
            self.partitioner.policy_removed(old_policy)
            self.partitioner.policy_placed(policy)
            self._finish_mutation(shard_ops, "updated", policy)

    def remove(self, policy_id: str) -> Policy:
        if policy_id not in self._policies:
            raise PolicyStoreError(f"policy {policy_id!r} is not loaded")
        with self._mutation_lock:
            shard_ids = self._placement.pop(policy_id)
            shard_ops = []
            for shard_id in sorted(shard_ids):
                self.shards[shard_id].remove(policy_id)
                shard_ops.append((shard_id, "remove", policy_id, None))
            policy = self._policies.pop(policy_id)
            self._sequence.pop(policy_id, None)
            if len(shard_ids) == self.n_shards:
                self.replicated -= 1
            self.partitioner.policy_removed(policy)
            self._finish_mutation(shard_ops, "removed", policy)
            return policy

    # -- lookup ------------------------------------------------------------------

    def get(self, policy_id: str) -> Optional[Policy]:
        return self._policies.get(policy_id)

    def policies(self) -> List[Policy]:
        """All loaded policies, in global load order."""
        return list(self._policies.values())

    def policies_for(self, request: Request) -> List[Policy]:
        """Plausibly applicable policies, in global load order.

        Gathers each relevant shard's indexed candidates, de-duplicates
        replicas and restores global order — the scatter-path analogue
        of :meth:`PolicyStore.policies_for`.
        """
        shard_ids = self.shards_for_request(request)
        if len(shard_ids) == 1:
            return self.shards[shard_ids[0]].policies_for(request)
        with self._mutation_lock:
            merged: Dict[str, Policy] = {}
            for shard_id in shard_ids:
                for policy in self.shards[shard_id].policies_for(request):
                    merged.setdefault(policy.policy_id, policy)
            sequence = self._sequence
            return sorted(merged.values(), key=lambda p: sequence[p.policy_id])

    def snapshot_shard(
        self, shard_id: int, and_then: Optional[Callable[[], None]] = None
    ) -> List[Tuple[Policy, int]]:
        """A consistent ``[(policy, pinned_sequence), ...]`` snapshot of
        one shard replica, taken under the mutation lock.

        The supervisor rebuilds a crashed worker from this.  *and_then*
        (if given) runs under the same lock, after the snapshot is
        built: because shard-level fan-out also runs under this lock,
        no mirror operation can be in flight here, so a supervisor that
        clears its catch-up queue in *and_then* is left with exactly
        the operations *not* already reflected in the snapshot.
        """
        with self._mutation_lock:
            snapshot = [
                (policy, self._sequence[policy.policy_id])
                for policy in self.shards[shard_id].policies()
            ]
            if and_then is not None:
                and_then()
            return snapshot

    def stats(self) -> Dict[str, object]:
        """Placement balance and bus counters, for monitoring and tests."""
        return {
            "n_shards": self.n_shards,
            "partitioner": self.partitioner.name,
            "policies": len(self._policies),
            "replicated": self.replicated,
            "per_shard": [len(shard) for shard in self.shards],
            "events_published": self.bus.published,
        }

    def __contains__(self, policy_id: str) -> bool:
        return policy_id in self._policies

    def __len__(self) -> int:
        return len(self._policies)

    def __repr__(self) -> str:
        return (
            f"ShardedPolicyStore(shards={self.n_shards}, "
            f"partitioner={self.partitioner.name!r}, "
            f"policies={len(self._policies)}, replicated={self.replicated})"
        )


# -- the scatter path ----------------------------------------------------------------

class _ScatterCall:
    """One in-flight scatter merge, shared by its leader and waiters."""

    __slots__ = ("done", "version", "response", "stale")

    def __init__(self, version: int):
        self.done = threading.Event()
        #: Invalidation version the merge started under.
        self.version = version
        self.response: Optional[Response] = None
        #: True until the leader publishes a merge no event overlapped.
        self.stale = True


class ScatterEvaluator:
    """Cached, single-flight evaluation of shard-spanning requests.

    See the module docstring (*Scatter caching and single-flight*) for
    the coherence argument.  ``cache_size=0`` disables both the cache
    and the single-flight machinery, leaving the bare gather-and-merge
    path (the PR 4 behaviour the benchmark compares against).
    """

    def __init__(self, store: ShardedPolicyStore, combining: str, cache_size: int):
        self.store = store
        self.combining = combining
        self.cache = DecisionCache(cache_size)
        self.enabled = cache_size > 0
        self._lock = threading.Lock()
        self._inflight: Dict[tuple, _ScatterCall] = {}  # guarded by: self._lock
        #: Bumped on every bus event; stamps in-flight merges.
        self._version = 0  # guarded by: self._lock
        #: Gather+merge evaluations actually performed.
        self.merges = 0  # guarded by: self._lock
        #: Waiters served by a concurrent leader's merge.
        self.coalesced = 0  # guarded by: self._lock
        #: Waiters that re-evaluated because an invalidation overlapped.
        self.retries = 0  # guarded by: self._lock
        if self.enabled:
            store.bus.add_listener(self._on_bus_event)

    def _on_bus_event(self, event: str, policy) -> None:
        with self._lock:
            self._version += 1
            self.cache.on_store_event(event, policy)

    def set_combining(self, combining: str) -> None:
        with self._lock:
            self.combining = combining
            self._version += 1
            if self.enabled:
                self.cache.flush()

    def detach(self) -> None:
        """Unsubscribe from the bus and drop every cached decision."""
        if self.enabled:
            self.store.bus.remove_listener(self._on_bus_event)
        with self._lock:
            self.cache.entries.clear()
            self.cache.buckets.clear()

    def flush(self) -> None:
        """Cold-start the scatter cache (counted as a full flush)."""
        with self._lock:
            self.cache.flush()

    def evaluate(self, request: Request) -> Response:
        if not self.enabled:
            with self._lock:
                self.merges += 1
            return decide(self.store.policies_for(request), request, self.combining)
        key = request.fingerprint()
        while True:
            with self._lock:
                response = self.cache.get(key)
                if response is not None:
                    return response
                call = self._inflight.get(key)
                if call is None:
                    call = _ScatterCall(self._version)
                    self._inflight[key] = call
                    break  # this thread leads the merge
                self.coalesced += 1
            call.done.wait()
            if not call.stale:
                return call.response
            # An invalidation (or a leader failure) overlapped the merge:
            # this waiter may postdate the mutation, so it must re-read.
            with self._lock:
                self.retries += 1
        try:
            candidates = self.store.policies_for(request)
            response = decide(candidates, request, self.combining)
        except BaseException:
            with self._lock:
                self._inflight.pop(key, None)
            call.done.set()  # waiters observe stale=True and retry
            raise
        with self._lock:
            self.merges += 1
            call.response = response
            call.stale = call.version != self._version
            if not call.stale:
                self.cache.put(
                    key,
                    response,
                    request,
                    frozenset(p.policy_id for p in candidates),
                )
            self._inflight.pop(key, None)
        call.done.set()
        return response

    def stats(self) -> dict:
        """A fresh snapshot: cache counters plus single-flight counters."""
        with self._lock:
            snapshot = self.cache.stats()
            snapshot["merges"] = self.merges
            snapshot["coalesced"] = self.coalesced
            snapshot["retries"] = self.retries
            return snapshot


def _aggregate_cache_stats(shard_stats, scatter_stats, routed, scattered) -> dict:
    """Fold per-shard cache snapshots + scatter counters into one pure
    snapshot — the single shape ``ShardedPDP.cache_stats`` and
    ``ProcessShardPool.cache_stats`` both report."""
    totals = {
        "entries": 0, "hits": 0, "misses": 0, "invalidations": 0,
        "full_flushes": 0, "targeted_evictions": 0,
    }
    for stats in shard_stats:
        for key in totals:
            totals[key] += stats[key]
    lookups = totals["hits"] + totals["misses"]
    totals["hit_rate"] = totals["hits"] / lookups if lookups else 0.0
    for key, value in scatter_stats.items():
        totals[f"scatter_{key}"] = value
    totals["routed"] = routed
    totals["scattered"] = scattered
    totals["evaluations"] = routed + scattered
    return totals


class ShardedPDP:
    """Routes each request to the owning shard's PDP.

    Every shard runs a full fast-path :class:`PolicyDecisionPoint`
    (target index + per-policy-invalidated decision cache) over its
    shard store; shard-spanning requests go through the
    :class:`ScatterEvaluator` — the merged, globally-ordered candidate
    list combined by the shared :func:`repro.xacml.pdp.decide` step,
    fronted by the scatter decision cache with single-flight
    de-duplication.  Decision- and obligation-identical to a single
    ``PolicyDecisionPoint`` over the same policy population for the
    built-in combining algorithms (the property harness proves it
    across partitioners, shard counts and interleaved mutations); a
    single-store ``PolicyDecisionPoint.reference()`` remains the
    reference mode.

    Concurrency: the scatter path is thread-safe (single-flight plus
    the store's mutation lock).  Each shard PDP is serial state — drive
    a given shard from one thread, exactly as a one-process-per-shard
    deployment (:class:`ProcessShardPool`) does naturally.
    """

    def __init__(
        self,
        store: Optional[ShardedPolicyStore] = None,
        combining: str = "first-applicable",
        n_shards: int = 4,
        cache_size: int = DEFAULT_CACHE_SIZE,
        scatter_cache_size: Optional[int] = None,
        partitioner: Union[None, str, PartitionStrategy] = None,
    ):
        if store is None:
            store = ShardedPolicyStore(n_shards, partitioner=partitioner)
        elif partitioner is not None:
            # Placement belongs to the store (policies are already laid
            # out by its strategy); silently ignoring a different one
            # here would leave the caller believing e.g. subject
            # routing is active while everything scatters.
            raise PolicyStoreError(
                "partitioner is set on ShardedPolicyStore; construct the "
                "store with the desired strategy instead of passing one "
                "to ShardedPDP alongside an existing store"
            )
        self.store = store
        self._combining = combining
        self.shard_pdps: List[PolicyDecisionPoint] = [
            PolicyDecisionPoint(shard, combining, use_index=True, cache_size=cache_size)
            for shard in self.store.shards
        ]
        if scatter_cache_size is None:
            scatter_cache_size = cache_size
        self.scatter = ScatterEvaluator(self.store, combining, scatter_cache_size)
        self._counter_lock = threading.Lock()
        #: Requests answered by a single shard's PDP.
        self.routed_evaluations = 0  # guarded by: self._counter_lock
        #: Requests that had to gather candidates across shards.
        self.scatter_evaluations = 0  # guarded by: self._counter_lock

    @property
    def n_shards(self) -> int:
        return self.store.n_shards

    @property
    def combining(self) -> str:
        return self._combining

    @combining.setter
    def combining(self, name: str) -> None:
        # Cached decisions are keyed by request fingerprint only, so a
        # combining change must drop them on every shard and in the
        # scatter cache.
        self._combining = name
        for pdp in self.shard_pdps:
            pdp.combining = name
            pdp.flush_cache()
        self.scatter.set_combining(name)

    def evaluate(self, request: Request) -> Response:
        shard_ids = self.store.shards_for_request(request)
        if len(shard_ids) == 1:
            with self._counter_lock:
                self.routed_evaluations += 1
            return self.shard_pdps[shard_ids[0]].evaluate(request)
        with self._counter_lock:
            self.scatter_evaluations += 1
        return self.scatter.evaluate(request)

    @property
    def evaluations(self) -> int:
        """Requests evaluated (routed + scattered), mirroring the PDP counter."""
        return self.routed_evaluations + self.scatter_evaluations

    def detach(self) -> None:
        """Unregister every shard PDP and the scatter cache; drop caches."""
        for pdp in self.shard_pdps:
            pdp.detach()
        self.scatter.detach()

    def flush_caches(self) -> None:
        """Cold-start every decision cache (shards + scatter)."""
        for pdp in self.shard_pdps:
            pdp.flush_cache()
        self.scatter.flush()

    def cache_stats(self) -> dict:
        """A pure snapshot: aggregated shard counters, scatter-cache
        counters (``scatter_*``) and the routing split.

        Built fresh on every call from the live per-shard and scatter
        snapshots — nothing here mutates or retains aggregation state,
        so repeated calls (and calls across pool close/re-register
        cycles) can never double-count.
        """
        return _aggregate_cache_stats(
            [pdp.cache_stats() for pdp in self.shard_pdps],
            self.scatter.stats(),
            self.routed_evaluations,
            self.scatter_evaluations,
        )

    def __repr__(self) -> str:
        return (
            f"ShardedPDP(shards={self.n_shards}, "
            f"policies={len(self.store)}, combining={self._combining!r})"
        )


# -- multiprocess shard workers ------------------------------------------------------

def _shard_worker_main(
    shard_id: int,
    combining: str,
    cache_size: int,
    initial: Sequence[Tuple[Policy, int]],
    commands,
    results,
) -> None:
    """One shard's worker loop: a mirrored store + indexed/cached PDP.

    Runs in a child process.  Every command (except ``stop``) is a tuple
    ``(op, tag, *args)`` and produces exactly one message on *results* —
    ``("result", tag, payload)`` or ``("error", tag, detail)`` — so the
    parent's dispatcher can match responses to callers by tag no matter
    how many driver threads interleave commands.  Mutations replay the
    parent's shard-level feed, so the worker's store — and therefore its
    PDP's index and decision cache — tracks the parent shard exactly.
    """
    store = PolicyStore()
    for policy, sequence in initial:
        store.load(policy, sequence=sequence)
    pdp = PolicyDecisionPoint(store, combining, use_index=True, cache_size=cache_size)
    while True:
        message = commands.get()
        op = message[0]
        if op == "stop":
            break
        tag = message[1]
        try:
            if op == "eval":
                results.put(
                    ("result", tag, [pdp.evaluate(r) for r in message[2]])
                )
            elif op == "load":
                _, _, policy, sequence = message
                store.load(policy, sequence=sequence)
                results.put(("result", tag, policy.policy_id))
            elif op == "update":
                store.update(message[2])
                results.put(("result", tag, message[2].policy_id))
            elif op == "remove":
                store.remove(message[2])
                results.put(("result", tag, message[2]))
            elif op == "flush":
                pdp.flush_cache()
                results.put(("result", tag, None))
            elif op == "stats":
                results.put(("result", tag, pdp.cache_stats()))
            else:
                results.put(("error", tag, f"unknown opcode {op!r}"))
        except Exception as error:  # surface, don't kill the worker
            results.put(("error", tag, f"{type(error).__name__}: {error}"))


class _PendingCall:
    """One tagged command awaiting its worker response."""

    __slots__ = ("shard_id", "tag", "event", "value", "error")

    def __init__(self, shard_id: int, tag: Tuple[int, int]):
        self.shard_id = shard_id
        self.tag = tag
        self.event = threading.Event()
        self.value = None
        self.error: Optional[BaseException] = None

    def wait(self, timeout: float):
        """Block for the response; raises on worker error or timeout."""
        if not self.event.wait(timeout):
            raise PolicyStoreError(
                f"shard worker {self.shard_id} did not respond"
            )
        if self.error is not None:
            raise self.error
        return self.value


class _ShardRuntime:
    """One shard's live worker generation, owned by the supervisor.

    Every spawn gets *fresh* command/result queues and a fresh
    dispatcher thread, so stale messages from a dead generation can
    never be matched against the next one.  ``lock`` guards every
    field; the pool's lock order is ``runtime.lock`` →
    ``_pending_lock`` (never the reverse).
    """

    __slots__ = (
        "shard_id", "process", "commands", "results", "dispatcher",
        "status", "restarts", "restart_times", "catchup", "lock",
        "last_error", "restart_thread",
    )

    def __init__(self, shard_id: int):
        self.shard_id = shard_id
        self.process = None  # guarded by: self.lock
        self.commands = None  # guarded by: self.lock
        self.results = None  # guarded by: self.lock
        self.dispatcher: Optional[threading.Thread] = None  # guarded by: self.lock
        #: ``"up"`` | ``"down"`` | ``"restarting"`` | ``"degraded"``.
        self.status = "up"  # guarded by: self.lock
        #: Completed (successful) restarts of this shard's worker.
        self.restarts = 0  # guarded by: self.lock
        #: Monotonic stamps of restart attempts inside the budget window.
        self.restart_times: List[float] = []  # guarded by: self.lock
        #: Shard ops that arrived while not ``up``: ``(op, payload,
        #: sequence)`` in arrival order, replayed before readmission.
        self.catchup: List[Tuple[str, object, Optional[int]]] = []  # guarded by: self.lock
        self.lock = threading.Lock()
        self.last_error: Optional[str] = None  # guarded by: self.lock
        self.restart_thread: Optional[threading.Thread] = None  # guarded by: self.lock


#: Zeroed per-shard cache stats, stood in for a shard that is down —
#: keeps :func:`_aggregate_cache_stats` totals well-defined while a
#: worker (whose counters died with it) is being rebuilt.
_ZERO_CACHE_STATS = {
    "entries": 0, "hits": 0, "misses": 0, "invalidations": 0,
    "full_flushes": 0, "targeted_evictions": 0,
}


class ProcessShardPool:
    """Shard PDPs on real ``multiprocessing`` workers, supervised.

    One process per shard, each running the worker loop above; routed
    requests ship to the owning worker (batched through
    :meth:`evaluate_many` so queue/pickle overhead amortises), scatter
    requests merge parent-side through the shared cached single-flight
    path.  Mutating the attached :class:`ShardedPolicyStore` fans the
    shard-level operations out synchronously — the mutation returns
    only after every affected *live* worker acknowledged, so no later
    evaluation can observe a pre-mutation worker cache.

    Safe to drive from many threads at once (see *Multi-driver
    protocol* in the module docstring): every command carries a
    ``(driver_id, sequence)`` tag and one dispatcher thread per worker
    generation routes responses back to the registered caller.

    A worker death is contained (see *Supervision and self-healing* in
    the module docstring): only that shard's in-flight commands fail —
    with :class:`~repro.errors.ShardUnavailableError`, retryable while
    the supervisor still has restart budget — and the worker is
    respawned from authoritative parent state.  While a shard is not
    ``up``, its routed traffic follows ``on_unavailable``:
    ``"fallback"`` answers decision-identically from a parent-side PDP
    over the same shard store; ``"error"`` raises the typed error for
    the caller (or a serving client) to retry.  Use as a context
    manager or call :meth:`close`.
    """

    #: Seconds to wait for any single worker response before declaring
    #: the worker dead.
    RESPONSE_TIMEOUT = 120.0

    #: Dispatcher poll interval — the cadence at which a dispatcher
    #: notices a stop request or a dead worker process.
    POLL_INTERVAL = 0.1

    def __init__(
        self,
        store: ShardedPolicyStore,
        combining: str = "first-applicable",
        cache_size: int = DEFAULT_CACHE_SIZE,
        scatter_cache_size: Optional[int] = None,
        batch_size: int = 256,
        start_method: Optional[str] = None,
        max_restarts: int = 5,
        restart_window: float = 60.0,
        restart_backoff: float = 0.05,
        restart_backoff_cap: float = 2.0,
        on_unavailable: str = "fallback",
        fault_injector=None,
    ):
        if on_unavailable not in ("fallback", "error"):
            raise PolicyStoreError(
                f"on_unavailable must be 'fallback' or 'error', "
                f"not {on_unavailable!r}"
            )
        self.store = store
        self._combining = combining
        self._cache_size = cache_size
        self.batch_size = max(1, batch_size)
        self.max_restarts = max_restarts
        self.restart_window = restart_window
        self.restart_backoff = restart_backoff
        self.restart_backoff_cap = restart_backoff_cap
        self.on_unavailable = on_unavailable
        self._injector = fault_injector
        if scatter_cache_size is None:
            scatter_cache_size = cache_size
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            # fork skips re-pickling the initial policy population and
            # is the cheapest start on the platforms CI runs on.
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self.scatter = ScatterEvaluator(store, combining, scatter_cache_size)
        self.routed_evaluations = 0  # guarded by: self._counter_lock
        self.scatter_evaluations = 0  # guarded by: self._counter_lock
        #: Requests answered by the parent-side fallback PDP while
        #: their shard was unavailable (counted into *routed* too, so
        #: ``evaluations == routed + scattered`` holds regardless).
        self.fallback_evaluations = 0  # guarded by: self._counter_lock
        #: Chunks refused with ShardUnavailableError (``"error"`` mode).
        self.unavailable_errors = 0  # guarded by: self._counter_lock
        #: Successful supervised worker restarts, pool-wide.
        self.worker_restarts = 0  # guarded by: self._counter_lock
        self._counter_lock = threading.Lock()
        #: Lazily-built cache-less fallback PDPs, one per shard.
        self._fallbacks: Dict[int, PolicyDecisionPoint] = {}  # guarded by: self._fallback_lock
        self._fallback_lock = threading.Lock()
        #: Tag bookkeeping: commands in flight, keyed by their
        #: (driver_id, sequence) tag; guarded by ``_pending_lock``.
        self._pending: Dict[Tuple[int, int], _PendingCall] = {}  # guarded by: self._pending_lock
        self._pending_lock = threading.Lock()
        #: Per-thread driver identity (lazily assigned ids + sequence
        #: counters) — the "per-driver batch tags" of the protocol.
        self._local = threading.local()
        self._driver_ids = 0  # guarded by: self._pending_lock
        self._closed = False  # guarded by: self._pending_lock
        self._stopping = False  # guarded by: self._pending_lock
        #: Set at close; interrupts any restart backoff sleep promptly.
        self._shutdown = threading.Event()
        self._runtimes = [
            _ShardRuntime(shard_id) for shard_id in range(store.n_shards)
        ]
        for runtime in self._runtimes:
            self._launch(runtime, store.snapshot_shard(runtime.shard_id))
        store.add_shard_listener(self._on_shard_op)

    # -- lifecycle --------------------------------------------------------------

    def __enter__(self) -> "ProcessShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Stop every worker and detach from the store (idempotent,
        safe under concurrent double-close).

        Pending calls of every driver are failed (never left hanging),
        so concurrent drivers observe a closed pool as a prompt
        :class:`~repro.errors.PolicyStoreError`, not a timeout.
        Supervisor restart threads are interrupted mid-backoff and
        joined; a worker respawned in the race window is terminated by
        its own restart thread (which re-checks ``_closed`` after the
        launch), so no process outlives the pool.
        """
        with self._pending_lock:
            if self._closed:
                return
            self._closed = True
            self._stopping = True
        self._shutdown.set()
        self.store.remove_shard_listener(self._on_shard_op)
        self.scatter.detach()
        self._fail_pending("the shard pool is closed")
        current = threading.current_thread()
        for runtime in self._runtimes:
            with runtime.lock:
                commands, results = runtime.commands, runtime.results
                process = runtime.process
                dispatcher = runtime.dispatcher
                restart_thread = runtime.restart_thread
            if commands is not None:
                try:
                    commands.put(("stop",))
                except (ValueError, OSError):
                    pass
            if process is not None:
                process.join(timeout=5.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=1.0)
            for thread in (dispatcher, restart_thread):
                if thread is not None and thread is not current:
                    thread.join(timeout=5.0)
            for q in (commands, results):
                if q is None:
                    continue
                q.close()
                # The queues die with the pool; don't let their feeder
                # threads block interpreter shutdown on unflushed
                # buffers.
                q.cancel_join_thread()

    @property
    def n_shards(self) -> int:
        return self.store.n_shards

    @property
    def combining(self) -> str:
        return self._combining

    @property
    def evaluations(self) -> int:
        return self.routed_evaluations + self.scatter_evaluations

    # -- worker lifecycle -------------------------------------------------------

    def _launch(self, runtime: _ShardRuntime, initial) -> None:
        """Spawn one worker generation: process, queues, dispatcher."""
        commands, results = self._ctx.Queue(), self._ctx.Queue()
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(
                runtime.shard_id, self._combining, self._cache_size,
                initial, commands, results,
            ),
            daemon=True,
            name=f"pdp-shard-{runtime.shard_id}",
        )
        process.start()
        dispatcher = threading.Thread(
            target=self._dispatch_loop,
            args=(runtime, process, results),
            daemon=True,
            name=f"pdp-shard-dispatch-{runtime.shard_id}",
        )
        with runtime.lock:
            runtime.process = process
            runtime.commands = commands
            runtime.results = results
            runtime.dispatcher = dispatcher
        dispatcher.start()

    def _on_worker_death(self, runtime: _ShardRuntime, reason: str) -> None:
        """A dispatcher noticed its generation's process is gone.

        Fails only this shard's pending calls and (for a death out of
        ``up``) schedules the supervised restart.  A death while
        ``restarting`` — the fresh worker crashed during catch-up — is
        observed by the restart thread through the failed catch-up
        call, which reschedules itself; acting here too would race it.
        """
        with runtime.lock:
            if self._closed or runtime.status not in ("up", "restarting"):
                return
            schedule = runtime.status == "up"
            runtime.status = "down"
            runtime.last_error = reason
        logger.warning("shard %d worker died: %s", runtime.shard_id, reason)
        self._fail_shard_pending(runtime.shard_id, reason)
        if schedule:
            self._schedule_restart(runtime)

    def _schedule_restart(self, runtime: _ShardRuntime) -> None:
        """Arm one restart attempt, or declare the shard degraded.

        The budget is sliding-window: attempts older than
        ``restart_window`` seconds no longer count.  Backoff doubles
        per attempt within the window, capped at
        ``restart_backoff_cap``.
        """
        now = time.monotonic()
        with runtime.lock:
            if self._closed or runtime.status != "down":
                return
            runtime.restart_times = [
                stamp for stamp in runtime.restart_times
                if now - stamp < self.restart_window
            ]
            if len(runtime.restart_times) >= self.max_restarts:
                runtime.status = "degraded"
                # The parent store is authoritative and the fallback
                # reads it live; queued catch-up is obsolete the moment
                # nothing will replay it.
                runtime.catchup.clear()
                runtime.restart_thread = None
                degraded = True
            else:
                runtime.restart_times.append(now)
                attempt = len(runtime.restart_times)
                backoff = min(
                    self.restart_backoff * (2 ** (attempt - 1)),
                    self.restart_backoff_cap,
                )
                thread = threading.Thread(
                    target=self._restart_worker,
                    args=(runtime, backoff),
                    daemon=True,
                    name=f"pdp-shard-supervise-{runtime.shard_id}",
                )
                runtime.restart_thread = thread
                degraded = False
        if degraded:
            logger.error(
                "shard %d exhausted its restart budget (%d in %.1fs); "
                "declared degraded (%s traffic policy)",
                runtime.shard_id, self.max_restarts, self.restart_window,
                self.on_unavailable,
            )
        else:
            thread.start()

    def _restart_worker(self, runtime: _ShardRuntime, backoff: float) -> None:
        """One supervised restart attempt (runs on its own thread).

        Backoff → consistent snapshot → fresh worker generation →
        catch-up replay → readmission.  The snapshot and the switch to
        ``restarting`` (which ends catch-up *queueing* for ops already
        in the snapshot) happen atomically under the store's mutation
        lock, so the snapshot plus the queued catch-up ops is exactly
        the shard's authoritative history — nothing lost, nothing
        applied twice.
        """
        if self._shutdown.wait(backoff) or self._closed:
            return

        def mark_restarting() -> None:
            with runtime.lock:
                runtime.catchup.clear()
                runtime.status = "restarting"

        try:
            initial = self.store.snapshot_shard(
                runtime.shard_id, and_then=mark_restarting
            )
        except Exception:
            logger.exception(
                "shard %d restart aborted: snapshot failed", runtime.shard_id
            )
            return
        # The dead generation's queues go with it; late stale messages
        # died with its dispatcher.
        with runtime.lock:
            stale = (runtime.commands, runtime.results)
        for q in stale:
            if q is None:
                continue
            try:
                q.close()
                q.cancel_join_thread()
            except Exception as error:
                logger.debug("stale queue close failed: %s", error)
        try:
            self._launch(runtime, initial)
        except Exception as error:
            with runtime.lock:
                runtime.status = "down"
                runtime.last_error = f"respawn failed: {error}"
            self._schedule_restart(runtime)
            return
        if self._closed:
            # Lost the race with close(): it may have joined the old
            # process; this generation is ours to reap.
            with runtime.lock:
                process = runtime.process
            try:
                process.terminate()
            except Exception as error:
                logger.debug("terminate after close race failed: %s", error)
            return
        # Catch-up replay: drain ops that arrived while down, then
        # readmit.  New ops may keep arriving (queued under the store
        # mutation lock) while we drain — the loop runs until the queue
        # is observed empty under the runtime lock.
        while True:
            with runtime.lock:
                if self._closed:
                    return
                if runtime.status == "down":
                    break  # the fresh worker died already
                if not runtime.catchup:
                    runtime.status = "up"
                    runtime.restarts += 1
                    with self._counter_lock:
                        self.worker_restarts += 1
                    logger.info(
                        "shard %d worker restarted (%d policies replayed, "
                        "restart #%d)",
                        runtime.shard_id, len(initial), runtime.restarts,
                    )
                    return
                op, payload, sequence = runtime.catchup.pop(0)
            try:
                if op == "load":
                    call = self._submit(
                        runtime.shard_id, "load", payload, sequence,
                        during_restart=True,
                    )
                else:
                    call = self._submit(
                        runtime.shard_id, op, payload, during_restart=True
                    )
                self._await(call)
            except ShardUnavailableError:
                break  # died mid catch-up; status is already "down"
            except PolicyStoreError as error:
                if self._closed:
                    return
                # The fresh replica rejected an authoritative op: it
                # cannot be trusted.  Kill this generation ourselves
                # (status already "down" ⇒ its dispatcher won't
                # double-schedule) and burn another budget slot.
                with runtime.lock:
                    runtime.status = "down"
                    runtime.last_error = f"catch-up {op} failed: {error}"
                    process = runtime.process
                try:
                    process.terminate()
                except Exception as terminate_error:
                    logger.debug(
                        "terminate after catch-up failure failed: %s",
                        terminate_error,
                    )
                break
        self._schedule_restart(runtime)

    def kill_worker(self, shard_id: int, reason: str = "killed") -> None:
        """Terminate one shard's live worker process (chaos aid).

        The supervisor observes the death within a poll interval and
        handles restart/degradation exactly as for a spontaneous crash.
        """
        runtime = self._runtimes[shard_id]
        with runtime.lock:
            process = runtime.process
        if process is not None:
            try:
                process.terminate()
            except Exception as error:
                logger.debug("kill_worker terminate failed: %s", error)

    def revive(self, shard_id: int) -> None:
        """Re-arm a degraded shard: reset its budget and restart it.

        The revive itself is one explicit restart attempt outside the
        budget (so a ``max_restarts=0`` pool can still be revived by an
        operator); if the revived worker dies again, the sliding-window
        budget applies afresh.
        """
        runtime = self._runtimes[shard_id]
        with runtime.lock:
            if self._closed:
                raise PolicyStoreError("the shard pool is closed")
            if runtime.status != "degraded":
                raise PolicyStoreError(
                    f"shard {shard_id} is {runtime.status}, not degraded"
                )
            runtime.status = "down"
            runtime.restart_times = []
            thread = threading.Thread(
                target=self._restart_worker,
                args=(runtime, 0.0),
                daemon=True,
                name=f"pdp-shard-supervise-{shard_id}",
            )
            runtime.restart_thread = thread
        thread.start()

    # -- worker protocol --------------------------------------------------------

    def _driver_tag(self) -> Tuple[int, int]:
        """The calling thread's next command tag.

        Each driver thread gets its own id on first use and a private
        monotonically increasing sequence, so tags are unique across the
        pool's lifetime without any cross-driver coordination beyond the
        one-time id assignment.
        """
        local = self._local
        driver_id = getattr(local, "driver_id", None)
        if driver_id is None:
            with self._pending_lock:
                driver_id = self._driver_ids
                self._driver_ids += 1
            local.driver_id = driver_id
            local.sequence = 0
        sequence = local.sequence
        local.sequence = sequence + 1
        return (driver_id, sequence)

    @property
    def drivers(self) -> int:
        """Distinct driver threads that have issued commands so far."""
        return self._driver_ids

    def _check_usable(self) -> None:
        if self._closed:
            raise PolicyStoreError("the shard pool is closed")

    def _unavailable(self, runtime: _ShardRuntime) -> ShardUnavailableError:
        """The typed error for *runtime*'s current (non-up) status.
        Callers hold ``runtime.lock``."""
        degraded = runtime.status == "degraded"
        return ShardUnavailableError(
            runtime.shard_id,
            runtime.last_error or f"worker is {runtime.status}",
            retryable=not degraded,
            degraded=degraded,
        )

    def _submit(
        self, shard_id: int, op: str, *args, during_restart: bool = False
    ) -> _PendingCall:
        """Register a pending call and ship its tagged command.

        The admission check, pending registration and command-queue
        capture happen atomically under the runtime lock, so a call
        can never be registered against a generation whose death was
        already handled: the death path flips ``status`` under the
        same lock *before* failing that shard's pending calls.
        """
        runtime = self._runtimes[shard_id]
        tag = self._driver_tag()
        call = _PendingCall(shard_id, tag)
        with runtime.lock:
            if self._closed:
                raise PolicyStoreError("the shard pool is closed")
            admissible = ("up", "restarting") if during_restart else ("up",)
            if runtime.status not in admissible:
                raise self._unavailable(runtime)
            commands = runtime.commands
            with self._pending_lock:
                self._pending[tag] = call
        if self._injector is not None:
            self._injector.on_command(self, shard_id, op)
        try:
            commands.put((op, tag, *args))
        except BaseException:
            with self._pending_lock:
                self._pending.pop(tag, None)
            raise
        return call

    def _await(self, call: _PendingCall):
        """Wait out one pending call; a timed-out tag is unregistered so
        the dispatcher drops its late response instead of completing a
        call nobody is waiting on."""
        try:
            return call.wait(self.RESPONSE_TIMEOUT)
        except PolicyStoreError:
            with self._pending_lock:
                self._pending.pop(call.tag, None)
            raise

    def _fail_pending(self, reason: str) -> None:
        """Fail every driver's pending calls promptly (pool teardown)."""
        with self._pending_lock:
            failed = list(self._pending.items())
            self._pending.clear()
        for _, call in failed:
            call.error = PolicyStoreError(reason)
            call.event.set()

    def _fail_shard_pending(self, shard_id: int, reason: str) -> None:
        """Fail only *shard_id*'s pending calls, with the retryable
        typed error — other shards' drivers are untouched."""
        with self._pending_lock:
            failed = [
                item for item in self._pending.items()
                if item[1].shard_id == shard_id
            ]
            for tag, _ in failed:
                del self._pending[tag]
        for _, call in failed:
            call.error = ShardUnavailableError(shard_id, reason)
            call.event.set()

    def _dispatch_loop(self, runtime: _ShardRuntime, process, results) -> None:
        """One worker generation's dispatcher: route responses to their
        pending tag.

        Also the liveness monitor for its generation — a worker that
        died without responding is detected within a poll interval and
        handed to the supervisor, so no driver ever waits out the full
        response timeout on a queue that cannot fill.  The dispatcher
        dies with its generation; the restart spawns a fresh one.
        """
        shard_id = runtime.shard_id
        while True:
            try:
                message = results.get(timeout=self.POLL_INTERVAL)
            except pyqueue.Empty:
                if self._stopping or self._closed:
                    return
                if not process.is_alive():
                    self._on_worker_death(
                        runtime,
                        f"shard worker {shard_id} died "
                        f"(exit code {process.exitcode})",
                    )
                    return
                continue
            except (OSError, ValueError, EOFError):
                return  # queue torn down under us: generation replaced
            kind, tag, payload = message
            with self._pending_lock:
                call = self._pending.pop(tag, None)
            if call is None:
                continue  # caller gave up on this tag; drop the response
            if kind == "error":
                call.error = PolicyStoreError(
                    f"shard worker {shard_id} failed on {tag!r}: {payload}"
                )
            else:
                call.value = payload
            call.event.set()

    def _on_shard_op(self, shard_id: int, op: str, payload, sequence) -> None:
        """Mirror one shard-level store operation into its worker.

        Runs under the store's mutation lock.  A shard that is down or
        restarting queues the op for catch-up replay and returns — a
        mutation never blocks on (or fails because of) a dead shard; a
        degraded shard drops it (the parent store stays authoritative
        and the fallback reads it live).  A *live* worker that rejects
        its mirrored op has a diverged replica and is killed — the
        supervised rebuild from parent state is the repair.  The store
        itself is never affected: it applied the mutation before
        notifying, and the bus event still goes out.
        """
        if self._closed:
            return
        if self._injector is not None:
            action = self._injector.on_mirror(self, shard_id, op)
            if action == "drop":
                # A dropped mirror leaves the worker's replica
                # unknowable; kill it and let supervision rebuild from
                # post-mutation parent state.
                self.kill_worker(
                    shard_id, reason="mirror dropped by fault injection"
                )
                return
        runtime = self._runtimes[shard_id]
        with runtime.lock:
            if runtime.status == "degraded":
                return
            if runtime.status != "up":
                runtime.catchup.append((op, payload, sequence))
                return
        try:
            if op == "load":
                call = self._submit(shard_id, "load", payload, sequence)
            else:  # "update" carries the policy, "remove" the policy id
                call = self._submit(shard_id, op, payload)
            self._await(call)
        except ShardUnavailableError:
            # The worker died under the mirror; harmless — the rebuild
            # snapshots the store *after* this mutation was applied.
            pass
        except PolicyStoreError as error:
            if self._closed:
                return
            self.kill_worker(
                shard_id, reason=f"worker rejected mirrored {op}: {error}"
            )

    # -- evaluation -------------------------------------------------------------

    def evaluate(self, request: Request) -> Response:
        """Evaluate one request (round-trips to the owning worker)."""
        return self.evaluate_many([request])[0]

    def _evaluate_fallback(self, shard_id: int, chunk: List[Request]):
        """Answer a down shard's requests from the authoritative parent
        replica — decision-identical to the worker (same store, same
        index discipline, same combining), serialised behind the
        store's mutation lock so candidate selection never races a
        mutation.  Cache-less on purpose: no listener registration, no
        shared mutable cache state, safe from any driver thread."""
        with self._fallback_lock:
            pdp = self._fallbacks.get(shard_id)
            if pdp is None:
                pdp = PolicyDecisionPoint(
                    self.store.shards[shard_id], self._combining,
                    use_index=True, cache_size=0,
                )
                self._fallbacks[shard_id] = pdp
        with self.store._mutation_lock:
            responses = [pdp.evaluate(request) for request in chunk]
        with self._counter_lock:
            self.fallback_evaluations += len(chunk)
        return responses

    def evaluate_many(self, requests: Sequence[Request]) -> List[Response]:
        """Evaluate a batch: routed requests fan out to the workers in
        per-shard chunks (workers run in parallel), scatter requests
        merge parent-side while the workers chew.

        Callable from any number of driver threads concurrently; each
        call only ever waits on (and is completed by) its own tagged
        batches.  Chunks whose shard is unavailable — refused at
        submission or failed by a mid-flight worker death — follow the
        ``on_unavailable`` policy: answered by the parent-side fallback
        PDP, or surfaced as one ShardUnavailableError after every other
        chunk has been collected (never stranding results
        mid-protocol).
        """
        self._check_usable()
        responses: List[Optional[Response]] = [None] * len(requests)
        per_shard: List[List[int]] = [[] for _ in range(self.n_shards)]
        scatter_indices: List[int] = []
        for index, request in enumerate(requests):
            shard_ids = self.store.shards_for_request(request)
            if len(shard_ids) == 1:
                per_shard[shard_ids[0]].append(index)
            else:
                scatter_indices.append(index)
        # Ship every chunk before collecting anything: queue puts are
        # asynchronous (feeder threads), so all workers start promptly
        # and evaluate while the parent handles the scatter share.
        in_flight: List[Tuple[_PendingCall, List[int]]] = []
        unavailable: List[Tuple[int, List[int], ShardUnavailableError]] = []
        for shard_id, indices in enumerate(per_shard):
            for start in range(0, len(indices), self.batch_size):
                chunk = indices[start:start + self.batch_size]
                try:
                    call = self._submit(
                        shard_id, "eval", [requests[i] for i in chunk]
                    )
                except ShardUnavailableError as error:
                    unavailable.append((shard_id, chunk, error))
                else:
                    in_flight.append((call, chunk))
        for index in scatter_indices:
            responses[index] = self.scatter.evaluate(requests[index])
        # Collect every batch before surfacing any error, so one failed
        # chunk never strands the others' results mid-protocol (late
        # responses to an abandoned tag are dropped by the dispatcher).
        errors: List[str] = []
        for call, chunk in in_flight:
            try:
                payload = self._await(call)
            except ShardUnavailableError as error:
                unavailable.append((call.shard_id, chunk, error))
                continue
            except PolicyStoreError as error:
                errors.append(str(error))
                continue
            for index, response in zip(chunk, payload):
                responses[index] = response
        refusal: Optional[ShardUnavailableError] = None
        for shard_id, chunk, error in unavailable:
            if self.on_unavailable == "fallback":
                fallback = self._evaluate_fallback(
                    shard_id, [requests[i] for i in chunk]
                )
                for index, response in zip(chunk, fallback):
                    responses[index] = response
            else:
                with self._counter_lock:
                    self.unavailable_errors += 1
                if refusal is None:
                    refusal = error
        if errors:
            raise PolicyStoreError("; ".join(errors))
        if refusal is not None:
            raise refusal
        with self._counter_lock:
            self.routed_evaluations += sum(len(indices) for indices in per_shard)
            self.scatter_evaluations += len(scatter_indices)
        return responses

    # -- monitoring -------------------------------------------------------------

    def health(self) -> dict:
        """A pure snapshot of supervision state, per shard and pooled."""
        shards = []
        for runtime in self._runtimes:
            with runtime.lock:
                shards.append({
                    "shard_id": runtime.shard_id,
                    "status": runtime.status,
                    "restarts": runtime.restarts,
                    "catchup_pending": len(runtime.catchup),
                    "last_error": runtime.last_error,
                })
        with self._counter_lock:
            worker_restarts = self.worker_restarts
            fallback_evaluations = self.fallback_evaluations
            unavailable_errors = self.unavailable_errors
        return {
            "closed": self._closed,
            "on_unavailable": self.on_unavailable,
            "shards": shards,
            "statuses": [entry["status"] for entry in shards],
            "degraded_shards": [
                entry["shard_id"] for entry in shards
                if entry["status"] == "degraded"
            ],
            "worker_restarts": worker_restarts,
            "fallback_evaluations": fallback_evaluations,
            "unavailable_errors": unavailable_errors,
        }

    def flush_caches(self) -> None:
        """Cold-start every live worker's decision cache and the
        scatter cache.  A down shard is skipped — its next generation
        starts cache-cold by construction."""
        calls = []
        for shard_id in range(self.n_shards):
            try:
                calls.append(self._submit(shard_id, "flush"))
            except ShardUnavailableError:
                continue
        for call in calls:
            try:
                self._await(call)
            except ShardUnavailableError:
                pass
        self.scatter.flush()

    def cache_stats(self) -> dict:
        """A pure snapshot aggregated over the live workers (same shape
        as :meth:`ShardedPDP.cache_stats`, plus robustness counters).

        A down/degraded shard contributes zeros — its worker's counters
        died with it — and is counted in ``shards_unavailable``.
        """
        calls: List[Optional[_PendingCall]] = []
        for shard_id in range(self.n_shards):
            try:
                calls.append(self._submit(shard_id, "stats"))
            except ShardUnavailableError:
                calls.append(None)
        shard_stats = []
        shards_unavailable = 0
        for call in calls:
            if call is None:
                shards_unavailable += 1
                shard_stats.append(dict(_ZERO_CACHE_STATS))
                continue
            try:
                shard_stats.append(self._await(call))
            except ShardUnavailableError:
                shards_unavailable += 1
                shard_stats.append(dict(_ZERO_CACHE_STATS))
        totals = _aggregate_cache_stats(
            shard_stats,
            self.scatter.stats(),
            self.routed_evaluations,
            self.scatter_evaluations,
        )
        with self._counter_lock:
            totals["worker_restarts"] = self.worker_restarts
            totals["fallback_evaluations"] = self.fallback_evaluations
            totals["unavailable_errors"] = self.unavailable_errors
        totals["shards_unavailable"] = shards_unavailable
        return totals

    def __repr__(self) -> str:
        if self._closed:
            return f"ProcessShardPool(shards={self.n_shards}, closed)"
        statuses = ",".join(
            runtime.status for runtime in self._runtimes
        )
        return f"ProcessShardPool(shards={self.n_shards}, [{statuses}])"
