"""Sharded policy store and PDP with coherent cross-shard invalidation.

One XACML+ instance evaluates requests as fast as the hardware allows
(indexed candidate selection, decision caching); scaling past one
instance means partitioning the policy population so independent
instances each own a slice of the decision work.  This module provides
the partitioned analogues of :class:`~repro.xacml.store.PolicyStore` and
:class:`~repro.xacml.pdp.PolicyDecisionPoint` — the unsharded pair
survives unchanged as the reference mode for differential testing
(``PolicyDecisionPoint.reference()`` over a single store; the sharding
equivalence harness in ``tests/properties`` pins the two bit-identical).

**Partitioning.**  Policies are hash-partitioned by the literal
resource-id values their target can match — the *candidate keys* the
PR 1 target index extracts (``string-equal`` on the standard resource-id
attribute).  A policy whose resource category is a wildcard or carries
any non-indexable alternative (regex matches, non-standard attributes)
over-approximates to *every* shard, exactly mirroring the index's
wildcard-bucket fallback; a multi-literal target is placed on each
literal's shard.  The hash is :func:`zlib.crc32` — stable across
processes, unlike ``hash(str)``, so placement (and therefore benchmark
shard balance) is reproducible.

**Routing.**  The placement rule yields the routing invariant: every
policy whose target could match a request lives on every shard any of
the request's resource-id values hashes to.  A request with resource
values hashing to a single shard — the overwhelmingly common shape, and
the only one the PEP admits — is answered entirely by that shard's PDP
(its index, its decision cache).  A request with no resource-id value
can only match resource-wildcard policies, which are replicated
everywhere, so any one shard (shard 0) answers it.  Requests spanning
shards take the *scatter* path: candidates are gathered from each
relevant shard, de-duplicated (wildcard replicas appear once per shard)
and re-ordered by global load sequence, then combined through the same
:func:`repro.xacml.pdp.decide` step as everything else.

**Why single-shard routing is exact.**  Shard stores are loaded in
global event order with their global sequence numbers pinned
(:meth:`PolicyStore.load`'s ``sequence`` parameter), so a shard's
candidate list is the global candidate list restricted to policies that
can plausibly match the request — and the built-in combining algorithms
ignore NotApplicable policies, the same argument that makes the PR 1
target index sound.  Pinning matters on update: a new policy version
whose resource keys move it onto a different shard arrives there as a
shard-local *load* but keeps its original global position, matching the
single store's update-in-place semantics.

**Invalidation.**  Shard-local coherence is free: each shard is a full
:class:`PolicyStore`, so its index and its PDP's per-policy decision
cache react to the shard-local loaded/updated/removed events exactly as
in the single-instance engine (a migrating update decomposes into
``removed`` on shards the policy left, ``updated`` where it stayed and
``loaded`` — a conservative full flush — where it arrived).  Cross-shard
coherence flows through the :class:`InvalidationBus`: every logical
store event is published exactly once (never once per replica) to
subscribers that span shards — query-graph revocation, audit trails and
the proxy handle cache (:meth:`repro.framework.proxy.Proxy` subscribes
so revocation is purged end-to-end, not merely masked by revalidation).
The bus exposes the same ``add_listener`` contract as ``PolicyStore``,
so every existing store observer works unchanged against a sharded
deployment.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import PolicyStoreError
from repro.xacml.attributes import RESOURCE_ID, AttributeCategory
from repro.xacml.index import _category_keys
from repro.xacml.pdp import DEFAULT_CACHE_SIZE, PolicyDecisionPoint, decide
from repro.xacml.policy import Policy
from repro.xacml.request import Request
from repro.xacml.response import Response
from repro.xacml.store import ChangeListener, PolicyStore


def shard_of(key: str, n_shards: int) -> int:
    """The shard owning routing key *key* — stable across processes."""
    return zlib.crc32(key.encode("utf-8")) % n_shards


class InvalidationBus:
    """Fans logical policy-store events to cross-shard subscribers.

    Presents the :class:`~repro.xacml.store.PolicyStore` listener
    contract (``add_listener`` / ``remove_listener``, events in
    {"loaded", "updated", "removed"}) over a sharded store: one publish
    per *logical* event, after every shard replica has been brought up
    to date, in subscription order.  Query-graph managers, audit trails
    and proxy handle caches subscribe here exactly as they would to a
    single store.
    """

    def __init__(self):
        self._listeners: List[ChangeListener] = []
        #: Logical events published (for monitoring and tests).
        self.published = 0

    def add_listener(self, listener: ChangeListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: ChangeListener) -> None:
        """Unregister a listener; unknown listeners are ignored."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    # PolicyStore-style aliases so bus-aware and store-aware code can
    # subscribe through one name.
    subscribe = add_listener
    unsubscribe = remove_listener

    def publish(self, event: str, policy: Policy) -> None:
        self.published += 1
        for listener in list(self._listeners):
            listener(event, policy)


class ShardedPolicyStore:
    """N :class:`PolicyStore` shards behind one logical store facade.

    Drop-in for the places a single store is observed or mutated —
    ``load`` / ``update`` / ``remove`` / ``get`` / ``policies`` /
    ``policies_for`` / ``add_listener`` all keep their single-store
    signatures and semantics; listeners are served by the
    :class:`InvalidationBus` (one event per logical mutation).  Each
    shard store keeps its own PR 1 target index, so per-shard candidate
    selection works exactly as in the single-instance engine.
    """

    def __init__(self, n_shards: int):
        if n_shards <= 0:
            raise PolicyStoreError(f"shard count must be positive, got {n_shards}")
        self.n_shards = n_shards
        self.shards: List[PolicyStore] = [PolicyStore() for _ in range(n_shards)]
        self.bus = InvalidationBus()
        #: Logical view: id → policy, in load order (updates keep position).
        self._policies: Dict[str, Policy] = {}
        #: policy id → shards holding a replica.
        self._placement: Dict[str, FrozenSet[int]] = {}
        #: policy id → global load sequence (updates keep the original).
        self._sequence: Dict[str, int] = {}
        self._next_sequence = 0
        #: Policies currently replicated to every shard (wildcard /
        #: non-indexable resource targets) — a balance health metric.
        self.replicated = 0

    # -- placement ---------------------------------------------------------------

    def _shards_for_policy(self, policy: Policy) -> FrozenSet[int]:
        """The shards that must hold *policy* (all, for wildcards)."""
        keys = _category_keys(
            policy.target.resources, AttributeCategory.RESOURCE, RESOURCE_ID
        )
        if keys is None:
            return frozenset(range(self.n_shards))
        return frozenset(shard_of(key, self.n_shards) for key in keys)

    def shards_for_request(self, request: Request) -> Tuple[int, ...]:
        """The shards whose policies could match *request*, ascending.

        A request with no resource-id value can only match
        resource-wildcard policies, which every shard replicates — any
        single shard is authoritative, so shard 0 is returned.
        """
        values = request.values_of(AttributeCategory.RESOURCE, RESOURCE_ID)
        if not values:
            return (0,)
        return tuple(
            sorted({shard_of(str(value.value), self.n_shards) for value in values})
        )

    def placement_of(self, policy_id: str) -> FrozenSet[int]:
        """The shards holding *policy_id* (empty frozenset if unknown)."""
        return self._placement.get(policy_id, frozenset())

    def sequence_of(self, policy_id: str) -> int:
        """Global load-order position of *policy_id*."""
        return self._sequence[policy_id]

    # -- listeners ---------------------------------------------------------------

    def add_listener(self, listener: ChangeListener) -> None:
        self.bus.add_listener(listener)

    def remove_listener(self, listener: ChangeListener) -> None:
        self.bus.remove_listener(listener)

    # -- mutation ----------------------------------------------------------------

    def load(self, policy: Policy) -> None:
        """Load a new policy onto its owning shard(s)."""
        if policy.policy_id in self._policies:
            raise PolicyStoreError(f"policy {policy.policy_id!r} is already loaded")
        shard_ids = self._shards_for_policy(policy)
        sequence = self._next_sequence
        self._next_sequence += 1
        for shard_id in sorted(shard_ids):
            self.shards[shard_id].load(policy, sequence=sequence)
        self._policies[policy.policy_id] = policy
        self._placement[policy.policy_id] = shard_ids
        self._sequence[policy.policy_id] = sequence
        if len(shard_ids) == self.n_shards:
            self.replicated += 1
        self.bus.publish("loaded", policy)

    def update(self, policy: Policy) -> None:
        """Replace a loaded policy, migrating replicas as its keys move.

        Decomposes into shard-local events — ``updated`` on shards in
        both placements, ``removed`` where the new version no longer
        belongs, ``loaded`` (with the original global sequence pinned)
        where it newly belongs — then publishes one logical ``updated``.
        """
        if policy.policy_id not in self._policies:
            raise PolicyStoreError(f"policy {policy.policy_id!r} is not loaded")
        old_shards = self._placement[policy.policy_id]
        new_shards = self._shards_for_policy(policy)
        sequence = self._sequence[policy.policy_id]
        for shard_id in sorted(old_shards - new_shards):
            self.shards[shard_id].remove(policy.policy_id)
        for shard_id in sorted(old_shards & new_shards):
            self.shards[shard_id].update(policy)
        for shard_id in sorted(new_shards - old_shards):
            self.shards[shard_id].load(policy, sequence=sequence)
        self._policies[policy.policy_id] = policy
        self._placement[policy.policy_id] = new_shards
        if len(old_shards) == self.n_shards and len(new_shards) < self.n_shards:
            self.replicated -= 1
        elif len(old_shards) < self.n_shards and len(new_shards) == self.n_shards:
            self.replicated += 1
        self.bus.publish("updated", policy)

    def remove(self, policy_id: str) -> Policy:
        if policy_id not in self._policies:
            raise PolicyStoreError(f"policy {policy_id!r} is not loaded")
        shard_ids = self._placement.pop(policy_id)
        for shard_id in sorted(shard_ids):
            self.shards[shard_id].remove(policy_id)
        policy = self._policies.pop(policy_id)
        self._sequence.pop(policy_id, None)
        if len(shard_ids) == self.n_shards:
            self.replicated -= 1
        self.bus.publish("removed", policy)
        return policy

    # -- lookup ------------------------------------------------------------------

    def get(self, policy_id: str) -> Optional[Policy]:
        return self._policies.get(policy_id)

    def policies(self) -> List[Policy]:
        """All loaded policies, in global load order."""
        return list(self._policies.values())

    def policies_for(self, request: Request) -> List[Policy]:
        """Plausibly applicable policies, in global load order.

        Gathers each relevant shard's indexed candidates, de-duplicates
        replicas and restores global order — the scatter-path analogue
        of :meth:`PolicyStore.policies_for`.
        """
        shard_ids = self.shards_for_request(request)
        if len(shard_ids) == 1:
            return self.shards[shard_ids[0]].policies_for(request)
        merged: Dict[str, Policy] = {}
        for shard_id in shard_ids:
            for policy in self.shards[shard_id].policies_for(request):
                merged.setdefault(policy.policy_id, policy)
        sequence = self._sequence
        return sorted(merged.values(), key=lambda p: sequence[p.policy_id])

    def stats(self) -> Dict[str, object]:
        """Placement balance and bus counters, for monitoring and tests."""
        return {
            "n_shards": self.n_shards,
            "policies": len(self._policies),
            "replicated": self.replicated,
            "per_shard": [len(shard) for shard in self.shards],
            "events_published": self.bus.published,
        }

    def __contains__(self, policy_id: str) -> bool:
        return policy_id in self._policies

    def __len__(self) -> int:
        return len(self._policies)

    def __repr__(self) -> str:
        return (
            f"ShardedPolicyStore(shards={self.n_shards}, "
            f"policies={len(self._policies)}, replicated={self.replicated})"
        )


class ShardedPDP:
    """Routes each request to the owning shard's PDP.

    Every shard runs a full fast-path :class:`PolicyDecisionPoint`
    (target index + per-policy-invalidated decision cache) over its
    shard store; shard-spanning requests fall back to a scatter
    evaluation over the merged, globally-ordered candidate list through
    the shared :func:`repro.xacml.pdp.decide` step.  Decision- and
    obligation-identical to a single ``PolicyDecisionPoint`` over the
    same policy population for the built-in combining algorithms (the
    property harness proves it across shard counts and interleaved
    mutations); a single-store ``PolicyDecisionPoint.reference()``
    remains the reference mode.
    """

    def __init__(
        self,
        store: Optional[ShardedPolicyStore] = None,
        combining: str = "first-applicable",
        n_shards: int = 4,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ):
        self.store = store if store is not None else ShardedPolicyStore(n_shards)
        self._combining = combining
        self.shard_pdps: List[PolicyDecisionPoint] = [
            PolicyDecisionPoint(shard, combining, use_index=True, cache_size=cache_size)
            for shard in self.store.shards
        ]
        #: Requests answered by a single shard's PDP.
        self.routed_evaluations = 0
        #: Requests that had to gather candidates across shards.
        self.scatter_evaluations = 0

    @property
    def n_shards(self) -> int:
        return self.store.n_shards

    @property
    def combining(self) -> str:
        return self._combining

    @combining.setter
    def combining(self, name: str) -> None:
        # Cached decisions are keyed by request fingerprint only, so a
        # combining change must drop them on every shard.
        self._combining = name
        for pdp in self.shard_pdps:
            pdp.combining = name
            pdp.flush_cache()

    def evaluate(self, request: Request) -> Response:
        shard_ids = self.store.shards_for_request(request)
        if len(shard_ids) == 1:
            self.routed_evaluations += 1
            return self.shard_pdps[shard_ids[0]].evaluate(request)
        self.scatter_evaluations += 1
        return decide(self.store.policies_for(request), request, self._combining)

    @property
    def evaluations(self) -> int:
        """Requests evaluated (routed + scattered), mirroring the PDP counter."""
        return self.routed_evaluations + self.scatter_evaluations

    def detach(self) -> None:
        """Unregister every shard PDP from its store and drop its cache."""
        for pdp in self.shard_pdps:
            pdp.detach()

    def cache_stats(self) -> dict:
        """Aggregated shard-cache counters plus routing split."""
        totals = {
            "entries": 0, "hits": 0, "misses": 0, "invalidations": 0,
            "full_flushes": 0, "targeted_evictions": 0,
        }
        for pdp in self.shard_pdps:
            stats = pdp.cache_stats()
            for key in totals:
                totals[key] += stats[key]
        lookups = totals["hits"] + totals["misses"]
        totals["hit_rate"] = totals["hits"] / lookups if lookups else 0.0
        totals["routed"] = self.routed_evaluations
        totals["scattered"] = self.scatter_evaluations
        return totals

    def __repr__(self) -> str:
        return (
            f"ShardedPDP(shards={self.n_shards}, "
            f"policies={len(self.store)}, combining={self._combining!r})"
        )
