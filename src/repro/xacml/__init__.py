"""A from-scratch XACML subset (the paper's Sun-XACML substitute).

Implements the slice of OASIS XACML the eXACML+ framework depends on:

- attribute-based requests in the four standard categories (subject,
  resource, action, environment),
- policies with targets, rules (Permit/Deny effects), conditions and
  rule-combining algorithms,
- obligations with attribute assignments — the extension point the paper
  embeds its fine-grained stream constraints in,
- a PDP that evaluates requests against a policy store and returns a
  decision plus the obligations of the deciding policy,
- XML serialisation and parsing for policies and requests, so workloads
  can be stored as files like the paper's experiment inputs.
"""

from repro.xacml.attributes import Attribute, AttributeCategory, AttributeValue
from repro.xacml.request import Request
from repro.xacml.response import Decision, Obligation, Response
from repro.xacml.policy import Condition, Match, Policy, Rule, Target
from repro.xacml.policyset import PolicySet
from repro.xacml.combining import RuleCombiningAlgorithm, PolicyCombiningAlgorithm
from repro.xacml.index import PolicyIndex
from repro.xacml.pdp import DecisionCache, PolicyDecisionPoint
from repro.xacml.sharding import (
    CompositeKeyPartitioner,
    InvalidationBus,
    PartitionStrategy,
    ProcessShardPool,
    ResourceKeyPartitioner,
    ScatterEvaluator,
    ShardedPDP,
    ShardedPolicyStore,
    SubjectKeyPartitioner,
)
from repro.xacml.store import PolicyStore
from repro.xacml.xml_io import (
    parse_policy_xml,
    parse_request_xml,
    policy_to_xml,
    request_to_xml,
)

__all__ = [
    "Attribute",
    "AttributeCategory",
    "AttributeValue",
    "Request",
    "Decision",
    "Obligation",
    "Response",
    "Condition",
    "Match",
    "Policy",
    "PolicySet",
    "Rule",
    "Target",
    "RuleCombiningAlgorithm",
    "PolicyCombiningAlgorithm",
    "CompositeKeyPartitioner",
    "DecisionCache",
    "InvalidationBus",
    "PartitionStrategy",
    "PolicyDecisionPoint",
    "PolicyIndex",
    "PolicyStore",
    "ProcessShardPool",
    "ResourceKeyPartitioner",
    "ScatterEvaluator",
    "ShardedPDP",
    "ShardedPolicyStore",
    "SubjectKeyPartitioner",
    "parse_policy_xml",
    "parse_request_xml",
    "policy_to_xml",
    "request_to_xml",
]
