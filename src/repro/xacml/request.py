"""XACML request contexts."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import XacmlError
from repro.xacml.attributes import (
    ACTION_ID,
    RESOURCE_ID,
    SUBJECT_ID,
    Attribute,
    AttributeCategory,
    AttributeValue,
)


class Request:
    """An access request: attributes grouped by category.

    In eXACML+ a request carries the user's credentials (subject
    attributes), the target data stream (resource-id) and the action
    (normally ``read``); the customised query travels alongside the
    request, not inside it.
    """

    def __init__(self, attributes: Iterable[Attribute] = ()):
        self._by_category: Dict[AttributeCategory, List[Attribute]] = {
            category: [] for category in AttributeCategory
        }
        for attribute in attributes:
            self.add(attribute)

    @classmethod
    def simple(
        cls,
        subject: str,
        resource: str,
        action: str = "read",
        environment: Optional[Dict[str, object]] = None,
    ) -> "Request":
        """Convenience constructor for the common subject/resource/action shape."""
        request = cls()
        request.add(Attribute(AttributeCategory.SUBJECT, SUBJECT_ID, AttributeValue.string(subject)))
        request.add(Attribute(AttributeCategory.RESOURCE, RESOURCE_ID, AttributeValue.string(resource)))
        request.add(Attribute(AttributeCategory.ACTION, ACTION_ID, AttributeValue.string(action)))
        for attribute_id, value in (environment or {}).items():
            request.add(
                Attribute(
                    AttributeCategory.ENVIRONMENT,
                    attribute_id,
                    AttributeValue.infer(value),
                )
            )
        return request

    def add(self, attribute: Attribute) -> None:
        self._by_category[attribute.category].append(attribute)

    def attributes(self, category: AttributeCategory) -> List[Attribute]:
        return list(self._by_category[category])

    def all_attributes(self) -> List[Attribute]:
        result: List[Attribute] = []
        for category in AttributeCategory:
            result.extend(self._by_category[category])
        return result

    def values_of(self, category: AttributeCategory, attribute_id: str) -> List[AttributeValue]:
        """All values bound to *attribute_id* in *category* (may be many)."""
        return [
            attribute.value
            for attribute in self._by_category[category]
            if attribute.attribute_id == attribute_id
        ]

    def first_value(self, category: AttributeCategory, attribute_id: str):
        """The first raw value bound to *attribute_id*, or None."""
        values = self.values_of(category, attribute_id)
        return values[0].value if values else None

    @property
    def subject_id(self) -> Optional[str]:
        value = self.first_value(AttributeCategory.SUBJECT, SUBJECT_ID)
        return None if value is None else str(value)

    @property
    def resource_id(self) -> Optional[str]:
        value = self.first_value(AttributeCategory.RESOURCE, RESOURCE_ID)
        return None if value is None else str(value)

    @property
    def action_id(self) -> Optional[str]:
        value = self.first_value(AttributeCategory.ACTION, ACTION_ID)
        return None if value is None else str(value)

    def fingerprint(self) -> tuple:
        """A hashable canonical form of the full request content.

        Two requests with equal fingerprints are indistinguishable to the
        PDP: target matches and conditions quantify over the *set* of
        values bound to an attribute (``any(...)``), so attribute order
        and duplicates cannot affect a decision and the fingerprint is
        sorted.  Values are keyed by datatype, concrete Python type and
        string rendering so ``1``, ``1.0``, ``True`` and ``"1"`` never
        collapse onto one cache entry.
        """
        items = []
        for category, attributes in self._by_category.items():
            for attribute in attributes:
                value = attribute.value
                items.append(
                    (
                        category.value,
                        attribute.attribute_id,
                        value.datatype,
                        value.value.__class__.__name__,
                        str(value.value),
                    )
                )
        items.sort()
        return tuple(items)

    def require_subject(self) -> str:
        subject = self.subject_id
        if subject is None:
            raise XacmlError("request has no subject-id attribute")
        return subject

    def __repr__(self) -> str:
        return (
            f"Request(subject={self.subject_id!r}, resource={self.resource_id!r}, "
            f"action={self.action_id!r})"
        )
