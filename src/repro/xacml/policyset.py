"""Policy sets: hierarchical grouping of policies (XACML standard).

A :class:`PolicySet` carries its own target, a policy-combining algorithm
and an ordered list of children (policies or nested policy sets).  Data
owners use them to organise per-stream policies — e.g. one set per agency
with ``deny-overrides`` between an organisation-wide deny rule and the
per-consumer permits.

Policy sets evaluate to ``(decision, deciding_policy)``; the deciding
*leaf policy* is what the PEP needs, because obligations are taken from
it (a set's own obligations are additionally appended, per the XACML
obligation-accumulation semantics).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple, Union

from repro.errors import XacmlError
from repro.xacml.combining import PolicyCombiningAlgorithm
from repro.xacml.policy import Policy, Target
from repro.xacml.request import Request
from repro.xacml.response import Decision, Obligation

Child = Union[Policy, "PolicySet"]


class PolicySet:
    """A target-gated, combining-algorithm-governed group of policies."""

    def __init__(
        self,
        policy_set_id: str,
        target: Optional[Target] = None,
        children: Iterable[Child] = (),
        policy_combining: str = "first-applicable",
        obligations: Iterable[Obligation] = (),
        description: str = "",
    ):
        if not policy_set_id:
            raise XacmlError("policy set needs an id")
        self.policy_set_id = policy_set_id
        self.target = target or Target()
        self.children: List[Child] = list(children)
        if not self.children:
            raise XacmlError(f"policy set {policy_set_id!r} has no children")
        self.policy_combining = policy_combining
        self.obligations: Tuple[Obligation, ...] = tuple(obligations)
        self.description = description

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self, request: Request) -> Decision:
        """Decision only (mirrors :meth:`Policy.evaluate`)."""
        decision, _ = self.evaluate_with_policy(request)
        return decision

    def evaluate_with_policy(self, request: Request):
        """Return ``(decision, deciding_leaf_policy_or_None)``."""
        if not self.target.matches(request):
            return Decision.NOT_APPLICABLE, None
        algorithm = PolicyCombiningAlgorithm.get(self.policy_combining)
        decision, child = algorithm.combine(self.children, request)
        if isinstance(child, PolicySet):
            # The combining algorithm calls child.evaluate(); resolve the
            # actual deciding leaf by descending again.
            _, leaf = child.evaluate_with_policy(request)
            return decision, leaf
        return decision, child

    # -- obligation accumulation ------------------------------------------------------

    def obligations_for(self, decision: Decision) -> List[Obligation]:
        """This set's own obligations matching *decision*."""
        if decision not in (Decision.PERMIT, Decision.DENY):
            return []
        return [
            obligation
            for obligation in self.obligations
            if obligation.fulfill_on.decision is decision
        ]

    def accumulated_obligations(
        self, request: Request
    ) -> Tuple[Decision, List[Obligation]]:
        """Evaluate and collect obligations along the deciding path.

        XACML semantics: the obligations of every PolicySet/Policy on the
        path to the deciding rule apply, outermost first.
        """
        decision, leaf = self.evaluate_with_policy(request)
        if leaf is None:
            return decision, []
        obligations = list(self.obligations_for(decision))
        obligations.extend(self._path_obligations(leaf, request, decision))
        return decision, obligations

    def _path_obligations(self, leaf: Policy, request: Request, decision: Decision):
        for child in self.children:
            if child is leaf:
                return list(leaf.obligations_for(decision))
            if isinstance(child, PolicySet) and child._contains(leaf):
                inner = list(child.obligations_for(decision))
                inner.extend(child._path_obligations(leaf, request, decision))
                return inner
        return []

    def _contains(self, leaf: Policy) -> bool:
        for child in self.children:
            if child is leaf:
                return True
            if isinstance(child, PolicySet) and child._contains(leaf):
                return True
        return False

    # -- management ---------------------------------------------------------------------

    def flatten(self) -> List[Policy]:
        """All leaf policies, document order."""
        leaves: List[Policy] = []
        for child in self.children:
            if isinstance(child, PolicySet):
                leaves.extend(child.flatten())
            else:
                leaves.append(child)
        return leaves

    def __repr__(self) -> str:
        return (
            f"PolicySet({self.policy_set_id!r}, children={len(self.children)}, "
            f"combining={self.policy_combining!r})"
        )
