"""XML serialisation and parsing for policies and requests.

The format mirrors XACML 2.0 closely enough that the paper's Figure 2
obligation block is valid input, while staying self-contained (no
namespace plumbing).  Round-trip is exact: ``parse_policy_xml(
policy_to_xml(p))`` reproduces ``p``.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List, Optional, Sequence

from repro.errors import PolicyParseError
from repro.xacml.attributes import (
    Attribute,
    AttributeCategory,
    AttributeValue,
    XS_STRING,
)
from repro.xacml.policy import Condition, Match, Policy, Rule, Target
from repro.xacml.request import Request
from repro.xacml.response import AttributeAssignment, Effect, Obligation

_CATEGORY_SECTIONS = (
    (AttributeCategory.SUBJECT, "Subjects", "Subject", "SubjectMatch"),
    (AttributeCategory.RESOURCE, "Resources", "Resource", "ResourceMatch"),
    (AttributeCategory.ACTION, "Actions", "Action", "ActionMatch"),
)


# ---------------------------------------------------------------------------
# Serialisation
# ---------------------------------------------------------------------------

def policy_to_xml(policy: Policy) -> str:
    """Render *policy* as an XML document string."""
    root = ET.Element(
        "Policy",
        PolicyId=policy.policy_id,
        RuleCombiningAlgId=policy.rule_combining,
    )
    if policy.description:
        ET.SubElement(root, "Description").text = policy.description
    root.append(_target_element(policy.target))
    for rule in policy.rules:
        root.append(_rule_element(rule))
    if policy.obligations:
        obligations = ET.SubElement(root, "Obligations")
        for obligation in policy.obligations:
            obligations.append(_obligation_element(obligation))
    return _pretty(root)


def _target_element(target: Target) -> ET.Element:
    element = ET.Element("Target")
    for category, plural, singular, match_tag in _CATEGORY_SECTIONS:
        alternatives = {
            AttributeCategory.SUBJECT: target.subjects,
            AttributeCategory.RESOURCE: target.resources,
            AttributeCategory.ACTION: target.actions,
        }[category]
        if not alternatives:
            continue
        section = ET.SubElement(element, plural)
        for alternative in alternatives:
            group = ET.SubElement(section, singular)
            for match in alternative:
                match_element = ET.SubElement(
                    group,
                    match_tag,
                    MatchId=match.function_id,
                    AttributeId=match.attribute_id,
                )
                value = ET.SubElement(
                    match_element, "AttributeValue", DataType=match.value.datatype
                )
                value.text = match.value.serialize()
    return element


def _rule_element(rule: Rule) -> ET.Element:
    element = ET.Element("Rule", RuleId=rule.rule_id, Effect=rule.effect.value)
    if rule.description:
        ET.SubElement(element, "Description").text = rule.description
    if not rule.target.is_any:
        element.append(_target_element(rule.target))
    if rule.condition is not None:
        condition = ET.SubElement(
            element,
            "Condition",
            FunctionId=rule.condition.function_id,
            Category=rule.condition.category.value,
            AttributeId=rule.condition.attribute_id,
        )
        value = ET.SubElement(
            condition, "AttributeValue", DataType=rule.condition.value.datatype
        )
        value.text = rule.condition.value.serialize()
    return element


def _obligation_element(obligation: Obligation) -> ET.Element:
    element = ET.Element(
        "Obligation",
        ObligationId=obligation.obligation_id,
        FulfillOn=obligation.fulfill_on.value,
    )
    for assignment in obligation.assignments:
        assignment_element = ET.SubElement(
            element,
            "AttributeAssignment",
            AttributeId=assignment.attribute_id,
            DataType=assignment.value.datatype,
        )
        assignment_element.text = assignment.value.serialize()
    return element


def request_to_xml(request: Request) -> str:
    """Render *request* as an XML document string."""
    root = ET.Element("Request")
    sections = {
        AttributeCategory.SUBJECT: "Subject",
        AttributeCategory.RESOURCE: "Resource",
        AttributeCategory.ACTION: "Action",
        AttributeCategory.ENVIRONMENT: "Environment",
    }
    for category, tag in sections.items():
        attributes = request.attributes(category)
        if not attributes and category is not AttributeCategory.ENVIRONMENT:
            attributes = []
        if not attributes:
            continue
        section = ET.SubElement(root, tag)
        for attribute in attributes:
            attribute_element = ET.SubElement(
                section,
                "Attribute",
                AttributeId=attribute.attribute_id,
                DataType=attribute.value.datatype,
            )
            value = ET.SubElement(attribute_element, "AttributeValue")
            value.text = attribute.value.serialize()
    return _pretty(root)


def _pretty(root: ET.Element) -> str:
    ET.indent(root)
    return ET.tostring(root, encoding="unicode") + "\n"


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

def parse_policy_xml(text: str) -> Policy:
    """Parse a policy document produced by :func:`policy_to_xml`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise PolicyParseError(f"malformed policy XML: {exc}") from exc
    if root.tag != "Policy":
        raise PolicyParseError(f"expected <Policy> root, found <{root.tag}>")
    policy_id = root.get("PolicyId")
    if not policy_id:
        raise PolicyParseError("policy is missing PolicyId")
    rule_combining = root.get("RuleCombiningAlgId", "first-applicable")
    description = _child_text(root, "Description")
    target = _parse_target(root.find("Target"))
    rules = [_parse_rule(element) for element in root.findall("Rule")]
    if not rules:
        raise PolicyParseError(f"policy {policy_id!r} has no rules")
    obligations: List[Obligation] = []
    obligations_element = root.find("Obligations")
    if obligations_element is not None:
        obligations = [
            _parse_obligation(element)
            for element in obligations_element.findall("Obligation")
        ]
    return Policy(
        policy_id,
        target=target,
        rules=rules,
        rule_combining=rule_combining,
        obligations=obligations,
        description=description or "",
    )


def _child_text(element: ET.Element, tag: str) -> Optional[str]:
    child = element.find(tag)
    return None if child is None else (child.text or "")


def _parse_target(element: Optional[ET.Element]) -> Target:
    if element is None:
        return Target()
    sections = {}
    for category, plural, singular, match_tag in _CATEGORY_SECTIONS:
        alternatives: List[List[Match]] = []
        section = element.find(plural)
        if section is not None:
            for group in section.findall(singular):
                matches = []
                for match_element in group.findall(match_tag):
                    matches.append(_parse_match(category, match_element))
                alternatives.append(matches)
        sections[category] = alternatives
    return Target(
        subjects=sections[AttributeCategory.SUBJECT],
        resources=sections[AttributeCategory.RESOURCE],
        actions=sections[AttributeCategory.ACTION],
    )


def _parse_match(category: AttributeCategory, element: ET.Element) -> Match:
    attribute_id = element.get("AttributeId")
    if not attribute_id:
        raise PolicyParseError("target match is missing AttributeId")
    function_id = element.get("MatchId", "string-equal")
    value_element = element.find("AttributeValue")
    if value_element is None:
        raise PolicyParseError(f"match on {attribute_id!r} has no AttributeValue")
    value = AttributeValue.parse(
        value_element.get("DataType", XS_STRING), value_element.text or ""
    )
    return Match(category, attribute_id, value, function_id)


def _parse_rule(element: ET.Element) -> Rule:
    rule_id = element.get("RuleId")
    if not rule_id:
        raise PolicyParseError("rule is missing RuleId")
    effect_text = element.get("Effect", "")
    try:
        effect = Effect(effect_text)
    except ValueError:
        raise PolicyParseError(f"rule {rule_id!r} has bad Effect {effect_text!r}") from None
    target = _parse_target(element.find("Target"))
    condition: Optional[Condition] = None
    condition_element = element.find("Condition")
    if condition_element is not None:
        category_text = condition_element.get("Category", "environment")
        try:
            category = AttributeCategory(category_text)
        except ValueError:
            raise PolicyParseError(f"bad condition category {category_text!r}") from None
        attribute_id = condition_element.get("AttributeId")
        function_id = condition_element.get("FunctionId")
        if not attribute_id or not function_id:
            raise PolicyParseError("condition needs AttributeId and FunctionId")
        value_element = condition_element.find("AttributeValue")
        if value_element is None:
            raise PolicyParseError("condition has no AttributeValue")
        value = AttributeValue.parse(
            value_element.get("DataType", XS_STRING), value_element.text or ""
        )
        condition = Condition(category, attribute_id, function_id, value)
    return Rule(
        rule_id,
        effect,
        target=target,
        condition=condition,
        description=_child_text(element, "Description") or "",
    )


def _parse_obligation(element: ET.Element) -> Obligation:
    obligation_id = element.get("ObligationId")
    if not obligation_id:
        raise PolicyParseError("obligation is missing ObligationId")
    fulfill_text = element.get("FulfillOn", "Permit")
    try:
        fulfill_on = Effect(fulfill_text)
    except ValueError:
        raise PolicyParseError(f"bad FulfillOn {fulfill_text!r}") from None
    assignments = []
    for assignment_element in element.findall("AttributeAssignment"):
        attribute_id = assignment_element.get("AttributeId")
        if not attribute_id:
            raise PolicyParseError("attribute assignment is missing AttributeId")
        value = AttributeValue.parse(
            assignment_element.get("DataType", XS_STRING),
            (assignment_element.text or "").strip(),
        )
        assignments.append(AttributeAssignment(attribute_id, value))
    return Obligation(obligation_id, fulfill_on, assignments)


def parse_request_xml(text: str) -> Request:
    """Parse a request document produced by :func:`request_to_xml`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise PolicyParseError(f"malformed request XML: {exc}") from exc
    if root.tag != "Request":
        raise PolicyParseError(f"expected <Request> root, found <{root.tag}>")
    sections = {
        "Subject": AttributeCategory.SUBJECT,
        "Resource": AttributeCategory.RESOURCE,
        "Action": AttributeCategory.ACTION,
        "Environment": AttributeCategory.ENVIRONMENT,
    }
    request = Request()
    for child in root:
        category = sections.get(child.tag)
        if category is None:
            raise PolicyParseError(f"unexpected request section <{child.tag}>")
        for attribute_element in child.findall("Attribute"):
            attribute_id = attribute_element.get("AttributeId")
            if not attribute_id:
                raise PolicyParseError("request attribute is missing AttributeId")
            datatype = attribute_element.get("DataType", XS_STRING)
            value_element = attribute_element.find("AttributeValue")
            text_value = (
                value_element.text if value_element is not None else attribute_element.text
            )
            value = AttributeValue.parse(datatype, (text_value or "").strip())
            request.add(Attribute(category, attribute_id, value))
    return request
