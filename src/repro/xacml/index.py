"""A target index over loaded policies.

The seed PDP answers every request by scanning *all* loaded policies
through a combining algorithm — O(policies) per request even though a
typical target names one subject and one resource.  The index maps the
literal subject-id / resource-id / action-id values a policy's target
can possibly match to the policy, so the PDP only evaluates plausibly
applicable candidates.

The index is a sound *over-approximation*: ``candidate_ids(request)``
is guaranteed to contain every policy whose target matches the request
(it may contain extra policies, which the full evaluation then rejects).
That guarantee is what keeps indexed evaluation byte-for-byte
decision-equivalent to the linear scan for the built-in combining
algorithms, all of which ignore NotApplicable policies.

Indexability is per target alternative: an alternative is indexable on
a category when it contains a ``string-equal`` match on the standard
subject-id / resource-id / action-id attribute — such an alternative can
only match requests carrying that literal value.  A category with no
alternatives (XACML "any") or with any non-indexable alternative (regex
matches, non-standard attributes, ordered comparisons) falls back to the
category's wildcard bucket, which every lookup includes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.xacml.attributes import (
    ACTION_ID,
    RESOURCE_ID,
    SUBJECT_ID,
    AttributeCategory,
)
from repro.xacml.functions import STRING_EQUAL
from repro.xacml.policy import Policy
from repro.xacml.request import Request

#: The three indexed categories with their standard identity attributes.
_INDEXED_CATEGORIES: Tuple[Tuple[AttributeCategory, str], ...] = (
    (AttributeCategory.SUBJECT, SUBJECT_ID),
    (AttributeCategory.RESOURCE, RESOURCE_ID),
    (AttributeCategory.ACTION, ACTION_ID),
)


def _category_keys(
    alternatives, category: AttributeCategory, attribute_id: str
) -> Optional[Set[str]]:
    """The literal values the category can match, or None for wildcard.

    ``string-equal`` compares ``str(request) == str(policy)``, so keying
    on ``str(value)`` is exact for the indexable matches.
    """
    if not alternatives:
        return None
    keys: Set[str] = set()
    for alternative in alternatives:
        literal = None
        for match in alternative:
            if (
                match.function_id == STRING_EQUAL
                and match.category is category
                and match.attribute_id == attribute_id
            ):
                literal = str(match.value.value)
                break
        if literal is None:
            # This alternative could match any value of the category —
            # the whole policy must live in the wildcard bucket.
            return None
        keys.add(literal)
    return keys


class PolicyIndex:
    """Maps target literals to candidate policy ids, one bucket set per
    indexed category plus a wildcard bucket for unconstrained targets."""

    def __init__(self):
        self._buckets: Dict[AttributeCategory, Dict[str, Set[str]]] = {
            category: {} for category, _ in _INDEXED_CATEGORIES
        }
        self._wildcards: Dict[AttributeCategory, Set[str]] = {
            category: set() for category, _ in _INDEXED_CATEGORIES
        }
        #: policy id → per-category key sets, for O(keys) removal.
        self._keys: Dict[str, Dict[AttributeCategory, Optional[Set[str]]]] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, policy_id: str) -> bool:
        return policy_id in self._keys

    def add(self, policy: Policy) -> None:
        target = policy.target
        per_category: Dict[AttributeCategory, Optional[Set[str]]] = {}
        for (category, attribute_id), alternatives in zip(
            _INDEXED_CATEGORIES,
            (target.subjects, target.resources, target.actions),
        ):
            keys = _category_keys(alternatives, category, attribute_id)
            per_category[category] = keys
            if keys is None:
                self._wildcards[category].add(policy.policy_id)
            else:
                buckets = self._buckets[category]
                for key in keys:
                    buckets.setdefault(key, set()).add(policy.policy_id)
        self._keys[policy.policy_id] = per_category

    def discard(self, policy_id: str) -> None:
        per_category = self._keys.pop(policy_id, None)
        if per_category is None:
            return
        for category, keys in per_category.items():
            if keys is None:
                self._wildcards[category].discard(policy_id)
                continue
            buckets = self._buckets[category]
            for key in keys:
                bucket = buckets.get(key)
                if bucket is not None:
                    bucket.discard(policy_id)
                    if not bucket:
                        del buckets[key]

    def replace(self, policy: Policy) -> None:
        self.discard(policy.policy_id)
        self.add(policy)

    def candidate_ids(self, request: Request) -> Set[str]:
        """Ids of every policy whose target could match *request*."""
        candidates: Optional[Set[str]] = None
        for category, attribute_id in _INDEXED_CATEGORIES:
            eligible = set(self._wildcards[category])
            buckets = self._buckets[category]
            if buckets:
                for value in request.values_of(category, attribute_id):
                    bucket = buckets.get(str(value.value))
                    if bucket:
                        eligible |= bucket
            if candidates is None:
                candidates = eligible
            else:
                candidates &= eligible
            if not candidates:
                return candidates
        return candidates if candidates is not None else set()

    def stats(self) -> Dict[str, int]:
        """Bucket counts, for monitoring and tests."""
        return {
            "policies": len(self._keys),
            **{
                f"{category.value}_buckets": len(self._buckets[category])
                for category, _ in _INDEXED_CATEGORIES
            },
            **{
                f"{category.value}_wildcards": len(self._wildcards[category])
                for category, _ in _INDEXED_CATEGORIES
            },
        }

    def __repr__(self) -> str:
        return f"PolicyIndex(policies={len(self._keys)})"
