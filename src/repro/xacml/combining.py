"""Rule- and policy-combining algorithms."""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import XacmlError
from repro.xacml.request import Request
from repro.xacml.response import Decision


class RuleCombiningAlgorithm:
    """Named strategy for combining rule decisions within a policy."""

    _registry: Dict[str, "RuleCombiningAlgorithm"] = {}

    def __init__(self, name: str, combine: Callable[[Sequence, Request], Decision]):
        self.name = name
        self._combine = combine
        RuleCombiningAlgorithm._registry[name] = self

    def combine(self, rules: Sequence, request: Request) -> Decision:
        return self._combine(rules, request)

    @classmethod
    def get(cls, name: str) -> "RuleCombiningAlgorithm":
        try:
            return cls._registry[name]
        except KeyError:
            raise XacmlError(f"unknown rule-combining algorithm {name!r}") from None

    @classmethod
    def names(cls) -> List[str]:
        return sorted(cls._registry)

    def __repr__(self) -> str:
        return f"RuleCombiningAlgorithm({self.name!r})"


def _first_applicable(rules: Sequence, request: Request) -> Decision:
    for rule in rules:
        decision = rule.evaluate(request)
        if decision is not Decision.NOT_APPLICABLE:
            return decision
    return Decision.NOT_APPLICABLE


def _permit_overrides(rules: Sequence, request: Request) -> Decision:
    saw_deny = False
    for rule in rules:
        decision = rule.evaluate(request)
        if decision is Decision.PERMIT:
            return Decision.PERMIT
        if decision is Decision.DENY:
            saw_deny = True
    return Decision.DENY if saw_deny else Decision.NOT_APPLICABLE


def _deny_overrides(rules: Sequence, request: Request) -> Decision:
    saw_permit = False
    for rule in rules:
        decision = rule.evaluate(request)
        if decision is Decision.DENY:
            return Decision.DENY
        if decision is Decision.PERMIT:
            saw_permit = True
    return Decision.PERMIT if saw_permit else Decision.NOT_APPLICABLE


def _deny_unless_permit(rules: Sequence, request: Request) -> Decision:
    for rule in rules:
        if rule.evaluate(request) is Decision.PERMIT:
            return Decision.PERMIT
    return Decision.DENY


FIRST_APPLICABLE = RuleCombiningAlgorithm("first-applicable", _first_applicable)
PERMIT_OVERRIDES = RuleCombiningAlgorithm("permit-overrides", _permit_overrides)
DENY_OVERRIDES = RuleCombiningAlgorithm("deny-overrides", _deny_overrides)
DENY_UNLESS_PERMIT = RuleCombiningAlgorithm("deny-unless-permit", _deny_unless_permit)


class PolicyCombiningAlgorithm:
    """Strategy for combining decisions of multiple applicable policies.

    The PDP needs one: a request may match several loaded policies.  The
    result also carries *which* policy decided, because the PEP takes the
    obligations from the deciding policy (paper Section 2).
    """

    _registry: Dict[str, "PolicyCombiningAlgorithm"] = {}

    def __init__(self, name: str, combine: Callable[[Sequence, Request], Tuple[Decision, object]]):
        self.name = name
        self._combine = combine
        PolicyCombiningAlgorithm._registry[name] = self

    def combine(self, policies: Sequence, request: Request) -> Tuple[Decision, object]:
        """Return ``(decision, deciding_policy_or_None)``."""
        return self._combine(policies, request)

    @classmethod
    def get(cls, name: str) -> "PolicyCombiningAlgorithm":
        try:
            return cls._registry[name]
        except KeyError:
            raise XacmlError(f"unknown policy-combining algorithm {name!r}") from None

    def __repr__(self) -> str:
        return f"PolicyCombiningAlgorithm({self.name!r})"


def _policy_first_applicable(policies: Sequence, request: Request):
    for policy in policies:
        decision = policy.evaluate(request)
        if decision is not Decision.NOT_APPLICABLE:
            return decision, policy
    return Decision.NOT_APPLICABLE, None


def _policy_permit_overrides(policies: Sequence, request: Request):
    denying = None
    for policy in policies:
        decision = policy.evaluate(request)
        if decision is Decision.PERMIT:
            return Decision.PERMIT, policy
        if decision is Decision.DENY and denying is None:
            denying = policy
    if denying is not None:
        return Decision.DENY, denying
    return Decision.NOT_APPLICABLE, None


def _policy_deny_overrides(policies: Sequence, request: Request):
    permitting = None
    for policy in policies:
        decision = policy.evaluate(request)
        if decision is Decision.DENY:
            return Decision.DENY, policy
        if decision is Decision.PERMIT and permitting is None:
            permitting = policy
    if permitting is not None:
        return Decision.PERMIT, permitting
    return Decision.NOT_APPLICABLE, None


POLICY_FIRST_APPLICABLE = PolicyCombiningAlgorithm("first-applicable", _policy_first_applicable)
POLICY_PERMIT_OVERRIDES = PolicyCombiningAlgorithm("permit-overrides", _policy_permit_overrides)
POLICY_DENY_OVERRIDES = PolicyCombiningAlgorithm("deny-overrides", _policy_deny_overrides)
