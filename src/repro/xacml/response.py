"""XACML responses: decision, status and obligations."""

from __future__ import annotations

import enum
from typing import Iterable, List, Optional, Tuple

from repro.errors import XacmlError
from repro.xacml.attributes import AttributeValue


class Decision(enum.Enum):
    """The four XACML decisions."""

    PERMIT = "Permit"
    DENY = "Deny"
    NOT_APPLICABLE = "NotApplicable"
    INDETERMINATE = "Indeterminate"


class Effect(enum.Enum):
    """Rule effects."""

    PERMIT = "Permit"
    DENY = "Deny"

    @property
    def decision(self) -> Decision:
        return Decision.PERMIT if self is Effect.PERMIT else Decision.DENY


class AttributeAssignment:
    """One ``<AttributeAssignment>`` inside an obligation."""

    __slots__ = ("attribute_id", "value")

    def __init__(self, attribute_id: str, value: AttributeValue):
        if not attribute_id:
            raise XacmlError("attribute assignment needs an attribute id")
        self.attribute_id = attribute_id
        self.value = value

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, AttributeAssignment)
            and self.attribute_id == other.attribute_id
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.attribute_id, self.value))

    def __repr__(self) -> str:
        return f"AttributeAssignment({self.attribute_id!r}, {self.value.value!r})"


class Obligation:
    """An obligation the PEP must fulfil when the decision matches.

    eXACML+ embeds its fine-grained stream constraints here: the PDP
    returns the obligations to the PEP, which translates them into a
    query graph (paper Section 2.2).
    """

    def __init__(
        self,
        obligation_id: str,
        fulfill_on: Effect = Effect.PERMIT,
        assignments: Iterable[AttributeAssignment] = (),
    ):
        if not obligation_id:
            raise XacmlError("obligation needs an obligation id")
        self.obligation_id = obligation_id
        self.fulfill_on = fulfill_on
        self.assignments: Tuple[AttributeAssignment, ...] = tuple(assignments)

    def values_of(self, attribute_id: str) -> List[AttributeValue]:
        """All assignment values with *attribute_id*, in document order."""
        return [a.value for a in self.assignments if a.attribute_id == attribute_id]

    def first_value(self, attribute_id: str):
        values = self.values_of(attribute_id)
        return values[0].value if values else None

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Obligation)
            and self.obligation_id == other.obligation_id
            and self.fulfill_on == other.fulfill_on
            and self.assignments == other.assignments
        )

    def __hash__(self) -> int:
        return hash((self.obligation_id, self.fulfill_on, self.assignments))

    def __repr__(self) -> str:
        return (
            f"Obligation({self.obligation_id!r}, on={self.fulfill_on.value}, "
            f"{len(self.assignments)} assignments)"
        )


class Response:
    """The PDP's answer: decision + obligations of the deciding policy."""

    def __init__(
        self,
        decision: Decision,
        obligations: Iterable[Obligation] = (),
        status_message: Optional[str] = None,
        policy_id: Optional[str] = None,
    ):
        self.decision = decision
        self.obligations: Tuple[Obligation, ...] = tuple(obligations)
        self.status_message = status_message
        #: Id of the policy that produced the decision (None when
        #: NotApplicable) — used by the query-graph manager to associate
        #: spawned graphs with their granting policy (Section 3.3).
        self.policy_id = policy_id

    @property
    def permitted(self) -> bool:
        return self.decision is Decision.PERMIT

    def __repr__(self) -> str:
        return (
            f"Response({self.decision.value}, {len(self.obligations)} obligations, "
            f"policy={self.policy_id!r})"
        )
