"""XACML attributes: categorised, typed name/value pairs."""

from __future__ import annotations

import enum
from typing import Union

from repro.errors import XacmlError

#: XML-Schema datatype URIs used in policies and requests.
XS_STRING = "http://www.w3.org/2001/XMLSchema#string"
XS_INTEGER = "http://www.w3.org/2001/XMLSchema#integer"
XS_DOUBLE = "http://www.w3.org/2001/XMLSchema#double"
XS_BOOLEAN = "http://www.w3.org/2001/XMLSchema#boolean"

#: Standard identifier of the subject's identity attribute.
SUBJECT_ID = "urn:oasis:names:tc:xacml:1.0:subject:subject-id"
#: Standard identifier of the resource attribute.
RESOURCE_ID = "urn:oasis:names:tc:xacml:1.0:resource:resource-id"
#: Standard identifier of the action attribute.
ACTION_ID = "urn:oasis:names:tc:xacml:1.0:action:action-id"


class AttributeCategory(enum.Enum):
    """The four request-context categories of XACML."""

    SUBJECT = "subject"
    RESOURCE = "resource"
    ACTION = "action"
    ENVIRONMENT = "environment"


class AttributeValue:
    """A typed literal value."""

    __slots__ = ("datatype", "value")

    def __init__(self, datatype: str, value: Union[str, int, float, bool]):
        self.datatype = datatype
        self.value = value

    @classmethod
    def string(cls, value: str) -> "AttributeValue":
        return cls(XS_STRING, str(value))

    @classmethod
    def integer(cls, value: int) -> "AttributeValue":
        return cls(XS_INTEGER, int(value))

    @classmethod
    def double(cls, value: float) -> "AttributeValue":
        return cls(XS_DOUBLE, float(value))

    @classmethod
    def boolean(cls, value: bool) -> "AttributeValue":
        return cls(XS_BOOLEAN, bool(value))

    @classmethod
    def infer(cls, value: Union[str, int, float, bool]) -> "AttributeValue":
        """Build an AttributeValue with the datatype inferred from *value*."""
        if isinstance(value, bool):
            return cls.boolean(value)
        if isinstance(value, int):
            return cls.integer(value)
        if isinstance(value, float):
            return cls.double(value)
        if isinstance(value, str):
            return cls.string(value)
        raise XacmlError(f"cannot infer XACML datatype for {value!r}")

    def serialize(self) -> str:
        """Render the value as XML text content."""
        if self.datatype == XS_BOOLEAN:
            return "true" if self.value else "false"
        return str(self.value)

    @classmethod
    def parse(cls, datatype: str, text: str) -> "AttributeValue":
        """Parse XML text content for *datatype*."""
        if datatype == XS_STRING:
            return cls(datatype, text)
        stripped = text.strip()
        if datatype == XS_INTEGER:
            try:
                return cls(datatype, int(stripped))
            except ValueError:
                raise XacmlError(f"bad integer attribute value {text!r}") from None
        if datatype == XS_DOUBLE:
            try:
                return cls(datatype, float(stripped))
            except ValueError:
                raise XacmlError(f"bad double attribute value {text!r}") from None
        if datatype == XS_BOOLEAN:
            if stripped in ("true", "1"):
                return cls(datatype, True)
            if stripped in ("false", "0"):
                return cls(datatype, False)
            raise XacmlError(f"bad boolean attribute value {text!r}")
        # Unknown datatypes are preserved as strings (XACML is extensible).
        return cls(datatype, text)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, AttributeValue)
            and self.datatype == other.datatype
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.datatype, self.value))

    def __repr__(self) -> str:
        short = self.datatype.rsplit("#", 1)[-1]
        return f"AttributeValue({short}, {self.value!r})"


class Attribute:
    """A categorised attribute: (category, attribute-id, typed value)."""

    __slots__ = ("category", "attribute_id", "value")

    def __init__(self, category: AttributeCategory, attribute_id: str, value: AttributeValue):
        if not attribute_id:
            raise XacmlError("attribute needs a non-empty attribute id")
        self.category = category
        self.attribute_id = attribute_id
        self.value = value

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Attribute)
            and self.category == other.category
            and self.attribute_id == other.attribute_id
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.category, self.attribute_id, self.value))

    def __repr__(self) -> str:
        return (
            f"Attribute({self.category.value}, {self.attribute_id!r}, "
            f"{self.value.value!r})"
        )
