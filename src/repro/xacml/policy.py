"""Policies, targets, rules and conditions."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import XacmlError
from repro.xacml.attributes import (
    ACTION_ID,
    RESOURCE_ID,
    SUBJECT_ID,
    Attribute,
    AttributeCategory,
    AttributeValue,
)
from repro.xacml.functions import STRING_EQUAL, apply_function
from repro.xacml.request import Request
from repro.xacml.response import Decision, Effect, Obligation


class Match:
    """One target match: request attribute vs. a policy literal."""

    __slots__ = ("category", "attribute_id", "function_id", "value")

    def __init__(
        self,
        category: AttributeCategory,
        attribute_id: str,
        value: AttributeValue,
        function_id: str = STRING_EQUAL,
    ):
        self.category = category
        self.attribute_id = attribute_id
        self.function_id = function_id
        self.value = value

    def matches(self, request: Request) -> bool:
        """True when *any* request value for the attribute matches."""
        values = request.values_of(self.category, self.attribute_id)
        return any(
            apply_function(self.function_id, value, self.value) for value in values
        )

    def __repr__(self) -> str:
        return (
            f"Match({self.category.value}:{self.attribute_id} "
            f"{self.function_id} {self.value.value!r})"
        )


class Target:
    """A target: conjunction over categories, disjunction within.

    Each of ``subjects`` / ``resources`` / ``actions`` is a list of
    *alternatives*; an alternative is a list of :class:`Match` that must
    all hold (AllOf).  The category matches when any alternative holds
    (AnyOf).  An empty category list matches everything — the standard
    XACML "any" semantics.
    """

    def __init__(
        self,
        subjects: Sequence[Sequence[Match]] = (),
        resources: Sequence[Sequence[Match]] = (),
        actions: Sequence[Sequence[Match]] = (),
    ):
        self.subjects = [list(alternative) for alternative in subjects]
        self.resources = [list(alternative) for alternative in resources]
        self.actions = [list(alternative) for alternative in actions]

    @classmethod
    def for_ids(
        cls,
        subject: Optional[str] = None,
        resource: Optional[str] = None,
        action: Optional[str] = None,
    ) -> "Target":
        """Target matching specific subject-id/resource-id/action-id values."""

        def single(category: AttributeCategory, attribute_id: str, value: str):
            return [[Match(category, attribute_id, AttributeValue.string(value))]]

        return cls(
            subjects=single(AttributeCategory.SUBJECT, SUBJECT_ID, subject) if subject else (),
            resources=single(AttributeCategory.RESOURCE, RESOURCE_ID, resource) if resource else (),
            actions=single(AttributeCategory.ACTION, ACTION_ID, action) if action else (),
        )

    def matches(self, request: Request) -> bool:
        for alternatives in (self.subjects, self.resources, self.actions):
            if not alternatives:
                continue
            if not any(
                all(match.matches(request) for match in alternative)
                for alternative in alternatives
            ):
                return False
        return True

    @property
    def is_any(self) -> bool:
        return not (self.subjects or self.resources or self.actions)

    def __repr__(self) -> str:
        return (
            f"Target(subjects={len(self.subjects)}, resources={len(self.resources)}, "
            f"actions={len(self.actions)})"
        )


class Condition:
    """A rule condition: one function applied to a request attribute.

    XACML conditions are arbitrary ``<Apply>`` trees; the paper's policies
    only ever gate rules on single attribute comparisons (and usually have
    no condition at all), so a single comparison captures the needed
    expressiveness while keeping evaluation transparent.
    """

    __slots__ = ("category", "attribute_id", "function_id", "value")

    def __init__(
        self,
        category: AttributeCategory,
        attribute_id: str,
        function_id: str,
        value: AttributeValue,
    ):
        self.category = category
        self.attribute_id = attribute_id
        self.function_id = function_id
        self.value = value

    def evaluate(self, request: Request) -> bool:
        values = request.values_of(self.category, self.attribute_id)
        return any(
            apply_function(self.function_id, value, self.value) for value in values
        )

    def __repr__(self) -> str:
        return (
            f"Condition({self.category.value}:{self.attribute_id} "
            f"{self.function_id} {self.value.value!r})"
        )


class Rule:
    """A rule: target + optional condition → effect."""

    def __init__(
        self,
        rule_id: str,
        effect: Effect,
        target: Optional[Target] = None,
        condition: Optional[Condition] = None,
        description: str = "",
    ):
        if not rule_id:
            raise XacmlError("rule needs a rule id")
        self.rule_id = rule_id
        self.effect = effect
        self.target = target or Target()
        self.condition = condition
        self.description = description

    def evaluate(self, request: Request) -> Decision:
        if not self.target.matches(request):
            return Decision.NOT_APPLICABLE
        if self.condition is not None and not self.condition.evaluate(request):
            return Decision.NOT_APPLICABLE
        return self.effect.decision

    def __repr__(self) -> str:
        return f"Rule({self.rule_id!r}, {self.effect.value})"


class Policy:
    """A policy: target, rules under a combining algorithm, obligations."""

    def __init__(
        self,
        policy_id: str,
        target: Optional[Target] = None,
        rules: Iterable[Rule] = (),
        rule_combining: str = "first-applicable",
        obligations: Iterable[Obligation] = (),
        description: str = "",
    ):
        if not policy_id:
            raise XacmlError("policy needs a policy id")
        self.policy_id = policy_id
        self.target = target or Target()
        self.rules: List[Rule] = list(rules)
        if not self.rules:
            raise XacmlError(f"policy {policy_id!r} has no rules")
        self.rule_combining = rule_combining
        self.obligations: Tuple[Obligation, ...] = tuple(obligations)
        self.description = description

    def evaluate(self, request: Request) -> Decision:
        """Evaluate this policy alone (target, then combined rules)."""
        from repro.xacml.combining import RuleCombiningAlgorithm

        if not self.target.matches(request):
            return Decision.NOT_APPLICABLE
        algorithm = RuleCombiningAlgorithm.get(self.rule_combining)
        return algorithm.combine(self.rules, request)

    def obligations_for(self, decision: Decision) -> List[Obligation]:
        """The obligations whose FulfillOn matches *decision*."""
        if decision not in (Decision.PERMIT, Decision.DENY):
            return []
        return [
            obligation
            for obligation in self.obligations
            if obligation.fulfill_on.decision is decision
        ]

    def __repr__(self) -> str:
        return (
            f"Policy({self.policy_id!r}, rules={len(self.rules)}, "
            f"obligations={len(self.obligations)})"
        )
