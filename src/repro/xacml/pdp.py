"""The Policy Decision Point.

"The PDP manages policies and evaluates user requests against the stored
policies, the result of which are permit or deny decisions ... In
addition to permit/deny decision, the PDP also returns a set of
obligations to the PEP." (paper Section 2.1)

The seed implementation scanned every loaded policy for every request.
This PDP adds two fast paths, both individually switchable so the seed
behaviour stays available as a reference mode for differential testing
(:meth:`PolicyDecisionPoint.reference`):

- **indexed candidate selection** — the store's target index narrows the
  scan to the plausibly applicable policies (see
  :meth:`~repro.xacml.store.PolicyStore.policies_for`);
- **decision caching** — an LRU cache from the request fingerprint to
  the full response (decision, obligations, deciding policy).  The cache
  is cleared on *every* store event, including loads: a newly loaded
  policy can turn a cached NotApplicable into a Permit just as a removal
  can revoke a cached Permit.

Both paths are decision- and obligation-identical to the linear scan for
the built-in combining algorithms, which ignore NotApplicable policies.
A custom :class:`~repro.xacml.combining.PolicyCombiningAlgorithm` that
is sensitive to non-applicable entries must use a reference PDP.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.xacml.combining import PolicyCombiningAlgorithm
from repro.xacml.request import Request
from repro.xacml.response import Decision, Response
from repro.xacml.store import PolicyStore

#: Default number of cached decisions.
DEFAULT_CACHE_SIZE = 4096


class PolicyDecisionPoint:
    """Evaluates requests against a :class:`PolicyStore`."""

    def __init__(
        self,
        store: Optional[PolicyStore] = None,
        combining: str = "first-applicable",
        use_index: bool = True,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ):
        self.store = store if store is not None else PolicyStore()
        self.combining = combining
        self.use_index = use_index
        self.cache_size = cache_size
        #: Number of evaluations performed (exported to the benchmarks).
        self.evaluations = 0
        self.cache_hits = 0
        self.cache_misses = 0
        #: Number of store events that flushed the decision cache.
        self.cache_invalidations = 0
        self._cache: "OrderedDict[tuple, Response]" = OrderedDict()
        # Only a caching PDP needs store events (the index lives in the
        # store itself), so cache-less PDPs — reference mode included —
        # don't pin themselves to the store's listener list.
        if cache_size > 0:
            self.store.add_listener(self._on_store_event)

    @classmethod
    def reference(
        cls,
        store: Optional[PolicyStore] = None,
        combining: str = "first-applicable",
    ) -> "PolicyDecisionPoint":
        """A PDP on the seed linear-scan path: no index, no cache."""
        return cls(store, combining, use_index=False, cache_size=0)

    def detach(self) -> None:
        """Unregister from the store and drop the cache.

        Call when discarding a transient PDP over a long-lived store, so
        the store's listener list doesn't keep the PDP (and its cache)
        alive and invoked forever.
        """
        self.store.remove_listener(self._on_store_event)
        self._cache.clear()

    def _on_store_event(self, event: str, policy) -> None:
        # Any change to the policy population can change any decision
        # (loads included — a cached NotApplicable may become Permit), so
        # revocation correctness requires a full flush.
        if self._cache:
            self._cache.clear()
        self.cache_invalidations += 1

    def evaluate(self, request: Request) -> Response:
        """Evaluate *request*; return decision + deciding policy's obligations."""
        self.evaluations += 1
        caching = self.cache_size > 0
        if caching:
            key = request.fingerprint()
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.cache_hits += 1
                return cached
            self.cache_misses += 1
        response = self._evaluate_uncached(request)
        if caching:
            self._cache[key] = response
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return response

    def _evaluate_uncached(self, request: Request) -> Response:
        algorithm = PolicyCombiningAlgorithm.get(self.combining)
        candidates = (
            self.store.policies_for(request)
            if self.use_index
            else self.store.policies()
        )
        decision, policy = algorithm.combine(candidates, request)
        if policy is None:
            return Response(
                Decision.NOT_APPLICABLE,
                status_message="no applicable policy",
            )
        return Response(
            decision,
            obligations=policy.obligations_for(decision),
            policy_id=policy.policy_id,
        )

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def cache_stats(self) -> dict:
        """Counters for monitoring, benchmarks and tests."""
        return {
            "entries": len(self._cache),
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "invalidations": self.cache_invalidations,
            "hit_rate": self.cache_hit_rate,
        }
