"""The Policy Decision Point.

"The PDP manages policies and evaluates user requests against the stored
policies, the result of which are permit or deny decisions ... In
addition to permit/deny decision, the PDP also returns a set of
obligations to the PEP." (paper Section 2.1)
"""

from __future__ import annotations

from typing import Optional

from repro.xacml.combining import PolicyCombiningAlgorithm
from repro.xacml.request import Request
from repro.xacml.response import Decision, Response
from repro.xacml.store import PolicyStore


class PolicyDecisionPoint:
    """Evaluates requests against a :class:`PolicyStore`."""

    def __init__(
        self,
        store: Optional[PolicyStore] = None,
        combining: str = "first-applicable",
    ):
        self.store = store if store is not None else PolicyStore()
        self.combining = combining
        #: Number of evaluations performed (exported to the benchmarks).
        self.evaluations = 0

    def evaluate(self, request: Request) -> Response:
        """Evaluate *request*; return decision + deciding policy's obligations."""
        self.evaluations += 1
        algorithm = PolicyCombiningAlgorithm.get(self.combining)
        decision, policy = algorithm.combine(self.store.policies(), request)
        if policy is None:
            return Response(
                Decision.NOT_APPLICABLE,
                status_message="no applicable policy",
            )
        return Response(
            decision,
            obligations=policy.obligations_for(decision),
            policy_id=policy.policy_id,
        )
