"""The Policy Decision Point.

"The PDP manages policies and evaluates user requests against the stored
policies, the result of which are permit or deny decisions ... In
addition to permit/deny decision, the PDP also returns a set of
obligations to the PEP." (paper Section 2.1)

The seed implementation scanned every loaded policy for every request.
This PDP adds two fast paths, both individually switchable so the seed
behaviour stays available as a reference mode for differential testing
(:meth:`PolicyDecisionPoint.reference`):

- **indexed candidate selection** — the store's target index narrows the
  scan to the plausibly applicable policies (see
  :meth:`~repro.xacml.store.PolicyStore.policies_for`);
- **decision caching** — an LRU cache from the request fingerprint to
  the full response (decision, obligations, deciding policy), with
  *per-policy* invalidation: every entry is bucketed by the candidate
  policy ids that produced it, so removing or updating policy P evicts
  only P's bucket (plus, for updates, the entries the new version could
  newly reach) while unrelated hot entries stay warm.  ``load`` events
  still flush wholesale — a brand-new policy can turn any cached
  NotApplicable into a Permit, and it has no bucket yet.

Why targeted eviction is sound (given the index's over-approximation
guarantee — a policy absent from a request's candidate set can never
be applicable to it):

- ``removed``: entries that never considered P cannot change when P
  disappears — evicting P's bucket alone is exact;
- ``updated``: P's bucket covers every entry the *old* version could
  have influenced; the *new* version may newly match requests that
  never saw P, so entries whose stored request the new target could
  plausibly match (probed through a single-policy
  :class:`~repro.xacml.index.PolicyIndex`) are evicted too.

Both paths are decision- and obligation-identical to the linear scan for
the built-in combining algorithms, which ignore NotApplicable policies.
A custom :class:`~repro.xacml.combining.PolicyCombiningAlgorithm` that
is sensitive to non-applicable entries must use a reference PDP.

This PDP is also the reference mode for the *sharded* engine: a
:class:`~repro.xacml.sharding.ShardedPDP` over N shard stores must be
decision-identical to one ``PolicyDecisionPoint.reference()`` over a
single store holding the same policies (the sharding differential
harness pins it), and each shard internally runs one of these PDPs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, Optional, Set

from repro.xacml.combining import PolicyCombiningAlgorithm
from repro.xacml.request import Request
from repro.xacml.response import Decision, Response
from repro.xacml.store import PolicyStore

#: Default number of cached decisions.
DEFAULT_CACHE_SIZE = 4096


def decide(candidates, request: Request, combining: str) -> Response:
    """Combine *candidates* (in evaluation order) into one :class:`Response`.

    The single authoritative decision-assembly step: both the per-store
    PDP below and the cross-shard scatter path of
    :class:`~repro.xacml.sharding.ShardedPDP` build their responses here,
    so the two can only diverge in candidate *selection*, never in how a
    candidate list turns into a decision.
    """
    algorithm = PolicyCombiningAlgorithm.get(combining)
    decision, policy = algorithm.combine(candidates, request)
    if policy is None:
        return Response(
            Decision.NOT_APPLICABLE,
            status_message="no applicable policy",
        )
    return Response(
        decision,
        obligations=policy.obligations_for(decision),
        policy_id=policy.policy_id,
    )


class _CacheEntry:
    """One cached decision: the response, the request that produced it,
    and the candidate-policy ids considered (the entry's buckets)."""

    __slots__ = ("response", "request", "candidate_ids")

    def __init__(self, response: Response, request: Request, candidate_ids: FrozenSet[str]):
        self.response = response
        self.request = request
        self.candidate_ids = candidate_ids


class DecisionCache:
    """An LRU of request fingerprints → full responses, invalidated per
    policy through store events.

    The caching machinery the module docstring describes, factored out of
    the PDP so every decision-caching tier shares one implementation: the
    per-store PDP below and the cross-shard *scatter* cache of
    :class:`~repro.xacml.sharding.ShardedPDP` (which feeds it bus events
    instead of store events — same contract, same soundness argument).
    Callers own thread-safety: the PDP runs it single-threaded, the
    scatter path serialises access behind its single-flight lock.
    """

    __slots__ = (
        "capacity", "hits", "misses", "invalidations", "full_flushes",
        "targeted_evictions", "entries", "buckets",
    )

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        #: Store events that invalidated cache state (any kind).
        self.invalidations = 0
        #: Events that flushed the whole cache (loads).
        self.full_flushes = 0
        #: Entries evicted by targeted (per-policy) invalidation.
        self.targeted_evictions = 0
        self.entries: "OrderedDict[tuple, _CacheEntry]" = OrderedDict()
        #: policy id → cache keys of the entries that considered it.
        self.buckets: Dict[str, Set[tuple]] = {}

    def __len__(self) -> int:
        return len(self.entries)

    def get(self, key: tuple) -> Optional[Response]:
        """The cached response for *key*, refreshed to most-recent, or None."""
        entry = self.entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.entries.move_to_end(key)
        self.hits += 1
        return entry.response

    def put(
        self,
        key: tuple,
        response: Response,
        request: Request,
        candidate_ids: FrozenSet[str],
    ) -> None:
        """Insert a decision, bucket it by candidate ids, trim to capacity."""
        self.entries[key] = _CacheEntry(response, request, candidate_ids)
        for policy_id in candidate_ids:
            self.buckets.setdefault(policy_id, set()).add(key)
        while len(self.entries) > self.capacity:
            self.drop(next(iter(self.entries)))

    def on_store_event(self, event: str, policy) -> None:
        """React to one ``loaded``/``updated``/``removed`` event."""
        self.invalidations += 1
        if event == "removed":
            self.evict_bucket(policy.policy_id)
        elif event == "updated":
            self.evict_bucket(policy.policy_id)
            self.evict_newly_matching(policy)
        else:
            # "loaded" (and any unknown event, conservatively): a new
            # policy can change any decision — NotApplicable may become
            # Permit — and it has no bucket yet, so flush wholesale.
            self.flush()

    def flush(self) -> None:
        if self.entries:
            self.entries.clear()
            self.buckets.clear()
        self.full_flushes += 1

    def drop(self, key: tuple) -> None:
        """Remove one entry and unlink it from every bucket it is in."""
        entry = self.entries.pop(key, None)
        if entry is None:
            return
        for policy_id in entry.candidate_ids:
            bucket = self.buckets.get(policy_id)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self.buckets[policy_id]

    def evict_bucket(self, policy_id: str) -> None:
        """Evict every entry whose decision considered *policy_id*."""
        for key in self.buckets.pop(policy_id, ()):
            self.targeted_evictions += 1
            self.drop(key)

    def evict_newly_matching(self, policy) -> None:
        """Evict entries the updated *policy*'s new target could reach.

        Probes each surviving entry's stored request through a
        single-policy index: a non-empty candidate set means the new
        version plausibly matches that request, so the entry may be
        stale even though the old version never considered it.
        Requests only ever gain attributes, so the probe stays an
        over-approximation even for a caller-mutated request object.
        """
        from repro.xacml.index import PolicyIndex

        probe = PolicyIndex()
        probe.add(policy)
        stale = [
            key
            for key, entry in self.entries.items()
            if probe.candidate_ids(entry.request)
        ]
        for key in stale:
            self.targeted_evictions += 1
            self.drop(key)

    def stats(self) -> dict:
        """A fresh counter snapshot (never a live/shared mapping)."""
        lookups = self.hits + self.misses
        return {
            "entries": len(self.entries),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "full_flushes": self.full_flushes,
            "targeted_evictions": self.targeted_evictions,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }


class PolicyDecisionPoint:
    """Evaluates requests against a :class:`PolicyStore`."""

    def __init__(
        self,
        store: Optional[PolicyStore] = None,
        combining: str = "first-applicable",
        use_index: bool = True,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ):
        self.store = store if store is not None else PolicyStore()
        self.combining = combining
        self.use_index = use_index
        self.cache_size = cache_size
        #: Number of evaluations performed (exported to the benchmarks).
        self.evaluations = 0
        self.cache = DecisionCache(cache_size)
        # Only a caching PDP needs store events (the index lives in the
        # store itself), so cache-less PDPs — reference mode included —
        # don't pin themselves to the store's listener list.
        if cache_size > 0:
            self.store.add_listener(self._on_store_event)

    @classmethod
    def reference(
        cls,
        store: Optional[PolicyStore] = None,
        combining: str = "first-applicable",
    ) -> "PolicyDecisionPoint":
        """A PDP on the seed linear-scan path: no index, no cache."""
        return cls(store, combining, use_index=False, cache_size=0)

    def detach(self) -> None:
        """Unregister from the store and drop the cache.

        Call when discarding a transient PDP over a long-lived store, so
        the store's listener list doesn't keep the PDP (and its cache)
        alive and invoked forever.
        """
        self.store.remove_listener(self._on_store_event)
        self.cache.entries.clear()
        self.cache.buckets.clear()

    # -- invalidation -----------------------------------------------------------

    def _on_store_event(self, event: str, policy) -> None:
        self.cache.on_store_event(event, policy)

    def flush_cache(self) -> None:
        """Drop every cached decision (counted as a full flush).

        For callers that change decision-relevant state the store cannot
        observe — e.g. switching the combining algorithm — and for
        benchmarks that need cold caches between rounds.
        """
        self.cache.flush()

    # -- evaluation -------------------------------------------------------------

    def evaluate(self, request: Request) -> Response:
        """Evaluate *request*; return decision + deciding policy's obligations."""
        self.evaluations += 1
        if self.cache_size <= 0:
            # Cache-less PDPs (reference mode included) skip fingerprint
            # and candidate-id bookkeeping entirely — seed-identical work.
            return self._decide(self._candidates(request), request)
        key = request.fingerprint()
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        candidates = self._candidates(request)
        response = self._decide(candidates, request)
        self.cache.put(
            key, response, request, frozenset(p.policy_id for p in candidates)
        )
        return response

    def _candidates(self, request: Request):
        return (
            self.store.policies_for(request)
            if self.use_index
            else self.store.policies()
        )

    def _decide(self, candidates, request: Request) -> Response:
        return decide(candidates, request, self.combining)

    # Counter names predating the DecisionCache extraction — kept as the
    # public monitoring surface (tests and benchmarks read them).

    @property
    def cache_hits(self) -> int:
        return self.cache.hits

    @property
    def cache_misses(self) -> int:
        return self.cache.misses

    @property
    def cache_invalidations(self) -> int:
        return self.cache.invalidations

    @property
    def cache_full_flushes(self) -> int:
        return self.cache.full_flushes

    @property
    def cache_targeted_evictions(self) -> int:
        return self.cache.targeted_evictions

    @property
    def _cache(self) -> "OrderedDict[tuple, _CacheEntry]":
        return self.cache.entries

    @property
    def _buckets(self) -> Dict[str, Set[tuple]]:
        return self.cache.buckets

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache.hits + self.cache.misses
        return self.cache.hits / total if total else 0.0

    def cache_stats(self) -> dict:
        """A fresh counter snapshot for monitoring, benchmarks and tests."""
        return self.cache.stats()
