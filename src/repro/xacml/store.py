"""The policy store: loaded policies, keyed by policy id.

The data server "keeps track of policies loaded" (paper Section 3.3);
removal and update are first-class operations because they trigger
revocation of spawned query graphs.  The store supports change listeners
so the query-graph manager can react to policy removal/modification.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import PolicyStoreError
from repro.xacml.policy import Policy

#: Signature of change listeners: (event, policy) with event in
#: {"loaded", "removed", "updated"}.
ChangeListener = Callable[[str, Policy], None]


class PolicyStore:
    """An in-memory, observable collection of policies."""

    def __init__(self):
        self._policies: Dict[str, Policy] = {}
        self._listeners: List[ChangeListener] = []

    def add_listener(self, listener: ChangeListener) -> None:
        self._listeners.append(listener)

    def _notify(self, event: str, policy: Policy) -> None:
        for listener in list(self._listeners):
            listener(event, policy)

    def load(self, policy: Policy) -> None:
        """Load a new policy; duplicate ids are rejected (use update)."""
        if policy.policy_id in self._policies:
            raise PolicyStoreError(f"policy {policy.policy_id!r} is already loaded")
        self._policies[policy.policy_id] = policy
        self._notify("loaded", policy)

    def update(self, policy: Policy) -> None:
        """Replace a loaded policy with a new version.

        Section 3.3: modifying a policy immediately withdraws every query
        graph spawned from it — listeners implement that reaction.
        """
        if policy.policy_id not in self._policies:
            raise PolicyStoreError(f"policy {policy.policy_id!r} is not loaded")
        self._policies[policy.policy_id] = policy
        self._notify("updated", policy)

    def remove(self, policy_id: str) -> Policy:
        if policy_id not in self._policies:
            raise PolicyStoreError(f"policy {policy_id!r} is not loaded")
        policy = self._policies.pop(policy_id)
        self._notify("removed", policy)
        return policy

    def get(self, policy_id: str) -> Optional[Policy]:
        return self._policies.get(policy_id)

    def policies(self) -> List[Policy]:
        """All loaded policies, in load order."""
        return list(self._policies.values())

    def __contains__(self, policy_id: str) -> bool:
        return policy_id in self._policies

    def __len__(self) -> int:
        return len(self._policies)
