"""The policy store: loaded policies, keyed by policy id.

The data server "keeps track of policies loaded" (paper Section 3.3);
removal and update are first-class operations because they trigger
revocation of spawned query graphs.  The store supports change listeners
so the query-graph manager can react to policy removal/modification.

The store also maintains a :class:`~repro.xacml.index.PolicyIndex` over
the loaded targets, kept coherent through the same change-listener
mechanism (the store registers its own listener first, so the index is
already consistent when external listeners — cache invalidation, graph
revocation — observe an event).  :meth:`policies_for` uses it to return
only the plausibly applicable policies for a request, in load order.

A sharded deployment (:mod:`repro.xacml.sharding`) composes N of these
stores behind one facade; the single store remains the reference mode
its differential harness compares against, which is why :meth:`load`
accepts an explicit sequence pin.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.errors import PolicyStoreError
from repro.xacml.policy import Policy

if TYPE_CHECKING:
    from repro.xacml.request import Request

#: Signature of change listeners: (event, policy) with event in
#: {"loaded", "removed", "updated"}.
ChangeListener = Callable[[str, Policy], None]


class PolicyStore:
    """An in-memory, observable collection of policies."""

    def __init__(self):
        from repro.xacml.index import PolicyIndex

        self._policies: Dict[str, Policy] = {}
        self._listeners: List[ChangeListener] = []
        self._index = PolicyIndex()
        #: policy id → load sequence number; updates keep the original
        #: position, matching dict insertion-order semantics.
        self._sequence: Dict[str, int] = {}
        self._next_sequence = 0
        self.add_listener(self._maintain_index)

    def add_listener(self, listener: ChangeListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: ChangeListener) -> None:
        """Unregister a listener; unknown listeners are ignored."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _maintain_index(self, event: str, policy: Policy) -> None:
        if event == "loaded":
            self._index.add(policy)
        elif event == "updated":
            self._index.replace(policy)
        elif event == "removed":
            self._sequence.pop(policy.policy_id, None)
            self._index.discard(policy.policy_id)

    def _notify(self, event: str, policy: Policy) -> None:
        for listener in list(self._listeners):
            listener(event, policy)

    def load(self, policy: Policy, sequence: Optional[int] = None) -> None:
        """Load a new policy; duplicate ids are rejected (use update).

        *sequence* pins the policy's evaluation-order position instead of
        appending it.  A sharded deployment uses this so a policy whose
        new version migrates it onto a different shard keeps its global
        load-order position there (``update`` preserves position in a
        single store, and the shard-local candidate order must stay a
        subsequence of the global one for decision equivalence).
        """
        if policy.policy_id in self._policies:
            raise PolicyStoreError(f"policy {policy.policy_id!r} is already loaded")
        self._policies[policy.policy_id] = policy
        if sequence is None:
            sequence = self._next_sequence
        self._sequence[policy.policy_id] = sequence
        self._next_sequence = max(self._next_sequence, sequence + 1)
        self._notify("loaded", policy)

    def update(self, policy: Policy) -> None:
        """Replace a loaded policy with a new version.

        Section 3.3: modifying a policy immediately withdraws every query
        graph spawned from it — listeners implement that reaction.
        """
        if policy.policy_id not in self._policies:
            raise PolicyStoreError(f"policy {policy.policy_id!r} is not loaded")
        self._policies[policy.policy_id] = policy
        self._notify("updated", policy)

    def remove(self, policy_id: str) -> Policy:
        if policy_id not in self._policies:
            raise PolicyStoreError(f"policy {policy_id!r} is not loaded")
        policy = self._policies.pop(policy_id)
        self._notify("removed", policy)
        return policy

    def get(self, policy_id: str) -> Optional[Policy]:
        return self._policies.get(policy_id)

    def policies(self) -> List[Policy]:
        """All loaded policies, in load order."""
        return list(self._policies.values())

    def policies_for(self, request: "Request") -> List[Policy]:
        """The policies whose target could match *request*, in load order.

        A sound over-approximation of the applicable set (see
        :mod:`repro.xacml.index`): evaluating only these candidates with
        any combining algorithm that ignores NotApplicable policies gives
        exactly the decision of evaluating :meth:`policies`.
        """
        candidates = self._index.candidate_ids(request)
        if not candidates:
            return []
        sequence = self._sequence
        policies = self._policies
        return [
            policies[policy_id]
            for policy_id in sorted(candidates, key=sequence.__getitem__)
        ]

    @property
    def index(self):
        """The live target index (read-only use: stats, tests)."""
        return self._index

    def __contains__(self, policy_id: str) -> bool:
        return policy_id in self._policies

    def __len__(self) -> int:
        return len(self._policies)
