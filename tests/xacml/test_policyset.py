"""Tests for XACML policy sets."""

import pytest

from repro.errors import XacmlError
from repro.xacml.policy import Policy, Rule, Target
from repro.xacml.policyset import PolicySet
from repro.xacml.request import Request
from repro.xacml.response import Decision, Effect, Obligation


def permit_policy(policy_id, subject=None, obligations=()):
    return Policy(
        policy_id,
        target=Target.for_ids(subject=subject),
        rules=[Rule(f"{policy_id}:r", Effect.PERMIT)],
        obligations=obligations,
    )


def deny_policy(policy_id, subject=None):
    return Policy(
        policy_id,
        target=Target.for_ids(subject=subject),
        rules=[Rule(f"{policy_id}:r", Effect.DENY)],
    )


class TestEvaluation:
    def test_needs_children(self):
        with pytest.raises(XacmlError):
            PolicySet("empty")

    def test_target_gates_whole_set(self):
        policy_set = PolicySet(
            "agency",
            target=Target.for_ids(resource="weather"),
            children=[permit_policy("p1")],
        )
        assert policy_set.evaluate(Request.simple("u", "gps")) is Decision.NOT_APPLICABLE
        assert policy_set.evaluate(Request.simple("u", "weather")) is Decision.PERMIT

    def test_first_applicable_resolution(self):
        policy_set = PolicySet(
            "agency",
            children=[
                deny_policy("blacklist", subject="banned"),
                permit_policy("default"),
            ],
        )
        assert policy_set.evaluate(Request.simple("banned", "r")) is Decision.DENY
        assert policy_set.evaluate(Request.simple("anyone", "r")) is Decision.PERMIT

    def test_deny_overrides(self):
        policy_set = PolicySet(
            "strict",
            children=[permit_policy("p"), deny_policy("d")],
            policy_combining="deny-overrides",
        )
        assert policy_set.evaluate(Request.simple("u", "r")) is Decision.DENY

    def test_deciding_leaf_through_nesting(self):
        inner = PolicySet("inner", children=[permit_policy("leaf", subject="LTA")])
        outer = PolicySet("outer", children=[deny_policy("d", subject="x"), inner])
        decision, leaf = outer.evaluate_with_policy(Request.simple("LTA", "r"))
        assert decision is Decision.PERMIT
        assert leaf.policy_id == "leaf"

    def test_flatten(self):
        inner = PolicySet("inner", children=[permit_policy("a"), permit_policy("b")])
        outer = PolicySet("outer", children=[inner, permit_policy("c")])
        assert [p.policy_id for p in outer.flatten()] == ["a", "b", "c"]


class TestObligationAccumulation:
    def test_set_and_leaf_obligations_combined(self):
        audit = Obligation("org:audit", Effect.PERMIT)
        leaf_obligation = Obligation("stream:filter", Effect.PERMIT)
        policy_set = PolicySet(
            "org",
            children=[permit_policy("leaf", obligations=[leaf_obligation])],
            obligations=[audit],
        )
        decision, obligations = policy_set.accumulated_obligations(
            Request.simple("u", "r")
        )
        assert decision is Decision.PERMIT
        assert [o.obligation_id for o in obligations] == ["org:audit", "stream:filter"]

    def test_nested_accumulation_order_outermost_first(self):
        leaf = permit_policy("leaf", obligations=[Obligation("leaf:ob", Effect.PERMIT)])
        inner = PolicySet(
            "inner", children=[leaf],
            obligations=[Obligation("inner:ob", Effect.PERMIT)],
        )
        outer = PolicySet(
            "outer", children=[inner],
            obligations=[Obligation("outer:ob", Effect.PERMIT)],
        )
        _, obligations = outer.accumulated_obligations(Request.simple("u", "r"))
        assert [o.obligation_id for o in obligations] == [
            "outer:ob", "inner:ob", "leaf:ob",
        ]

    def test_not_applicable_yields_nothing(self):
        policy_set = PolicySet(
            "org",
            target=Target.for_ids(resource="weather"),
            children=[permit_policy("leaf")],
            obligations=[Obligation("org:audit", Effect.PERMIT)],
        )
        decision, obligations = policy_set.accumulated_obligations(
            Request.simple("u", "gps")
        )
        assert decision is Decision.NOT_APPLICABLE
        assert obligations == []

    def test_deny_obligations_filtered(self):
        policy_set = PolicySet(
            "org",
            children=[permit_policy("leaf")],
            obligations=[
                Obligation("on-permit", Effect.PERMIT),
                Obligation("on-deny", Effect.DENY),
            ],
        )
        _, obligations = policy_set.accumulated_obligations(Request.simple("u", "r"))
        assert [o.obligation_id for o in obligations] == ["on-permit"]


class TestIntegrationWithStreamObligations:
    def test_policy_set_drives_obligation_graph(self):
        """A per-agency set whose leaf carries a stream query graph."""
        from repro.core.obligations import graph_to_obligations, obligations_to_graph
        from repro.streams.graph import QueryGraph
        from repro.streams.operators import FilterOperator

        graph = QueryGraph("weather").append(FilterOperator("rainrate > 5"))
        leaf = permit_policy("nea:lta", subject="LTA",
                             obligations=graph_to_obligations(graph))
        agency = PolicySet(
            "nea", target=Target.for_ids(resource=None), children=[leaf],
        )
        decision, obligations = agency.accumulated_obligations(
            Request.simple("LTA", "weather")
        )
        assert decision is Decision.PERMIT
        rebuilt = obligations_to_graph(obligations, "weather")
        assert rebuilt.filter_operator.condition.to_condition_string() == "rainrate > 5"
