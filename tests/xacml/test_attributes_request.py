"""Tests for XACML attributes and request contexts."""

import pytest

from repro.errors import XacmlError
from repro.xacml.attributes import (
    Attribute,
    AttributeCategory,
    AttributeValue,
    XS_BOOLEAN,
    XS_DOUBLE,
    XS_INTEGER,
    XS_STRING,
)
from repro.xacml.request import Request


class TestAttributeValue:
    def test_constructors(self):
        assert AttributeValue.string("a").datatype == XS_STRING
        assert AttributeValue.integer(5).value == 5
        assert AttributeValue.double(1.5).datatype == XS_DOUBLE
        assert AttributeValue.boolean(True).value is True

    def test_infer(self):
        assert AttributeValue.infer("a").datatype == XS_STRING
        assert AttributeValue.infer(3).datatype == XS_INTEGER
        assert AttributeValue.infer(3.5).datatype == XS_DOUBLE
        assert AttributeValue.infer(True).datatype == XS_BOOLEAN

    def test_infer_rejects_other(self):
        with pytest.raises(XacmlError):
            AttributeValue.infer([1, 2])

    def test_parse_round_trip(self):
        for value in (
            AttributeValue.string("hello"),
            AttributeValue.integer(-4),
            AttributeValue.double(2.25),
            AttributeValue.boolean(False),
        ):
            parsed = AttributeValue.parse(value.datatype, value.serialize())
            assert parsed == value

    def test_parse_errors(self):
        with pytest.raises(XacmlError):
            AttributeValue.parse(XS_INTEGER, "abc")
        with pytest.raises(XacmlError):
            AttributeValue.parse(XS_BOOLEAN, "maybe")

    def test_unknown_datatype_preserved(self):
        value = AttributeValue.parse("urn:custom", "raw")
        assert value.value == "raw"
        assert value.datatype == "urn:custom"


class TestRequest:
    def test_simple_constructor(self):
        request = Request.simple("LTA", "weather", "read")
        assert request.subject_id == "LTA"
        assert request.resource_id == "weather"
        assert request.action_id == "read"

    def test_environment_attributes(self):
        request = Request.simple("u", "r", environment={"hour": 13})
        values = request.values_of(AttributeCategory.ENVIRONMENT, "hour")
        assert values[0].value == 13

    def test_multi_valued_attribute(self):
        request = Request.simple("u", "r")
        request.add(
            Attribute(
                AttributeCategory.SUBJECT, "role", AttributeValue.string("analyst")
            )
        )
        request.add(
            Attribute(
                AttributeCategory.SUBJECT, "role", AttributeValue.string("admin")
            )
        )
        roles = request.values_of(AttributeCategory.SUBJECT, "role")
        assert [v.value for v in roles] == ["analyst", "admin"]

    def test_first_value_missing(self):
        request = Request()
        assert request.first_value(AttributeCategory.SUBJECT, "x") is None
        assert request.subject_id is None

    def test_require_subject(self):
        with pytest.raises(XacmlError):
            Request().require_subject()

    def test_all_attributes_ordering(self):
        request = Request.simple("u", "r", "read")
        ids = [a.attribute_id for a in request.all_attributes()]
        assert len(ids) == 3
