"""Supervision pins for :class:`ProcessShardPool` (PR 7 tentpole).

The multidriver suite pins failure *containment*; this module pins the
*rebuild* semantics: state replay (snapshot + pinned sequences +
catch-up of mutations that landed while the worker was down), the
sliding-window restart budget, and the health/stats surfaces.

A single-shard pool is used where placement is irrelevant — every
policy and request lands on shard 0, so "mutate while down" scenarios
need no placement arithmetic.
"""

import time

import pytest

from repro.errors import ShardUnavailableError
from repro.xacml.policy import Policy, Rule, Target
from repro.xacml.request import Request
from repro.xacml.response import Decision, Effect
from repro.xacml.sharding import ProcessShardPool, ShardedPolicyStore

JOIN_TIMEOUT = 15.0


def policy(policy_id, resource, effect=Effect.PERMIT):
    return Policy(
        policy_id,
        target=Target.for_ids(resource=resource),
        rules=[Rule(f"{policy_id}:r", effect)],
    )


def wait_until(predicate, timeout=JOIN_TIMEOUT):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def wait_for_status(pool, shard_id, status, timeout=JOIN_TIMEOUT):
    return wait_until(
        lambda: pool.health()["statuses"][shard_id] == status, timeout
    )


def evaluate_with_retries(pool, request, timeout=JOIN_TIMEOUT):
    deadline = time.perf_counter() + timeout
    while True:
        try:
            return pool.evaluate(request)
        except ShardUnavailableError:
            if time.perf_counter() >= deadline:
                raise
            time.sleep(0.02)


class TestCatchUpReplay:
    def test_mutations_during_downtime_are_replayed_into_the_rebuild(self):
        store = ShardedPolicyStore(1)
        store.load(policy("p:a", "alpha"))
        request = Request.simple("u", "alpha")
        with ProcessShardPool(
            store, on_unavailable="error", restart_backoff=0.5
        ) as pool:
            assert pool.evaluate(request).decision is Decision.PERMIT
            pool.kill_worker(0)
            assert wait_until(
                lambda: pool.health()["statuses"][0] != "up"
            )
            # Mutations while the worker is down return promptly (they
            # queue for catch-up, never block on the dead shard)...
            store.update(policy("p:a", "alpha", effect=Effect.DENY))
            store.load(policy("p:b", "beta"))
            # ...and the rebuilt worker reflects every one of them: in
            # "error" mode a successful evaluation can only come from
            # the worker itself, so these decisions prove the replay.
            assert evaluate_with_retries(
                pool, request
            ).decision is Decision.DENY
            assert evaluate_with_retries(
                pool, Request.simple("u", "beta")
            ).policy_id == "p:b"
            assert pool.health()["worker_restarts"] == 1

    def test_catchup_backlog_is_visible_in_health(self):
        store = ShardedPolicyStore(1)
        store.load(policy("p:a", "alpha"))
        with ProcessShardPool(
            store, on_unavailable="error", restart_backoff=2.0
        ) as pool:
            pool.kill_worker(0)
            assert wait_until(
                lambda: pool.health()["statuses"][0] != "up"
            )
            store.load(policy("p:b", "beta"))
            store.load(policy("p:c", "gamma"))
            snapshot = pool.health()["shards"][0]
            assert snapshot["catchup_pending"] >= 2
            assert snapshot["last_error"] is not None
            # The backlog drains on readmission.
            assert wait_for_status(pool, 0, "up")
            assert pool.health()["shards"][0]["catchup_pending"] == 0

    def test_pinned_sequences_survive_the_rebuild(self):
        # Policy precedence under first-applicable combining follows
        # global load order; the rebuild must restore it exactly, or a
        # respawned worker would decide ties differently than before
        # the crash.
        store = ShardedPolicyStore(1)
        store.load(policy("p:first", "alpha"))
        store.load(policy("p:second", "alpha"))
        request = Request.simple("u", "alpha")
        with ProcessShardPool(
            store, on_unavailable="error", restart_backoff=0.01
        ) as pool:
            assert pool.evaluate(request).policy_id == "p:first"
            pool.kill_worker(0)
            assert wait_until(
                lambda: pool.health()["worker_restarts"] >= 1
            )
            assert evaluate_with_retries(pool, request).policy_id == "p:first"


class TestRestartBudget:
    def test_repeated_crashes_inside_the_window_degrade_the_shard(self):
        store = ShardedPolicyStore(1)
        store.load(policy("p:a", "alpha"))
        with ProcessShardPool(
            store,
            on_unavailable="error",
            max_restarts=2,
            restart_window=60.0,
            restart_backoff=0.01,
        ) as pool:
            for expected_restarts in (1, 2):
                pool.kill_worker(0)
                assert wait_until(
                    lambda: pool.health()["worker_restarts"]
                    >= expected_restarts
                )
                assert wait_for_status(pool, 0, "up")
            # Third crash inside the window: budget exhausted.
            pool.kill_worker(0)
            assert wait_for_status(pool, 0, "degraded")
            assert pool.health()["worker_restarts"] == 2
            with pytest.raises(ShardUnavailableError) as excinfo:
                pool.evaluate(Request.simple("u", "alpha"))
            assert excinfo.value.degraded and not excinfo.value.retryable

    def test_window_expiry_refreshes_the_budget(self):
        store = ShardedPolicyStore(1)
        store.load(policy("p:a", "alpha"))
        # A tiny window: each crash's budget slot expires long before
        # the next crash, so repeated kills never accumulate to
        # degradation.
        with ProcessShardPool(
            store,
            on_unavailable="error",
            max_restarts=1,
            restart_window=0.05,
            restart_backoff=0.1,
        ) as pool:
            for expected_restarts in (1, 2, 3):
                pool.kill_worker(0)
                assert wait_until(
                    lambda: pool.health()["worker_restarts"]
                    >= expected_restarts
                )
                assert wait_for_status(pool, 0, "up")
            assert pool.health()["degraded_shards"] == []


class TestHealthAndStats:
    def test_cache_stats_carry_robustness_counters(self):
        store = ShardedPolicyStore(2)
        store.load(policy("p:a", "alpha"))
        with ProcessShardPool(store) as pool:
            stats = pool.cache_stats()
            for key in (
                "worker_restarts",
                "fallback_evaluations",
                "unavailable_errors",
                "shards_unavailable",
            ):
                assert stats[key] == 0
            # While a shard is down its stats contribute zeros and the
            # snapshot says so.  (The supervisor may have already
            # restarted it by the time stats are read, so either count
            # is legitimate.)
            pool.kill_worker(0)
            assert wait_until(
                lambda: pool.health()["statuses"][0] != "up"
            )
            assert pool.cache_stats()["shards_unavailable"] in (0, 1)

    def test_unavailable_errors_counted_in_error_mode(self):
        store = ShardedPolicyStore(1)
        store.load(policy("p:a", "alpha"))
        with ProcessShardPool(
            store, on_unavailable="error", restart_backoff=5.0
        ) as pool:
            pool.kill_worker(0)
            assert wait_until(
                lambda: pool.health()["statuses"][0] != "up"
            )
            with pytest.raises(ShardUnavailableError):
                pool.evaluate(Request.simple("u", "alpha"))
            assert pool.cache_stats()["unavailable_errors"] >= 1
