"""Tests for XML serialisation and parsing of policies and requests."""

import pytest

from repro.errors import PolicyParseError
from repro.xacml.attributes import AttributeCategory, AttributeValue
from repro.xacml.policy import Condition, Policy, Rule, Target
from repro.xacml.request import Request
from repro.xacml.response import AttributeAssignment, Effect, Obligation
from repro.xacml.xml_io import (
    parse_policy_xml,
    parse_request_xml,
    policy_to_xml,
    request_to_xml,
)

#: The paper's Figure 2 obligations block, wrapped in a minimal policy.
FIGURE_2_POLICY = """
<Policy PolicyId="nea:weather" RuleCombiningAlgId="first-applicable">
  <Target/>
  <Rule RuleId="r1" Effect="Permit"/>
  <Obligations>
    <Obligation ObligationId="exacml:obligation:stream-filter" FulfillOn="Permit">
      <AttributeAssignment AttributeId="pCloud:obligation:stream-filter-condition-id"
        DataType="http://www.w3.org/2001/XMLSchema#string">rainrate &gt; 5</AttributeAssignment>
    </Obligation>
    <Obligation ObligationId="exacml:obligation:stream-map" FulfillOn="Permit">
      <AttributeAssignment AttributeId="pCloud:obligation:stream-map-attribute-id"
        DataType="http://www.w3.org/2001/XMLSchema#string">samplingtime</AttributeAssignment>
      <AttributeAssignment AttributeId="pCloud:obligation:stream-map-attribute-id"
        DataType="http://www.w3.org/2001/XMLSchema#string">rainrate</AttributeAssignment>
      <AttributeAssignment AttributeId="pCloud:obligation:stream-map-attribute-id"
        DataType="http://www.w3.org/2001/XMLSchema#string">windspeed</AttributeAssignment>
    </Obligation>
    <Obligation ObligationId="exacml:obligation:stream-window" FulfillOn="Permit">
      <AttributeAssignment AttributeId="pCloud:obligation:stream-window-step-id"
        DataType="http://www.w3.org/2001/XMLSchema#integer">2</AttributeAssignment>
      <AttributeAssignment AttributeId="pCloud:obligation:stream-window-size-id"
        DataType="http://www.w3.org/2001/XMLSchema#integer">5</AttributeAssignment>
      <AttributeAssignment AttributeId="pCloud:obligation:stream-window-type-id"
        DataType="http://www.w3.org/2001/XMLSchema#string">tuple</AttributeAssignment>
      <AttributeAssignment AttributeId="pCloud:obligation:stream-window-attr-id"
        DataType="http://www.w3.org/2001/XMLSchema#string">samplingtime:lastval</AttributeAssignment>
      <AttributeAssignment AttributeId="pCloud:obligation:stream-window-attr-id"
        DataType="http://www.w3.org/2001/XMLSchema#string">rainrate:avg</AttributeAssignment>
      <AttributeAssignment AttributeId="pCloud:obligation:stream-window-attr-id"
        DataType="http://www.w3.org/2001/XMLSchema#string">windspeed:max</AttributeAssignment>
    </Obligation>
  </Obligations>
</Policy>
"""


class TestPolicyRoundTrip:
    def build_policy(self):
        return Policy(
            "p1",
            target=Target.for_ids(subject="LTA", resource="weather", action="read"),
            rules=[
                Rule(
                    "r1",
                    Effect.PERMIT,
                    condition=Condition(
                        AttributeCategory.ENVIRONMENT,
                        "hour",
                        "integer-less-than",
                        AttributeValue.integer(18),
                    ),
                    description="business hours only",
                ),
                Rule("r2", Effect.DENY),
            ],
            rule_combining="first-applicable",
            obligations=[
                Obligation(
                    "ob1",
                    Effect.PERMIT,
                    [AttributeAssignment("k", AttributeValue.string("v"))],
                )
            ],
            description="round-trip test policy",
        )

    def test_round_trip_preserves_everything(self):
        policy = self.build_policy()
        parsed = parse_policy_xml(policy_to_xml(policy))
        assert parsed.policy_id == policy.policy_id
        assert parsed.description == policy.description
        assert parsed.rule_combining == policy.rule_combining
        assert len(parsed.rules) == 2
        assert parsed.rules[0].condition.function_id == "integer-less-than"
        assert parsed.obligations == policy.obligations

    def test_round_trip_behaviour_identical(self):
        policy = self.build_policy()
        parsed = parse_policy_xml(policy_to_xml(policy))
        ok = Request.simple("LTA", "weather", "read", environment={"hour": 9})
        late = Request.simple("LTA", "weather", "read", environment={"hour": 20})
        other = Request.simple("NEA", "weather", "read", environment={"hour": 9})
        for request in (ok, late, other):
            assert parsed.evaluate(request) == policy.evaluate(request)


class TestPaperFigure2:
    def test_parses(self):
        policy = parse_policy_xml(FIGURE_2_POLICY)
        assert len(policy.obligations) == 3
        window = policy.obligations[2]
        assert window.first_value(
            "pCloud:obligation:stream-window-size-id"
        ) == 5
        attrs = window.values_of("pCloud:obligation:stream-window-attr-id")
        assert [v.value for v in attrs] == [
            "samplingtime:lastval", "rainrate:avg", "windspeed:max",
        ]

    def test_obligations_build_figure1_graph(self):
        from repro.core.obligations import obligations_to_graph

        policy = parse_policy_xml(FIGURE_2_POLICY)
        graph = obligations_to_graph(policy.obligations, "weather")
        assert [op.kind for op in graph.operators] == ["filter", "map", "aggregate"]
        assert graph.aggregate_operator.window.size == 5
        assert graph.aggregate_operator.window.step == 2


class TestParseErrors:
    def test_not_xml(self):
        with pytest.raises(PolicyParseError):
            parse_policy_xml("this is not xml")

    def test_wrong_root(self):
        with pytest.raises(PolicyParseError):
            parse_policy_xml("<Wrong/>")

    def test_missing_policy_id(self):
        with pytest.raises(PolicyParseError):
            parse_policy_xml("<Policy><Rule RuleId='r' Effect='Permit'/></Policy>")

    def test_no_rules(self):
        with pytest.raises(PolicyParseError):
            parse_policy_xml("<Policy PolicyId='p'><Target/></Policy>")

    def test_bad_effect(self):
        with pytest.raises(PolicyParseError):
            parse_policy_xml(
                "<Policy PolicyId='p'><Rule RuleId='r' Effect='Maybe'/></Policy>"
            )


class TestRequestRoundTrip:
    def test_round_trip(self):
        request = Request.simple("LTA", "weather", "read", environment={"hour": 13})
        parsed = parse_request_xml(request_to_xml(request))
        assert parsed.subject_id == "LTA"
        assert parsed.resource_id == "weather"
        assert parsed.action_id == "read"
        assert parsed.first_value(AttributeCategory.ENVIRONMENT, "hour") == 13

    def test_wrong_root(self):
        with pytest.raises(PolicyParseError):
            parse_request_xml("<Policy/>")

    def test_unknown_section(self):
        with pytest.raises(PolicyParseError):
            parse_request_xml("<Request><Weird/></Request>")
