"""Tests for the policy store, target index, decision cache and PDP."""

import pytest

from repro.errors import PolicyStoreError
from repro.xacml.attributes import (
    SUBJECT_ID,
    Attribute,
    AttributeCategory,
    AttributeValue,
)
from repro.xacml.functions import STRING_REGEXP_MATCH
from repro.xacml.pdp import PolicyDecisionPoint
from repro.xacml.policy import Match, Policy, Rule, Target
from repro.xacml.request import Request
from repro.xacml.response import Decision, Effect, Obligation
from repro.xacml.store import PolicyStore


def make_policy(policy_id, subject=None, resource=None, effect=Effect.PERMIT,
                obligations=()):
    return Policy(
        policy_id,
        target=Target.for_ids(subject=subject, resource=resource),
        rules=[Rule(f"{policy_id}:rule", effect)],
        obligations=obligations,
    )


class TestPolicyStore:
    def test_load_get_remove(self):
        store = PolicyStore()
        store.load(make_policy("p1"))
        assert "p1" in store
        assert store.get("p1").policy_id == "p1"
        removed = store.remove("p1")
        assert removed.policy_id == "p1"
        assert "p1" not in store

    def test_duplicate_load_rejected(self):
        store = PolicyStore()
        store.load(make_policy("p1"))
        with pytest.raises(PolicyStoreError):
            store.load(make_policy("p1"))

    def test_update_requires_existing(self):
        store = PolicyStore()
        with pytest.raises(PolicyStoreError):
            store.update(make_policy("p1"))

    def test_remove_requires_existing(self):
        with pytest.raises(PolicyStoreError):
            PolicyStore().remove("p1")

    def test_listeners_see_events(self):
        store = PolicyStore()
        events = []
        store.add_listener(lambda event, policy: events.append((event, policy.policy_id)))
        store.load(make_policy("p1"))
        store.update(make_policy("p1"))
        store.remove("p1")
        assert events == [("loaded", "p1"), ("updated", "p1"), ("removed", "p1")]

    def test_load_order_preserved(self):
        store = PolicyStore()
        for i in range(5):
            store.load(make_policy(f"p{i}"))
        assert [p.policy_id for p in store.policies()] == [f"p{i}" for i in range(5)]

    def test_remove_listener(self):
        store = PolicyStore()
        events = []
        listener = lambda event, policy: events.append(event)
        store.add_listener(listener)
        store.remove_listener(listener)
        store.remove_listener(listener)  # unknown listener is ignored
        store.load(make_policy("p1"))
        assert events == []


class TestPdp:
    def test_permit_with_obligations(self):
        store = PolicyStore()
        obligation = Obligation("ob1", Effect.PERMIT)
        store.load(make_policy("p1", subject="LTA", obligations=[obligation]))
        pdp = PolicyDecisionPoint(store)
        response = pdp.evaluate(Request.simple("LTA", "anything"))
        assert response.decision is Decision.PERMIT
        assert response.permitted
        assert response.policy_id == "p1"
        assert response.obligations == (obligation,)

    def test_not_applicable(self):
        pdp = PolicyDecisionPoint(PolicyStore())
        response = pdp.evaluate(Request.simple("u", "r"))
        assert response.decision is Decision.NOT_APPLICABLE
        assert response.policy_id is None
        assert not response.permitted

    def test_deny(self):
        store = PolicyStore()
        store.load(make_policy("p1", effect=Effect.DENY))
        response = PolicyDecisionPoint(store).evaluate(Request.simple("u", "r"))
        assert response.decision is Decision.DENY

    def test_first_applicable_across_policies(self):
        store = PolicyStore()
        store.load(make_policy("p-weather", resource="weather"))
        store.load(make_policy("p-gps", resource="gps"))
        pdp = PolicyDecisionPoint(store)
        assert pdp.evaluate(Request.simple("u", "gps")).policy_id == "p-gps"

    def test_evaluation_counter(self):
        pdp = PolicyDecisionPoint(PolicyStore())
        pdp.evaluate(Request.simple("u", "r"))
        pdp.evaluate(Request.simple("u", "r"))
        assert pdp.evaluations == 2


class TestPolicyIndex:
    def test_candidates_pruned_by_target(self):
        store = PolicyStore()
        store.load(make_policy("p-weather", resource="weather"))
        store.load(make_policy("p-gps", resource="gps"))
        store.load(make_policy("p-any"))  # wildcard target
        candidates = store.policies_for(Request.simple("u", "gps"))
        assert [p.policy_id for p in candidates] == ["p-gps", "p-any"]

    def test_candidates_preserve_load_order(self):
        store = PolicyStore()
        store.load(make_policy("p-any"))
        store.load(make_policy("p-gps", resource="gps"))
        candidates = store.policies_for(Request.simple("u", "gps"))
        assert [p.policy_id for p in candidates] == ["p-any", "p-gps"]

    def test_subject_pruning(self):
        store = PolicyStore()
        store.load(make_policy("p-alice", subject="alice"))
        store.load(make_policy("p-bob", subject="bob"))
        candidates = store.policies_for(Request.simple("alice", "r"))
        assert [p.policy_id for p in candidates] == ["p-alice"]

    def test_multi_valued_subject_unions_buckets(self):
        store = PolicyStore()
        store.load(make_policy("p-alice", subject="alice"))
        store.load(make_policy("p-bob", subject="bob"))
        request = Request.simple("alice", "r")
        request.add(
            Attribute(
                AttributeCategory.SUBJECT, SUBJECT_ID, AttributeValue.string("bob")
            )
        )
        assert {p.policy_id for p in store.policies_for(request)} == {
            "p-alice",
            "p-bob",
        }

    def test_regex_target_falls_back_to_wildcard(self):
        store = PolicyStore()
        regex_target = Target(
            subjects=[[
                Match(
                    AttributeCategory.SUBJECT,
                    SUBJECT_ID,
                    AttributeValue.string("ali.*"),
                    function_id=STRING_REGEXP_MATCH,
                )
            ]]
        )
        store.load(
            Policy("p-re", target=regex_target, rules=[Rule("r", Effect.PERMIT)])
        )
        # Non-indexable target: the policy must be a candidate for any
        # subject, and the full evaluation decides.
        assert [p.policy_id for p in store.policies_for(Request.simple("alice", "r"))] == ["p-re"]
        assert [p.policy_id for p in store.policies_for(Request.simple("zoe", "r"))] == ["p-re"]

    def test_update_and_remove_maintain_index(self):
        store = PolicyStore()
        store.load(make_policy("p1", resource="weather"))
        store.update(make_policy("p1", resource="gps"))
        assert store.policies_for(Request.simple("u", "weather")) == []
        assert [p.policy_id for p in store.policies_for(Request.simple("u", "gps"))] == ["p1"]
        store.remove("p1")
        assert store.policies_for(Request.simple("u", "gps")) == []
        assert store.index.stats()["policies"] == 0

    def test_request_without_resource_only_sees_wildcards(self):
        store = PolicyStore()
        store.load(make_policy("p-weather", resource="weather"))
        store.load(make_policy("p-any"))
        request = Request()
        request.add(
            Attribute(
                AttributeCategory.SUBJECT, SUBJECT_ID, AttributeValue.string("u")
            )
        )
        assert [p.policy_id for p in store.policies_for(request)] == ["p-any"]


class TestDecisionCache:
    def test_hit_and_miss_counters(self):
        store = PolicyStore()
        store.load(make_policy("p1", subject="LTA"))
        pdp = PolicyDecisionPoint(store)
        first = pdp.evaluate(Request.simple("LTA", "weather"))
        second = pdp.evaluate(Request.simple("LTA", "weather"))
        assert first.decision is second.decision is Decision.PERMIT
        assert (pdp.cache_hits, pdp.cache_misses) == (1, 1)
        assert pdp.cache_hit_rate == 0.5
        assert pdp.cache_stats()["entries"] == 1

    def test_load_invalidates_cached_not_applicable(self):
        store = PolicyStore()
        pdp = PolicyDecisionPoint(store)
        request = Request.simple("LTA", "weather")
        assert pdp.evaluate(request).decision is Decision.NOT_APPLICABLE
        store.load(make_policy("p1", subject="LTA"))
        assert pdp.evaluate(request).decision is Decision.PERMIT

    def test_update_invalidates_cached_permit(self):
        store = PolicyStore()
        store.load(make_policy("p1", subject="LTA"))
        pdp = PolicyDecisionPoint(store)
        request = Request.simple("LTA", "weather")
        assert pdp.evaluate(request).decision is Decision.PERMIT
        store.update(make_policy("p1", subject="LTA", effect=Effect.DENY))
        assert pdp.evaluate(request).decision is Decision.DENY
        assert pdp.cache_invalidations == 1  # the update (load preceded the PDP)

    def test_remove_invalidates_cached_permit(self):
        store = PolicyStore()
        store.load(make_policy("p1", subject="LTA"))
        pdp = PolicyDecisionPoint(store)
        request = Request.simple("LTA", "weather")
        assert pdp.evaluate(request).decision is Decision.PERMIT
        store.remove("p1")
        assert pdp.evaluate(request).decision is Decision.NOT_APPLICABLE

    def test_lru_eviction(self):
        store = PolicyStore()
        store.load(make_policy("p-any"))
        pdp = PolicyDecisionPoint(store, cache_size=2)
        a, b, c = (Request.simple(s, "r") for s in ("a", "b", "c"))
        pdp.evaluate(a)
        pdp.evaluate(b)
        pdp.evaluate(a)   # refresh a; b is now least recent
        pdp.evaluate(c)   # evicts b
        hits_before = pdp.cache_hits
        pdp.evaluate(b)   # must be a miss again
        assert pdp.cache_hits == hits_before
        assert pdp.cache_stats()["entries"] == 2

    def test_reference_mode_disables_fast_paths(self):
        store = PolicyStore()
        store.load(make_policy("p1", subject="LTA"))
        pdp = PolicyDecisionPoint.reference(store)
        request = Request.simple("LTA", "weather")
        assert pdp.evaluate(request).decision is Decision.PERMIT
        assert pdp.evaluate(request).decision is Decision.PERMIT
        assert (pdp.cache_hits, pdp.cache_misses) == (0, 0)
        assert not pdp.use_index

    def test_detach_stops_invalidation_and_unpins(self):
        store = PolicyStore()
        pdp = PolicyDecisionPoint(store)
        pdp.detach()
        store.load(make_policy("p1"))
        assert pdp.cache_invalidations == 0

    def test_cacheless_pdp_registers_no_listener(self):
        store = PolicyStore()
        before = len(store._listeners)
        PolicyDecisionPoint.reference(store)
        assert len(store._listeners) == before

    def test_unrelated_remove_keeps_entries_warm(self):
        """Per-policy invalidation: removing policy P evicts only the
        entries whose candidate set contained P."""
        store = PolicyStore()
        store.load(make_policy("p-weather", resource="weather"))
        store.load(make_policy("p-gps", resource="gps"))
        pdp = PolicyDecisionPoint(store)
        weather = Request.simple("u", "weather")
        gps = Request.simple("u", "gps")
        assert pdp.evaluate(weather).policy_id == "p-weather"
        assert pdp.evaluate(gps).policy_id == "p-gps"
        store.remove("p-gps")
        # The weather entry never considered p-gps: served from cache.
        hits_before = pdp.cache_hits
        assert pdp.evaluate(weather).policy_id == "p-weather"
        assert pdp.cache_hits == hits_before + 1
        # The gps entry was in p-gps's bucket: evicted, re-evaluated.
        assert pdp.evaluate(gps).decision is Decision.NOT_APPLICABLE
        assert pdp.cache_stats()["targeted_evictions"] == 1
        assert pdp.cache_stats()["full_flushes"] == 0

    def test_unrelated_update_keeps_entries_warm(self):
        store = PolicyStore()
        store.load(make_policy("p-weather", resource="weather"))
        store.load(make_policy("p-gps", resource="gps"))
        pdp = PolicyDecisionPoint(store)
        weather = Request.simple("u", "weather")
        assert pdp.evaluate(weather).decision is Decision.PERMIT
        store.update(make_policy("p-gps", resource="gps", effect=Effect.DENY))
        hits_before = pdp.cache_hits
        assert pdp.evaluate(weather).decision is Decision.PERMIT
        assert pdp.cache_hits == hits_before + 1

    def test_update_retargeting_policy_evicts_newly_matching(self):
        """An update can make a policy newly applicable to a request
        whose cached decision never considered it — the probe must
        evict that entry."""
        store = PolicyStore()
        store.load(make_policy("p-weather", resource="weather"))
        store.load(make_policy("p-gps", resource="gps", effect=Effect.DENY))
        pdp = PolicyDecisionPoint(store)
        weather = Request.simple("u", "weather")
        assert pdp.evaluate(weather).decision is Decision.PERMIT
        # Retarget p-gps onto weather with first-applicable priority
        # (loaded... still after p-weather, so PERMIT stands) — then
        # retarget p-weather away so p-gps decides.
        store.update(make_policy("p-gps", resource="weather", effect=Effect.DENY))
        store.update(make_policy("p-weather", resource="gps"))
        assert pdp.evaluate(weather).decision is Decision.DENY

    def test_load_still_flushes_wholesale(self):
        store = PolicyStore()
        pdp = PolicyDecisionPoint(store)
        request = Request.simple("u", "weather")
        assert pdp.evaluate(request).decision is Decision.NOT_APPLICABLE
        store.load(make_policy("p1"))
        assert pdp.evaluate(request).decision is Decision.PERMIT
        assert pdp.cache_stats()["full_flushes"] == 1

    def test_lru_eviction_cleans_buckets(self):
        store = PolicyStore()
        store.load(make_policy("p-any"))
        pdp = PolicyDecisionPoint(store, cache_size=2)
        for subject in ("a", "b", "c", "d"):
            pdp.evaluate(Request.simple(subject, "r"))
        assert pdp.cache_stats()["entries"] == 2
        # Every surviving bucket key must still be a live cache entry.
        for bucket in pdp._buckets.values():
            assert all(key in pdp._cache for key in bucket)
        assert sum(len(b) for b in pdp._buckets.values()) == 2

    def test_cached_response_keeps_obligations(self):
        store = PolicyStore()
        obligation = Obligation("ob1", Effect.PERMIT)
        store.load(make_policy("p1", subject="LTA", obligations=[obligation]))
        pdp = PolicyDecisionPoint(store)
        request = Request.simple("LTA", "weather")
        assert pdp.evaluate(request).obligations == (obligation,)
        assert pdp.evaluate(request).obligations == (obligation,)
        assert pdp.cache_hits == 1
