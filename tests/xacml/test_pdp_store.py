"""Tests for the policy store and PDP."""

import pytest

from repro.errors import PolicyStoreError
from repro.xacml.pdp import PolicyDecisionPoint
from repro.xacml.policy import Policy, Rule, Target
from repro.xacml.request import Request
from repro.xacml.response import Decision, Effect, Obligation
from repro.xacml.store import PolicyStore


def make_policy(policy_id, subject=None, resource=None, effect=Effect.PERMIT,
                obligations=()):
    return Policy(
        policy_id,
        target=Target.for_ids(subject=subject, resource=resource),
        rules=[Rule(f"{policy_id}:rule", effect)],
        obligations=obligations,
    )


class TestPolicyStore:
    def test_load_get_remove(self):
        store = PolicyStore()
        store.load(make_policy("p1"))
        assert "p1" in store
        assert store.get("p1").policy_id == "p1"
        removed = store.remove("p1")
        assert removed.policy_id == "p1"
        assert "p1" not in store

    def test_duplicate_load_rejected(self):
        store = PolicyStore()
        store.load(make_policy("p1"))
        with pytest.raises(PolicyStoreError):
            store.load(make_policy("p1"))

    def test_update_requires_existing(self):
        store = PolicyStore()
        with pytest.raises(PolicyStoreError):
            store.update(make_policy("p1"))

    def test_remove_requires_existing(self):
        with pytest.raises(PolicyStoreError):
            PolicyStore().remove("p1")

    def test_listeners_see_events(self):
        store = PolicyStore()
        events = []
        store.add_listener(lambda event, policy: events.append((event, policy.policy_id)))
        store.load(make_policy("p1"))
        store.update(make_policy("p1"))
        store.remove("p1")
        assert events == [("loaded", "p1"), ("updated", "p1"), ("removed", "p1")]

    def test_load_order_preserved(self):
        store = PolicyStore()
        for i in range(5):
            store.load(make_policy(f"p{i}"))
        assert [p.policy_id for p in store.policies()] == [f"p{i}" for i in range(5)]


class TestPdp:
    def test_permit_with_obligations(self):
        store = PolicyStore()
        obligation = Obligation("ob1", Effect.PERMIT)
        store.load(make_policy("p1", subject="LTA", obligations=[obligation]))
        pdp = PolicyDecisionPoint(store)
        response = pdp.evaluate(Request.simple("LTA", "anything"))
        assert response.decision is Decision.PERMIT
        assert response.permitted
        assert response.policy_id == "p1"
        assert response.obligations == (obligation,)

    def test_not_applicable(self):
        pdp = PolicyDecisionPoint(PolicyStore())
        response = pdp.evaluate(Request.simple("u", "r"))
        assert response.decision is Decision.NOT_APPLICABLE
        assert response.policy_id is None
        assert not response.permitted

    def test_deny(self):
        store = PolicyStore()
        store.load(make_policy("p1", effect=Effect.DENY))
        response = PolicyDecisionPoint(store).evaluate(Request.simple("u", "r"))
        assert response.decision is Decision.DENY

    def test_first_applicable_across_policies(self):
        store = PolicyStore()
        store.load(make_policy("p-weather", resource="weather"))
        store.load(make_policy("p-gps", resource="gps"))
        pdp = PolicyDecisionPoint(store)
        assert pdp.evaluate(Request.simple("u", "gps")).policy_id == "p-gps"

    def test_evaluation_counter(self):
        pdp = PolicyDecisionPoint(PolicyStore())
        pdp.evaluate(Request.simple("u", "r"))
        pdp.evaluate(Request.simple("u", "r"))
        assert pdp.evaluations == 2
