"""Multi-driver regression pins for :class:`ProcessShardPool` (PR 6–7).

PR 5 shipped the pool single-driver: one FIFO of batch ids per shard,
so a second thread's responses could complete the first thread's
batches.  The tagged protocol replaces that — every command carries a
``(driver_id, sequence)`` tag and one dispatcher per worker generation
routes responses by tag.  PR 7 replaces poison-on-death with
supervision: a worker failure is contained to its shard, retried
against a budget, and degraded (never pool-fatal) once the budget is
exhausted.  These tests pin exactly those guarantees:

- two concurrent drivers with *distinct expected decisions*, under
  interleaved invalidation fan-out, never observe each other's
  responses (tag leakage would surface as a wrong policy id);
- ``close()`` during concurrent driving fails both drivers with a
  prompt :class:`PolicyStoreError` — no hang, no stranded thread —
  and is idempotent, including under concurrent double-close;
- a killed worker fails only its own shard's traffic (typed,
  retryable :class:`ShardUnavailableError`, raised promptly — never by
  waiting out the response timeout), recovers automatically without
  pool reconstruction, and in ``"fallback"`` mode is invisible to
  drivers entirely;
- exhausting the restart budget degrades only the dead shard; healthy
  shards keep serving, and ``revive()`` re-arms the degraded one.
"""

import threading
import time

import pytest

from repro.errors import PolicyStoreError, ShardUnavailableError
from repro.xacml.policy import Policy, Rule, Target
from repro.xacml.request import Request
from repro.xacml.response import Effect
from repro.xacml.sharding import ProcessShardPool, ShardedPolicyStore

N_SHARDS = 2
JOIN_TIMEOUT = 30.0


def permit_policy(policy_id, resource):
    return Policy(
        policy_id,
        target=Target.for_ids(resource=resource),
        rules=[Rule(f"{policy_id}:r", Effect.PERMIT)],
    )


def make_store():
    store = ShardedPolicyStore(N_SHARDS)
    store.load(permit_policy("p:alpha", "alpha-stream"))
    store.load(permit_policy("p:beta", "beta-stream"))
    return store


def shard_of_resource(store, resource):
    (shard_id,) = store.shards_for_request(Request.simple("u", resource))
    return shard_id


def wait_for_status(pool, shard_id, status, timeout=15.0):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if pool.health()["statuses"][shard_id] == status:
            return True
        time.sleep(0.01)
    return False


def evaluate_with_retries(pool, request, timeout=15.0):
    """Retry through the transient unavailable window (supervised
    restart), the way a resilient client would."""
    deadline = time.perf_counter() + timeout
    while True:
        try:
            return pool.evaluate(request)
        except ShardUnavailableError:
            if time.perf_counter() >= deadline:
                raise
            time.sleep(0.02)


class _Driver(threading.Thread):
    """Hammers the pool with its own requests; checks every response."""

    def __init__(self, pool, resource, policy_id, batch, rounds=40):
        super().__init__(daemon=True)
        self.pool = pool
        self.requests = [
            Request.simple(f"user{i}", resource) for i in range(batch)
        ]
        self.policy_id = policy_id
        self.rounds = rounds
        self.mismatches = []
        self.error = None
        self.completed = 0

    def run(self):
        try:
            for _ in range(self.rounds):
                responses = self.pool.evaluate_many(self.requests)
                if len(responses) != len(self.requests):
                    self.mismatches.append(f"got {len(responses)} responses")
                for response in responses:
                    if response.policy_id != self.policy_id:
                        self.mismatches.append(
                            f"expected {self.policy_id}, got {response.policy_id}"
                        )
                self.completed += 1
        except PolicyStoreError as error:
            self.error = error


class TestTwoConcurrentDrivers:
    def test_no_cross_driver_tag_leakage_under_invalidation_churn(self):
        store = make_store()
        with ProcessShardPool(store, batch_size=3) as pool:
            alpha = _Driver(pool, "alpha-stream", "p:alpha", batch=7)
            beta = _Driver(pool, "beta-stream", "p:beta", batch=5)
            alpha.start()
            beta.start()
            # Interleave mutations from a third thread (the listener
            # fan-out is synchronous, so every one of these round-trips
            # through the workers between the drivers' batches).
            for i in range(20):
                store.load(permit_policy(f"p:churn{i}", f"churn-{i}"))
                store.remove(f"p:churn{i}")
            alpha.join(JOIN_TIMEOUT)
            beta.join(JOIN_TIMEOUT)
            assert not alpha.is_alive() and not beta.is_alive()
            for driver in (alpha, beta):
                assert driver.error is None
                assert driver.mismatches == []
                assert driver.completed == driver.rounds
            # Three distinct driver identities were minted (two evaluate
            # threads + the mutating listener thread).
            assert pool.drivers == 3

    def test_single_calls_from_many_threads_stay_routed(self):
        store = make_store()
        errors = []

        def probe(resource, policy_id):
            try:
                for _ in range(25):
                    response = pool.evaluate(Request.simple("u", resource))
                    assert response.policy_id == policy_id
            except Exception as error:  # noqa: BLE001 — collected for assert
                errors.append(error)

        with ProcessShardPool(store) as pool:
            threads = [
                threading.Thread(target=probe, args=("alpha-stream", "p:alpha")),
                threading.Thread(target=probe, args=("beta-stream", "p:beta")),
                threading.Thread(target=probe, args=("alpha-stream", "p:alpha")),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(JOIN_TIMEOUT)
            assert errors == []


class TestCloseDrainsAllDrivers:
    def test_close_during_concurrent_driving_fails_both_promptly(self):
        store = make_store()
        pool = ProcessShardPool(store)
        alpha = _Driver(pool, "alpha-stream", "p:alpha", batch=4, rounds=10**6)
        beta = _Driver(pool, "beta-stream", "p:beta", batch=4, rounds=10**6)
        alpha.start()
        beta.start()
        # Let both drivers get in flight, then yank the pool.
        while alpha.completed == 0 or beta.completed == 0:
            time.sleep(0.005)
        pool.close()
        alpha.join(JOIN_TIMEOUT)
        beta.join(JOIN_TIMEOUT)
        assert not alpha.is_alive() and not beta.is_alive()
        for driver in (alpha, beta):
            assert isinstance(driver.error, PolicyStoreError)
            assert driver.mismatches == []

    def test_double_close_is_idempotent(self):
        store = make_store()
        pool = ProcessShardPool(store)
        assert pool.evaluate(
            Request.simple("u", "alpha-stream")
        ).policy_id == "p:alpha"
        pool.close()
        pool.close()  # second close is a no-op, not an error
        with pytest.raises(PolicyStoreError, match="closed"):
            pool.evaluate(Request.simple("u", "alpha-stream"))
        # The store detached exactly once and stays fully usable: a
        # fresh pool can attach to it again.
        store.load(permit_policy("p:after", "after-stream"))
        with ProcessShardPool(store) as second:
            assert second.evaluate(
                Request.simple("u", "after-stream")
            ).policy_id == "p:after"

    def test_concurrent_double_close_under_drivers(self):
        store = make_store()
        pool = ProcessShardPool(store)
        alpha = _Driver(pool, "alpha-stream", "p:alpha", batch=4, rounds=10**6)
        beta = _Driver(pool, "beta-stream", "p:beta", batch=4, rounds=10**6)
        alpha.start()
        beta.start()
        while alpha.completed == 0 or beta.completed == 0:
            time.sleep(0.005)
        n_closers = 4
        barrier = threading.Barrier(n_closers)
        close_errors = []

        def closer():
            barrier.wait()
            try:
                pool.close()
            except Exception as error:  # noqa: BLE001 — collected for assert
                close_errors.append(error)

        closers = [
            threading.Thread(target=closer, daemon=True)
            for _ in range(n_closers)
        ]
        for thread in closers:
            thread.start()
        for thread in closers:
            thread.join(JOIN_TIMEOUT)
        assert not any(thread.is_alive() for thread in closers)
        assert close_errors == []
        alpha.join(JOIN_TIMEOUT)
        beta.join(JOIN_TIMEOUT)
        assert not alpha.is_alive() and not beta.is_alive()
        for driver in (alpha, beta):
            assert isinstance(driver.error, PolicyStoreError)
            assert driver.mismatches == []


class TestSupervisedRecovery:
    def test_worker_death_fails_only_its_shard_then_recovers(self):
        store = make_store()
        alpha_request = Request.simple("u", "alpha-stream")
        beta_request = Request.simple("u", "beta-stream")
        alpha_sid = shard_of_resource(store, "alpha-stream")
        beta_sid = shard_of_resource(store, "beta-stream")
        assert alpha_sid != beta_sid
        with ProcessShardPool(
            store, on_unavailable="error", restart_backoff=0.5
        ) as pool:
            assert pool.evaluate(alpha_request).policy_id == "p:alpha"
            pool.kill_worker(alpha_sid)
            # The dead shard's traffic fails with the typed, retryable
            # error within the supervision window...
            with pytest.raises(ShardUnavailableError) as excinfo:
                deadline = time.perf_counter() + 5.0
                while time.perf_counter() < deadline:
                    pool.evaluate(alpha_request)
            assert excinfo.value.retryable
            assert excinfo.value.shard_id == alpha_sid
            # ...while the healthy shard never notices.
            assert pool.evaluate(beta_request).policy_id == "p:beta"
            # The shard recovers automatically — same pool object, no
            # reconstruction — and serves correct decisions again.
            assert evaluate_with_retries(
                pool, alpha_request
            ).policy_id == "p:alpha"
            health = pool.health()
            assert health["worker_restarts"] >= 1
            assert health["statuses"][beta_sid] == "up"

    def test_fallback_mode_serves_through_crash_and_restart(self):
        store = make_store()
        alpha_sid = shard_of_resource(store, "alpha-stream")
        with ProcessShardPool(store, restart_backoff=0.5) as pool:
            alpha = _Driver(
                pool, "alpha-stream", "p:alpha", batch=4, rounds=300
            )
            beta = _Driver(pool, "beta-stream", "p:beta", batch=4, rounds=300)
            alpha.start()
            beta.start()
            while alpha.completed == 0 or beta.completed == 0:
                time.sleep(0.005)
            pool.kill_worker(alpha_sid)
            alpha.join(JOIN_TIMEOUT)
            beta.join(JOIN_TIMEOUT)
            assert not alpha.is_alive() and not beta.is_alive()
            # Decision-identical fallback: the crash is invisible to
            # both drivers — every round completed, every decision
            # named the expected policy.
            for driver in (alpha, beta):
                assert driver.error is None
                assert driver.mismatches == []
                assert driver.completed == driver.rounds
            stats = pool.cache_stats()
            assert stats["fallback_evaluations"] > 0
            assert wait_for_status(pool, alpha_sid, "up")
            assert pool.health()["worker_restarts"] >= 1

    def test_unavailable_error_is_prompt_and_typed_not_a_timeout(self):
        store = make_store()
        alpha_sid = shard_of_resource(store, "alpha-stream")
        with ProcessShardPool(
            store, on_unavailable="error", restart_backoff=30.0
        ) as pool:
            request = Request.simple("u", "alpha-stream")
            assert pool.evaluate(request).policy_id == "p:alpha"
            pool.kill_worker(alpha_sid)
            started = time.perf_counter()
            with pytest.raises(ShardUnavailableError):
                deadline = started + 5.0
                while time.perf_counter() < deadline:
                    pool.evaluate(request)
            # Must fail via death detection (sub-second), never by
            # waiting out the full response timeout.
            assert time.perf_counter() - started < pool.RESPONSE_TIMEOUT / 2

    def test_budget_exhaustion_degrades_only_that_shard(self):
        store = make_store()
        alpha_request = Request.simple("u", "alpha-stream")
        beta_request = Request.simple("u", "beta-stream")
        alpha_sid = shard_of_resource(store, "alpha-stream")
        with ProcessShardPool(
            store, on_unavailable="error", max_restarts=0
        ) as pool:
            pool.kill_worker(alpha_sid)
            assert wait_for_status(pool, alpha_sid, "degraded")
            with pytest.raises(ShardUnavailableError) as excinfo:
                pool.evaluate(alpha_request)
            assert excinfo.value.degraded
            assert not excinfo.value.retryable
            # Only the dead shard degraded; its neighbour serves on.
            assert pool.evaluate(beta_request).policy_id == "p:beta"
            health = pool.health()
            assert health["degraded_shards"] == [alpha_sid]
            # revive() grants a fresh restart outside the budget.
            pool.revive(alpha_sid)
            assert wait_for_status(pool, alpha_sid, "up")
            assert evaluate_with_retries(
                pool, alpha_request
            ).policy_id == "p:alpha"

    def test_degraded_shard_falls_back_decision_identically(self):
        store = make_store()
        alpha_request = Request.simple("u", "alpha-stream")
        alpha_sid = shard_of_resource(store, "alpha-stream")
        with ProcessShardPool(store, max_restarts=0) as pool:
            pool.kill_worker(alpha_sid)
            assert wait_for_status(pool, alpha_sid, "degraded")
            # Fallback answers from the authoritative parent replica —
            # including mutations applied *after* degradation, which
            # the dead worker never saw.
            assert pool.evaluate(alpha_request).policy_id == "p:alpha"
            store.update(
                Policy(
                    "p:alpha",
                    target=Target.for_ids(resource="alpha-stream"),
                    rules=[Rule("p:alpha:deny", Effect.DENY)],
                )
            )
            assert pool.evaluate(alpha_request).decision.value == "Deny"
            assert pool.cache_stats()["fallback_evaluations"] >= 2
