"""Multi-driver regression pins for :class:`ProcessShardPool` (PR 6).

PR 5 shipped the pool single-driver: one FIFO of batch ids per shard,
so a second thread's responses could complete the first thread's
batches.  The tagged protocol replaces that — every command carries a
``(driver_id, sequence)`` tag, one dispatcher per shard routes
responses by tag, and worker failure poisons the pool so every driver
drains promptly.  These tests pin exactly those guarantees:

- two concurrent drivers with *distinct expected decisions*, under
  interleaved invalidation fan-out, never observe each other's
  responses (tag leakage would surface as a wrong policy id);
- ``close()`` during concurrent driving fails both drivers with a
  prompt :class:`PolicyStoreError` — no hang, no stranded thread;
- a killed worker process poisons the pool: blocked drivers wake with
  an error within the dispatcher's poll interval and later calls fail
  fast.
"""

import threading
import time

import pytest

from repro.errors import PolicyStoreError
from repro.xacml.policy import Policy, Rule, Target
from repro.xacml.request import Request
from repro.xacml.response import Effect
from repro.xacml.sharding import ProcessShardPool, ShardedPolicyStore

N_SHARDS = 2
JOIN_TIMEOUT = 30.0


def permit_policy(policy_id, resource):
    return Policy(
        policy_id,
        target=Target.for_ids(resource=resource),
        rules=[Rule(f"{policy_id}:r", Effect.PERMIT)],
    )


def make_store():
    store = ShardedPolicyStore(N_SHARDS)
    store.load(permit_policy("p:alpha", "alpha-stream"))
    store.load(permit_policy("p:beta", "beta-stream"))
    return store


class _Driver(threading.Thread):
    """Hammers the pool with its own requests; checks every response."""

    def __init__(self, pool, resource, policy_id, batch, rounds=40):
        super().__init__(daemon=True)
        self.pool = pool
        self.requests = [
            Request.simple(f"user{i}", resource) for i in range(batch)
        ]
        self.policy_id = policy_id
        self.rounds = rounds
        self.mismatches = []
        self.error = None
        self.completed = 0

    def run(self):
        try:
            for _ in range(self.rounds):
                responses = self.pool.evaluate_many(self.requests)
                if len(responses) != len(self.requests):
                    self.mismatches.append(f"got {len(responses)} responses")
                for response in responses:
                    if response.policy_id != self.policy_id:
                        self.mismatches.append(
                            f"expected {self.policy_id}, got {response.policy_id}"
                        )
                self.completed += 1
        except PolicyStoreError as error:
            self.error = error


class TestTwoConcurrentDrivers:
    def test_no_cross_driver_tag_leakage_under_invalidation_churn(self):
        store = make_store()
        with ProcessShardPool(store, batch_size=3) as pool:
            alpha = _Driver(pool, "alpha-stream", "p:alpha", batch=7)
            beta = _Driver(pool, "beta-stream", "p:beta", batch=5)
            alpha.start()
            beta.start()
            # Interleave mutations from a third thread (the listener
            # fan-out is synchronous, so every one of these round-trips
            # through the workers between the drivers' batches).
            for i in range(20):
                store.load(permit_policy(f"p:churn{i}", f"churn-{i}"))
                store.remove(f"p:churn{i}")
            alpha.join(JOIN_TIMEOUT)
            beta.join(JOIN_TIMEOUT)
            assert not alpha.is_alive() and not beta.is_alive()
            for driver in (alpha, beta):
                assert driver.error is None
                assert driver.mismatches == []
                assert driver.completed == driver.rounds
            # Three distinct driver identities were minted (two evaluate
            # threads + the mutating listener thread).
            assert pool.drivers == 3

    def test_single_calls_from_many_threads_stay_routed(self):
        store = make_store()
        errors = []

        def probe(resource, policy_id):
            try:
                for _ in range(25):
                    response = pool.evaluate(Request.simple("u", resource))
                    assert response.policy_id == policy_id
            except Exception as error:  # noqa: BLE001 — collected for assert
                errors.append(error)

        with ProcessShardPool(store) as pool:
            threads = [
                threading.Thread(target=probe, args=("alpha-stream", "p:alpha")),
                threading.Thread(target=probe, args=("beta-stream", "p:beta")),
                threading.Thread(target=probe, args=("alpha-stream", "p:alpha")),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(JOIN_TIMEOUT)
            assert errors == []


class TestPoisonDrainsAllDrivers:
    def test_close_during_concurrent_driving_fails_both_promptly(self):
        store = make_store()
        pool = ProcessShardPool(store)
        alpha = _Driver(pool, "alpha-stream", "p:alpha", batch=4, rounds=10**6)
        beta = _Driver(pool, "beta-stream", "p:beta", batch=4, rounds=10**6)
        alpha.start()
        beta.start()
        # Let both drivers get in flight, then yank the pool.
        while alpha.completed == 0 or beta.completed == 0:
            time.sleep(0.005)
        pool.close()
        alpha.join(JOIN_TIMEOUT)
        beta.join(JOIN_TIMEOUT)
        assert not alpha.is_alive() and not beta.is_alive()
        for driver in (alpha, beta):
            assert isinstance(driver.error, PolicyStoreError)
            assert driver.mismatches == []

    def test_worker_death_poisons_the_pool_and_wakes_both_drivers(self):
        store = make_store()
        pool = ProcessShardPool(store)
        try:
            alpha = _Driver(pool, "alpha-stream", "p:alpha", batch=4, rounds=10**6)
            beta = _Driver(pool, "beta-stream", "p:beta", batch=4, rounds=10**6)
            alpha.start()
            beta.start()
            while alpha.completed == 0 or beta.completed == 0:
                time.sleep(0.005)
            for process in pool._processes:
                process.terminate()
            alpha.join(JOIN_TIMEOUT)
            beta.join(JOIN_TIMEOUT)
            assert not alpha.is_alive() and not beta.is_alive()
            for driver in (alpha, beta):
                assert isinstance(driver.error, PolicyStoreError)
            # Later calls fail fast with the poison reason.
            with pytest.raises(PolicyStoreError, match="poisoned|closed"):
                pool.evaluate(Request.simple("u", "alpha-stream"))
            assert pool._poisoned is not None
        finally:
            pool.close()

    def test_poisoned_pool_reports_reason_not_timeout(self):
        store = make_store()
        pool = ProcessShardPool(store)
        try:
            assert pool.evaluate(Request.simple("u", "alpha-stream")).policy_id == (
                "p:alpha"
            )
            for process in pool._processes:
                process.terminate()
            started = time.perf_counter()
            with pytest.raises(PolicyStoreError):
                # Must fail via poison detection (sub-second), never by
                # waiting out the full response timeout.
                pool.evaluate(Request.simple("u", "alpha-stream"))
            assert time.perf_counter() - started < pool.RESPONSE_TIMEOUT / 2
        finally:
            pool.close()
