"""Tests for targets, rules, conditions and policy evaluation."""

import pytest

from repro.errors import XacmlError
from repro.xacml.attributes import (
    AttributeCategory,
    AttributeValue,
)
from repro.xacml.functions import (
    DOUBLE_GREATER_THAN,
    STRING_REGEXP_MATCH,
    apply_function,
    get_function,
)
from repro.xacml.policy import Condition, Match, Policy, Rule, Target
from repro.xacml.request import Request
from repro.xacml.response import Decision, Effect


class TestFunctions:
    def test_unknown_function(self):
        with pytest.raises(XacmlError):
            get_function("no-such-fn")

    def test_regexp_match(self):
        assert apply_function(
            STRING_REGEXP_MATCH,
            AttributeValue.string("weather3"),
            AttributeValue.string("weather[0-9]+"),
        )

    def test_type_mismatch_is_no_match(self):
        assert not apply_function(
            DOUBLE_GREATER_THAN,
            AttributeValue.string("abc"),
            AttributeValue.double(1.0),
        )


class TestTarget:
    def test_empty_target_matches_all(self):
        assert Target().matches(Request.simple("anyone", "anything"))
        assert Target().is_any

    def test_for_ids(self):
        target = Target.for_ids(subject="LTA", resource="weather", action="read")
        assert target.matches(Request.simple("LTA", "weather", "read"))
        assert not target.matches(Request.simple("NEA", "weather", "read"))
        assert not target.matches(Request.simple("LTA", "gps", "read"))
        assert not target.matches(Request.simple("LTA", "weather", "write"))

    def test_alternatives_any_of(self):
        target = Target(
            subjects=[
                [Match(AttributeCategory.SUBJECT,
                       "urn:oasis:names:tc:xacml:1.0:subject:subject-id",
                       AttributeValue.string("LTA"))],
                [Match(AttributeCategory.SUBJECT,
                       "urn:oasis:names:tc:xacml:1.0:subject:subject-id",
                       AttributeValue.string("NEA"))],
            ]
        )
        assert target.matches(Request.simple("LTA", "x"))
        assert target.matches(Request.simple("NEA", "x"))
        assert not target.matches(Request.simple("PUB", "x"))


class TestRule:
    def test_effects(self):
        permit = Rule("r1", Effect.PERMIT)
        deny = Rule("r2", Effect.DENY)
        request = Request.simple("u", "r")
        assert permit.evaluate(request) is Decision.PERMIT
        assert deny.evaluate(request) is Decision.DENY

    def test_rule_target_gates(self):
        rule = Rule("r1", Effect.PERMIT, target=Target.for_ids(subject="LTA"))
        assert rule.evaluate(Request.simple("NEA", "r")) is Decision.NOT_APPLICABLE

    def test_condition_gates(self):
        condition = Condition(
            AttributeCategory.ENVIRONMENT, "hour",
            "integer-less-than", AttributeValue.integer(18),
        )
        rule = Rule("r1", Effect.PERMIT, condition=condition)
        before = Request.simple("u", "r", environment={"hour": 9})
        after = Request.simple("u", "r", environment={"hour": 21})
        assert rule.evaluate(before) is Decision.PERMIT
        assert rule.evaluate(after) is Decision.NOT_APPLICABLE

    def test_rule_needs_id(self):
        with pytest.raises(XacmlError):
            Rule("", Effect.PERMIT)


class TestPolicy:
    def test_policy_needs_rules(self):
        with pytest.raises(XacmlError):
            Policy("p", rules=[])

    def test_first_applicable(self):
        policy = Policy(
            "p",
            rules=[
                Rule("deny-writes", Effect.DENY,
                     target=Target.for_ids(action="write")),
                Rule("allow-rest", Effect.PERMIT),
            ],
            rule_combining="first-applicable",
        )
        assert policy.evaluate(Request.simple("u", "r", "write")) is Decision.DENY
        assert policy.evaluate(Request.simple("u", "r", "read")) is Decision.PERMIT

    def test_policy_target_gate(self):
        policy = Policy(
            "p",
            target=Target.for_ids(resource="weather"),
            rules=[Rule("r", Effect.PERMIT)],
        )
        assert policy.evaluate(Request.simple("u", "gps")) is Decision.NOT_APPLICABLE

    def test_obligations_for_decision(self):
        from repro.xacml.response import Obligation

        policy = Policy(
            "p",
            rules=[Rule("r", Effect.PERMIT)],
            obligations=[
                Obligation("ob-permit", Effect.PERMIT),
                Obligation("ob-deny", Effect.DENY),
            ],
        )
        permit_obligations = policy.obligations_for(Decision.PERMIT)
        assert [o.obligation_id for o in permit_obligations] == ["ob-permit"]
        assert policy.obligations_for(Decision.NOT_APPLICABLE) == []
