"""Regression pins for :class:`InvalidationBus` delivery containment.

PR 7 regression: one raising listener used to abort ``publish``
mid-loop, so listeners subscribed *after* the broken one never saw the
event — a proxy handle cache or scatter decision cache silently kept a
stale view of a mutation the store had already applied.  Delivery must
continue past a raising subscriber, the failure must be counted (and
logged), and the mutation path must never see the exception.
"""

import logging

import pytest

from repro.xacml.policy import Policy, Rule, Target
from repro.xacml.response import Effect
from repro.xacml.sharding import InvalidationBus, ShardedPolicyStore


def permit_policy(policy_id, resource="weather"):
    return Policy(
        policy_id,
        target=Target.for_ids(resource=resource),
        rules=[Rule(f"{policy_id}:r", Effect.PERMIT)],
    )


class TestPublishContainment:
    def test_raising_listener_does_not_abort_delivery(self):
        bus = InvalidationBus()
        seen_before, seen_after = [], []

        def before(event, policy):
            seen_before.append((event, policy.policy_id))

        def broken(event, policy):
            raise RuntimeError("half-torn-down observer")

        def after(event, policy):
            seen_after.append((event, policy.policy_id))

        bus.add_listener(before)
        bus.add_listener(broken)
        bus.add_listener(after)
        bus.publish("loaded", permit_policy("p"))
        # Both healthy listeners saw the event — including the one
        # subscribed after the broken one.
        assert seen_before == [("loaded", "p")]
        assert seen_after == [("loaded", "p")]
        assert bus.listener_failures == 1
        assert bus.published == 1
        # The bus keeps working: later publishes deliver (and keep
        # counting the still-broken subscriber).
        bus.publish("removed", permit_policy("p"))
        assert seen_after[-1] == ("removed", "p")
        assert bus.listener_failures == 2

    def test_failures_are_logged_not_raised(self, caplog):
        bus = InvalidationBus()
        bus.add_listener(lambda event, policy: (_ for _ in ()).throw(ValueError()))
        with caplog.at_level(logging.ERROR, logger="repro.xacml.sharding"):
            bus.publish("updated", permit_policy("p"))
        assert bus.listener_failures == 1
        assert any(
            "invalidation listener" in record.message for record in caplog.records
        )

    def test_store_mutation_survives_a_raising_bus_subscriber(self):
        # End to end: a broken bus subscriber must not fail (or roll
        # back) the logical mutation, and the sharded store's other
        # observers stay coherent.
        store = ShardedPolicyStore(2)
        events = []
        store.bus.add_listener(
            lambda event, policy: (_ for _ in ()).throw(RuntimeError("boom"))
        )
        store.bus.add_listener(
            lambda event, policy: events.append((event, policy.policy_id))
        )
        store.load(permit_policy("p"))
        store.remove("p")
        assert events == [("loaded", "p"), ("removed", "p")]
        assert store.bus.listener_failures == 2
        assert "p" not in store
