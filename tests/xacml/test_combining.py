"""Tests for rule- and policy-combining algorithms."""

import pytest

from repro.errors import XacmlError
from repro.xacml.combining import (
    PolicyCombiningAlgorithm,
    RuleCombiningAlgorithm,
)
from repro.xacml.policy import Policy, Rule, Target
from repro.xacml.request import Request
from repro.xacml.response import Decision, Effect


def rule(effect, subject=None, rule_id="r"):
    target = Target.for_ids(subject=subject) if subject else None
    return Rule(rule_id, effect, target=target)


REQUEST = Request.simple("u", "r")


class TestRuleCombining:
    def test_unknown_algorithm(self):
        with pytest.raises(XacmlError):
            RuleCombiningAlgorithm.get("magic")

    def test_first_applicable_order_matters(self):
        algorithm = RuleCombiningAlgorithm.get("first-applicable")
        assert algorithm.combine(
            [rule(Effect.DENY), rule(Effect.PERMIT)], REQUEST
        ) is Decision.DENY
        assert algorithm.combine(
            [rule(Effect.PERMIT), rule(Effect.DENY)], REQUEST
        ) is Decision.PERMIT

    def test_first_applicable_skips_inapplicable(self):
        algorithm = RuleCombiningAlgorithm.get("first-applicable")
        rules = [rule(Effect.DENY, subject="other"), rule(Effect.PERMIT)]
        assert algorithm.combine(rules, REQUEST) is Decision.PERMIT

    def test_permit_overrides(self):
        algorithm = RuleCombiningAlgorithm.get("permit-overrides")
        assert algorithm.combine(
            [rule(Effect.DENY), rule(Effect.PERMIT)], REQUEST
        ) is Decision.PERMIT
        assert algorithm.combine([rule(Effect.DENY)], REQUEST) is Decision.DENY
        assert algorithm.combine(
            [rule(Effect.DENY, subject="other")], REQUEST
        ) is Decision.NOT_APPLICABLE

    def test_deny_overrides(self):
        algorithm = RuleCombiningAlgorithm.get("deny-overrides")
        assert algorithm.combine(
            [rule(Effect.PERMIT), rule(Effect.DENY)], REQUEST
        ) is Decision.DENY
        assert algorithm.combine([rule(Effect.PERMIT)], REQUEST) is Decision.PERMIT

    def test_deny_unless_permit(self):
        algorithm = RuleCombiningAlgorithm.get("deny-unless-permit")
        assert algorithm.combine([], REQUEST) is Decision.DENY
        assert algorithm.combine([rule(Effect.PERMIT)], REQUEST) is Decision.PERMIT


def policy(effect, policy_id, subject=None):
    target = Target.for_ids(subject=subject) if subject else None
    return Policy(policy_id, target=target, rules=[Rule("r", effect)])


class TestPolicyCombining:
    def test_first_applicable_returns_deciding_policy(self):
        algorithm = PolicyCombiningAlgorithm.get("first-applicable")
        policies = [
            policy(Effect.PERMIT, "p-other", subject="other"),
            policy(Effect.PERMIT, "p-match"),
        ]
        decision, deciding = algorithm.combine(policies, REQUEST)
        assert decision is Decision.PERMIT
        assert deciding.policy_id == "p-match"

    def test_not_applicable_has_no_policy(self):
        algorithm = PolicyCombiningAlgorithm.get("first-applicable")
        decision, deciding = algorithm.combine(
            [policy(Effect.PERMIT, "p", subject="other")], REQUEST
        )
        assert decision is Decision.NOT_APPLICABLE
        assert deciding is None

    def test_permit_overrides_prefers_permit(self):
        algorithm = PolicyCombiningAlgorithm.get("permit-overrides")
        policies = [policy(Effect.DENY, "p-deny"), policy(Effect.PERMIT, "p-permit")]
        decision, deciding = algorithm.combine(policies, REQUEST)
        assert decision is Decision.PERMIT
        assert deciding.policy_id == "p-permit"

    def test_deny_overrides_prefers_deny(self):
        algorithm = PolicyCombiningAlgorithm.get("deny-overrides")
        policies = [policy(Effect.PERMIT, "p-permit"), policy(Effect.DENY, "p-deny")]
        decision, deciding = algorithm.combine(policies, REQUEST)
        assert decision is Decision.DENY
        assert deciding.policy_id == "p-deny"
