"""Concurrency suite for the scatter-path decision cache + single-flight.

The scatter path (`repro.xacml.sharding.ScatterEvaluator`) caches
shard-spanning decisions by request fingerprint, invalidates them
through the invalidation bus's per-policy buckets, and de-duplicates
concurrent identical merges single-flight.  The guarantees pinned here:

- N concurrent identical scatter requests perform **one** merge and all
  observe the same (correct) response;
- a mutation that completes is never masked by cached or in-flight
  state: an evaluation issued after the mutation returns sees the
  post-mutation decision, and a merge an invalidation overlapped is
  never cached and never handed to waiters (they retry against the
  post-mutation store);
- a failed leader wakes its waiters instead of stranding them;
- ``cache_size=0`` reproduces the PR 4 uncached path exactly.

Thread scope note: the *scatter* path is the concurrent surface; each
shard PDP stays serial (one thread / one worker process per shard), so
the storms here use shard-spanning requests throughout.
"""

import threading
import time

import pytest

from repro.errors import PolicyStoreError
from repro.xacml.attributes import (
    RESOURCE_ID,
    Attribute,
    AttributeCategory,
    AttributeValue,
)
from repro.xacml.policy import Policy, Rule, Target
from repro.xacml.request import Request
from repro.xacml.response import Decision, Effect
from repro.xacml.sharding import ShardedPDP, ShardedPolicyStore, shard_of

N_SHARDS = 4


def permit_policy(policy_id, resource=None, effect=Effect.PERMIT):
    return Policy(
        policy_id,
        target=Target.for_ids(resource=resource),
        rules=[Rule(f"{policy_id}:r", effect)],
    )


def distinct_shard_resources(count, n_shards=N_SHARDS):
    chosen, seen, i = [], set(), 0
    while len(chosen) < count:
        name = f"res{i}"
        shard = shard_of(name, n_shards)
        if shard not in seen:
            seen.add(shard)
            chosen.append(name)
        i += 1
    return chosen


def spanning_request(resources, subject="alice"):
    """A request whose resource values span the given (multi-)shards."""
    request = Request.simple(subject, resources[0])
    for resource in resources[1:]:
        request.add(
            Attribute(
                AttributeCategory.RESOURCE, RESOURCE_ID, AttributeValue.string(resource)
            )
        )
    return request


def make_engine(scatter_cache_size=64):
    store = ShardedPolicyStore(N_SHARDS)
    pdp = ShardedPDP(store, scatter_cache_size=scatter_cache_size)
    res_a, res_b = distinct_shard_resources(2)
    store.load(permit_policy("pa", resource=res_a))
    store.load(permit_policy("pb", resource=res_b))
    return store, pdp, spanning_request([res_a, res_b]), (res_a, res_b)


def run_threads(n, target):
    threads = [threading.Thread(target=target) for _ in range(n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
        assert not thread.is_alive(), "worker thread hung"


class TestScatterCacheBasics:
    def test_identical_scatter_requests_merge_once(self):
        store, pdp, request, _ = make_engine()
        first = pdp.evaluate(request)
        for _ in range(5):
            assert pdp.evaluate(request).policy_id == first.policy_id
        stats = pdp.cache_stats()
        assert stats["scatter_merges"] == 1
        assert stats["scatter_hits"] == 5
        assert stats["scattered"] == 6 and stats["routed"] == 0

    def test_lru_capacity_bounds_scatter_entries(self):
        store = ShardedPolicyStore(N_SHARDS)
        pdp = ShardedPDP(store, scatter_cache_size=4)
        res_a, res_b = distinct_shard_resources(2)
        store.load(permit_policy("pa", resource=res_a))
        store.load(permit_policy("pb", resource=res_b))
        for i in range(10):
            pdp.evaluate(spanning_request([res_a, res_b], subject=f"user{i}"))
        assert pdp.cache_stats()["scatter_entries"] <= 4

    def test_disabled_cache_is_the_uncached_pr4_path(self):
        store, pdp, request, _ = make_engine(scatter_cache_size=0)
        for _ in range(4):
            pdp.evaluate(request)
        stats = pdp.cache_stats()
        assert stats["scatter_merges"] == 4
        assert stats["scatter_entries"] == 0
        assert stats["scatter_hits"] == 0

    def test_cache_stats_is_a_pure_snapshot(self):
        store, pdp, request, _ = make_engine()
        pdp.evaluate(request)
        first = pdp.cache_stats()
        second = pdp.cache_stats()
        assert first == second
        assert first is not second
        first["hits"] = 10**6  # mutating a snapshot must not leak back
        assert pdp.cache_stats() == second
        assert second["evaluations"] == second["routed"] + second["scattered"]


class TestInvalidation:
    def test_update_and_remove_evict_through_bus_buckets(self):
        store, pdp, request, (res_a, res_b) = make_engine()
        assert pdp.evaluate(request).policy_id == "pa"  # first-applicable
        # Flip pa to DENY: its bucket must evict the cached entry.
        store.update(permit_policy("pa", resource=res_a, effect=Effect.DENY))
        response = pdp.evaluate(request)
        assert response.decision is Decision.DENY and response.policy_id == "pa"
        store.remove("pa")
        response = pdp.evaluate(request)
        assert response.decision is Decision.PERMIT and response.policy_id == "pb"
        assert pdp.cache_stats()["scatter_targeted_evictions"] >= 2

    def test_load_flushes_scatter_cache_wholesale(self):
        store, pdp, request, (res_a, _) = make_engine()
        pdp.evaluate(request)
        assert pdp.cache_stats()["scatter_entries"] == 1
        store.load(permit_policy("pc", resource=res_a, effect=Effect.DENY))
        assert pdp.cache_stats()["scatter_entries"] == 0
        # pc loaded after pa: first-applicable still decides at pa.
        assert pdp.evaluate(request).policy_id == "pa"

    def test_unrelated_policy_churn_keeps_entry_warm(self):
        store, pdp, request, (res_a, res_b) = make_engine()
        store.load(permit_policy("px", resource="unrelated-res"))
        pdp.evaluate(request)
        store.update(permit_policy("px", resource="unrelated-res", effect=Effect.DENY))
        store.remove("px")
        assert pdp.evaluate(request).policy_id == "pa"
        stats = pdp.cache_stats()
        assert stats["scatter_hits"] == 1  # survived both mutations
        assert stats["scatter_entries"] == 1


class TestSingleFlight:
    def test_storm_coalesces_to_one_merge(self):
        store, pdp, request, _ = make_engine()
        gate = threading.Event()
        original = store.policies_for

        def slow_policies_for(req):
            gate.wait(timeout=10)
            time.sleep(0.02)  # hold the merge open so waiters pile up
            return original(req)

        store.policies_for = slow_policies_for
        results = []
        results_lock = threading.Lock()
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            gate.set()
            response = pdp.evaluate(request)
            with results_lock:
                results.append((response.decision, response.policy_id))

        run_threads(8, worker)
        assert set(results) == {(Decision.PERMIT, "pa")}
        stats = pdp.cache_stats()
        assert stats["scatter_merges"] == 1
        assert stats["scatter_coalesced"] >= 1
        assert stats["scattered"] == 8

    def test_overlapped_merge_is_not_cached_and_waiter_rereads(self):
        store, pdp, request, (res_a, _) = make_engine()
        merge_entered = threading.Event()
        merge_release = threading.Event()
        original = store.policies_for
        blocking = [True]

        def gated_policies_for(req):
            candidates = original(req)  # gather *pre*-mutation state
            if blocking[0]:
                blocking[0] = False
                merge_entered.set()
                assert merge_release.wait(timeout=10)
            return candidates

        store.policies_for = gated_policies_for
        leader_response = []

        def leader():
            leader_response.append(pdp.evaluate(request))

        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        assert merge_entered.wait(timeout=10)
        # The mutation completes while the leader's merge is in flight.
        store.update(permit_policy("pa", resource=res_a, effect=Effect.DENY))
        waiter_response = []

        def waiter():
            # Joined after the mutation: must observe DENY, never the
            # leader's pre-mutation PERMIT.
            waiter_response.append(pdp.evaluate(request))

        waiter_thread = threading.Thread(target=waiter)
        waiter_thread.start()
        # Let the waiter reach the in-flight call before releasing.
        deadline = time.time() + 10
        while pdp.scatter.coalesced == 0 and time.time() < deadline:
            time.sleep(0.001)
        assert pdp.scatter.coalesced == 1
        merge_release.set()
        leader_thread.join(timeout=10)
        waiter_thread.join(timeout=10)
        assert not leader_thread.is_alive() and not waiter_thread.is_alive()
        # Leader returns the decision of its own (pre-mutation) snapshot
        # — its request was concurrent with the mutation — but the
        # overlapped merge is never cached.
        assert leader_response[0].decision is Decision.PERMIT
        assert waiter_response[0].decision is Decision.DENY
        stats = pdp.cache_stats()
        assert stats["scatter_retries"] == 1
        # The cached entry (if any) is the waiter's fresh merge.
        assert pdp.evaluate(request).decision is Decision.DENY

    def test_failed_leader_wakes_waiters(self):
        store, pdp, request, _ = make_engine()
        original = store.policies_for
        entered = threading.Event()
        release = threading.Event()
        fail_first = [True]

        def failing_policies_for(req):
            if fail_first[0]:
                fail_first[0] = False
                entered.set()
                assert release.wait(timeout=10)
                raise RuntimeError("injected gather failure")
            return original(req)

        store.policies_for = failing_policies_for
        errors, responses = [], []

        def leader():
            try:
                pdp.evaluate(request)
            except RuntimeError as error:
                errors.append(error)

        def waiter():
            responses.append(pdp.evaluate(request))

        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        assert entered.wait(timeout=10)
        waiter_thread = threading.Thread(target=waiter)
        waiter_thread.start()
        deadline = time.time() + 10
        while pdp.scatter.coalesced == 0 and time.time() < deadline:
            time.sleep(0.001)
        release.set()
        leader_thread.join(timeout=10)
        waiter_thread.join(timeout=10)
        assert not leader_thread.is_alive() and not waiter_thread.is_alive()
        assert len(errors) == 1  # the leader surfaced the failure
        assert len(responses) == 1  # the waiter retried and succeeded
        assert responses[0].policy_id == "pa"


class TestStormsWithMutations:
    def test_completed_mutations_are_never_masked(self):
        """Reader threads hammer scatter requests while the main thread
        toggles the deciding policy; after every mutation returns, the
        very next evaluation must reflect it — cached, coalesced or
        merged."""
        store, pdp, request, (res_a, _) = make_engine()
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                response = pdp.evaluate(request)
                # Only the two legitimate regimes may ever be observed.
                if response.policy_id != "pa" or response.decision not in (
                    Decision.PERMIT,
                    Decision.DENY,
                ):
                    failures.append(response)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        effects = (Effect.DENY, Effect.PERMIT)
        try:
            for i in range(200):
                effect = effects[i % 2]
                store.update(permit_policy("pa", resource=res_a, effect=effect))
                response = pdp.evaluate(request)
                assert response.decision is effect.decision, f"round {i}"
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not failures, failures
        assert not any(thread.is_alive() for thread in threads)
        stats = pdp.cache_stats()
        assert stats["evaluations"] == stats["routed"] + stats["scattered"]

    def test_storm_with_loads_and_removes(self):
        """Wholesale flushes (loads) interleaved with the storm: readers
        may see either regime mid-flight but the main thread always sees
        its own mutation."""
        store, pdp, request, (res_a, res_b) = make_engine()
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                response = pdp.evaluate(request)
                if response.decision is not Decision.PERMIT:
                    failures.append(response)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for i in range(60):
                extra = permit_policy(f"extra{i}", resource=res_a)
                store.load(extra)
                assert pdp.evaluate(request).decision is Decision.PERMIT
                store.remove(extra.policy_id)
                assert pdp.evaluate(request).policy_id == "pa"
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not failures, failures
