"""Randomized StreamSQL differential fuzzer (pyrqg-style).

A small grammar generator emits *valid* StreamSQL scripts — filter,
map and window-aggregation SELECT chains with randomized conditions,
projections, window shapes (tuple and time, overlapping and hopping)
and keyword spellings — plus a matched random tuple stream (mostly
monotone timestamps with occasional out-of-order regressions, so the
columnar time-window scan fallback is exercised).  Each script runs
through the full stack twice, parser → graph → engine:

- on the default **compiled** engine, ingested through ``push_batch``
  with randomized batch partitions (empty and singleton chunks
  included);
- on ``StreamEngine.reference()`` — the seed interpreted per-tuple
  path — ingested one tuple at a time;

and the two outputs must agree tuple-for-tuple: exactly for
int/string/bool fields, to tight float tolerance for doubles, and to
the repo's established drifting tolerance (rel 1e-6 / abs 1e-4, see
``test_prop_window_equivalence``) for fields produced by avg/sum/stdev,
whose incremental states are entitled to accumulate rounding drift over
eviction histories.  The first long-pass run of this fuzzer caught
exactly that: ``stdev`` over an overlapping window of equal timestamps
answered ~8e-7 incrementally where recomputation answers 0.0.

The tier-1 run is seeded and bounded (fixed seeds, small budgets) so it
is deterministic and fast; set ``FUZZ_LONG=1`` (the CI nightly/manual
fuzz job does) for a much larger randomized pass.
"""

from __future__ import annotations

import math
import os
import random
from typing import Dict, List, Sequence, Tuple

import pytest

from repro.streams.engine import StreamEngine
from repro.streams.schema import DataType, Field, Schema

#: Numeric aggregate functions (operand must be numeric).
NUMERIC_AGGS = ("avg", "sum", "min", "max", "count", "stdev", "median")
#: Order/arrival aggregates (any operand dtype).
ANY_AGGS = ("count", "lastval", "firstval")

KEYWORD_CASES = (str.upper, str.lower, str.title)


def _kw(rng: random.Random, word: str) -> str:
    """Random keyword casing — the parser is case-insensitive."""
    return rng.choice(KEYWORD_CASES)(word)


class StreamSQLFuzzer:
    """Grammar-driven generator of (script, records) workloads.

    Productions mirror the StreamSQL subset the PEP emits (single SELECT
    chain over one input stream) while randomizing every free choice:
    stage combination, condition tree, projection subset and order,
    window type/size/step, aggregation set, qualified vs bare attribute
    references, optional AS aliases and keyword casing.
    """

    def __init__(self, rng: random.Random):
        self.rng = rng

    # -- schema + data -----------------------------------------------------------

    def schema(self) -> Schema:
        rng = self.rng
        fields = [Field("ts", DataType.TIMESTAMP)]
        for i in range(rng.randint(1, 2)):
            fields.append(Field(f"i{i}", DataType.INT))
        for i in range(rng.randint(1, 2)):
            fields.append(Field(f"x{i}", DataType.DOUBLE))
        if rng.random() < 0.5:
            fields.append(Field("tag", DataType.STRING))
        rng.shuffle(fields)
        return Schema("sensor", fields)

    def records(self, schema: Schema, count: int) -> List[Dict[str, object]]:
        rng = self.rng
        timestamp = 1000.0
        out = []
        for _ in range(count):
            step = rng.choice((0.0, 0.5, 1.0, 1.0, 2.0, 3.0))
            if rng.random() < 0.08:
                step = -rng.choice((0.5, 1.0, 2.0))  # out-of-order arrival
            timestamp = max(0.0, timestamp + step)
            record: Dict[str, object] = {}
            for field in schema:
                if field.dtype is DataType.TIMESTAMP:
                    record[field.name] = timestamp
                elif field.dtype is DataType.INT:
                    record[field.name] = rng.randint(-5, 5)
                elif field.dtype is DataType.DOUBLE:
                    record[field.name] = round(rng.uniform(-50.0, 50.0), 2)
                else:
                    record[field.name] = rng.choice(("red", "green", "blue"))
            out.append(record)
        return out

    # -- conditions --------------------------------------------------------------

    def condition(self, schema: Schema, depth: int = 0) -> str:
        rng = self.rng
        if depth < 2 and rng.random() < 0.4:
            left = self.condition(schema, depth + 1)
            right = self.condition(schema, depth + 1)
            op = _kw(rng, rng.choice(("AND", "OR")))
            clause = f"({left} {op} {right})"
            if rng.random() < 0.15:
                clause = f"{_kw(rng, 'NOT')} {clause}"
            return clause
        if rng.random() < 0.05:
            return _kw(rng, "TRUE")
        field = rng.choice(list(schema))
        op = rng.choice(("<", ">", "<=", ">=", "=", "!=", "<>", "=="))
        # The StreamSQL lexer has no unary minus, so script literals are
        # non-negative; the generated data still spans negative values.
        if field.dtype is DataType.STRING:
            op = rng.choice(("=", "!="))
            literal = f"'{rng.choice(('red', 'green', 'blue'))}'"
        elif field.dtype is DataType.INT:
            literal = str(rng.randint(0, 5))
        elif field.dtype is DataType.TIMESTAMP:
            literal = str(round(rng.uniform(1000.0, 1100.0), 1))
        else:
            literal = str(round(rng.uniform(0.0, 50.0), 1))
        if rng.random() < 0.2:
            return f"{literal} {op} {field.name}"  # reversed orientation
        return f"{field.name} {op} {literal}"

    # -- the script --------------------------------------------------------------

    def query(self, schema: Schema) -> str:
        """One valid script: CREATEs + a filter?/map?/aggregate? chain."""
        rng = self.rng
        stages: List[str] = []
        want_filter = rng.random() < 0.6
        want_aggregate = rng.random() < 0.6
        want_map = rng.random() < 0.5
        if not (want_filter or want_map or want_aggregate):
            want_filter = True

        window_unit = rng.choice(("TUPLES", "SECONDS")) if want_aggregate else None
        attrs = [field.name for field in schema]
        if want_map:
            keep = [name for name in attrs if rng.random() < 0.6]
            if window_unit == "SECONDS" and "ts" not in keep:
                keep.append("ts")  # time windows need the timestamp attribute
            if not keep:
                keep = [rng.choice(attrs)]
            rng.shuffle(keep)
            map_attrs = keep
        else:
            map_attrs = attrs

        lines: List[str] = []
        field_list = ", ".join(f"{f.name} {f.dtype.value}" for f in schema)
        lines.append(f"{_kw(rng, 'CREATE')} {_kw(rng, 'INPUT')} "
                     f"{_kw(rng, 'STREAM')} sensor ({field_list});")

        current = "sensor"
        index = 0

        def next_target(is_last: bool) -> str:
            nonlocal index
            target = "output" if is_last else f"internal_{index}"
            keyword = "OUTPUT STREAM" if is_last else "STREAM"
            lines.append(f"{_kw(rng, 'CREATE')} {keyword} {target};")
            index += 1
            return target

        remaining = sum((want_filter, want_map, want_aggregate))
        if want_filter:
            remaining -= 1
            target = next_target(remaining == 0)
            qualify = rng.random() < 0.3
            condition = self.condition(schema)
            if qualify:
                # Qualified references are stripped by the parser.
                for field in schema:
                    condition = condition.replace(field.name, f"{current}.{field.name}")
            lines.append(
                f"{_kw(rng, 'SELECT')} * {_kw(rng, 'FROM')} {current} "
                f"{_kw(rng, 'WHERE')} {condition} {_kw(rng, 'INTO')} {target};"
            )
            current = target
        if want_map:
            remaining -= 1
            target = next_target(remaining == 0)
            items = []
            for name in map_attrs:
                item = f"{current}.{name}" if rng.random() < 0.4 else name
                if rng.random() < 0.2:
                    item += f" {_kw(rng, 'AS')} {name}_out"  # alias is cosmetic
                items.append(item)
            lines.append(
                f"{_kw(rng, 'SELECT')} {', '.join(items)} "
                f"{_kw(rng, 'FROM')} {current} {_kw(rng, 'INTO')} {target};"
            )
            current = target
        if want_aggregate:
            target = next_target(True)
            size = rng.randint(1, 6)
            step = rng.randint(1, 6)
            window_name = f"w_{size}_{step}"
            lines.append(
                f"{_kw(rng, 'CREATE')} {_kw(rng, 'WINDOW')} {window_name} "
                f"({_kw(rng, 'SIZE')} {size} {_kw(rng, 'ADVANCE')} {step} "
                f"{_kw(rng, window_unit)});"
            )
            numeric = [
                f.name for f in schema
                if f.is_numeric and f.name in map_attrs
            ]
            anyattr = [f.name for f in schema if f.name in map_attrs]
            pairs = set()
            for _ in range(rng.randint(1, 3)):
                if numeric and rng.random() < 0.8:
                    pairs.add((rng.choice(NUMERIC_AGGS), rng.choice(numeric)))
                else:
                    pairs.add((rng.choice(ANY_AGGS), rng.choice(anyattr)))
            items = [f"{fn}({attr})" for fn, attr in sorted(pairs)]
            lines.append(
                f"{_kw(rng, 'SELECT')} {', '.join(items)} "
                f"{_kw(rng, 'FROM')} {current}[{window_name}] "
                f"{_kw(rng, 'INTO')} {target};"
            )
        return "\n".join(lines) + "\n"

    def partitions(self, count: int) -> List[int]:
        """Random batch sizes summing to *count*, with empty and
        singleton chunks mixed in deliberately."""
        rng = self.rng
        sizes: List[int] = []
        remaining = count
        while remaining > 0:
            size = rng.choice((0, 1, 1, 2, 3, 5, 8, 13))
            size = min(size, remaining)
            sizes.append(size)
            remaining -= size
        return sizes

    # -- shared-prefix families --------------------------------------------------

    def shared_prefix_scripts(self, schema: Schema, variants: int) -> List[str]:
        """*variants* scripts over *schema* sharing one WHERE clause.

        Every script filters with the **same** condition text, then
        diverges: passthrough, a random projection, or a window
        aggregation with per-variant aggregate sets (some reusing one
        family window shape).  ~25% of variants are exact duplicates of
        an earlier script.  This is the workload the shared execution
        plan exists for: the filter node must merge across all
        variants, duplicates must merge whole chains.
        """
        rng = self.rng
        condition = self.condition(schema)
        field_list = ", ".join(f"{f.name} {f.dtype.value}" for f in schema)
        family_window = (rng.randint(1, 5), rng.randint(1, 5),
                        rng.choice(("TUPLES", "SECONDS")))
        scripts: List[str] = []
        for _ in range(variants):
            if scripts and rng.random() < 0.25:
                scripts.append(rng.choice(scripts))  # exact duplicate
                continue
            lines = [f"CREATE INPUT STREAM sensor ({field_list});"]
            tail = rng.choice(("none", "map", "agg", "agg"))
            if tail == "none":
                lines.append("CREATE OUTPUT STREAM output;")
                lines.append(
                    f"SELECT * FROM sensor WHERE {condition} INTO output;"
                )
            elif tail == "map":
                keep = [f.name for f in schema if rng.random() < 0.6]
                if not keep:
                    keep = [rng.choice([f.name for f in schema])]
                lines.append("CREATE STREAM filtered;")
                lines.append("CREATE OUTPUT STREAM output;")
                lines.append(
                    f"SELECT * FROM sensor WHERE {condition} INTO filtered;"
                )
                lines.append(
                    f"SELECT {', '.join(keep)} FROM filtered INTO output;"
                )
            else:
                if rng.random() < 0.6:
                    size, step, unit = family_window
                else:
                    size, step, unit = (rng.randint(1, 5), rng.randint(1, 5),
                                        rng.choice(("TUPLES", "SECONDS")))
                numeric = [f.name for f in schema if f.is_numeric]
                pairs = set()
                for _ in range(rng.randint(1, 3)):
                    if numeric and rng.random() < 0.8:
                        pairs.add((rng.choice(NUMERIC_AGGS), rng.choice(numeric)))
                    else:
                        pairs.add((rng.choice(ANY_AGGS),
                                   rng.choice([f.name for f in schema])))
                items = [f"{fn}({attr})" for fn, attr in sorted(pairs)]
                lines.append("CREATE STREAM filtered;")
                lines.append(f"CREATE WINDOW w (SIZE {size} ADVANCE {step} {unit});")
                lines.append("CREATE OUTPUT STREAM output;")
                lines.append(
                    f"SELECT * FROM sensor WHERE {condition} INTO filtered;"
                )
                lines.append(f"SELECT {', '.join(items)} FROM filtered[w] INTO output;")
            scripts.append("\n".join(lines) + "\n")
        return scripts


# -- the differential check --------------------------------------------------------

def assert_rows_match(out_schema, actual, expected, context: str) -> None:
    """Tuple-for-tuple comparison under the repo's drift contract:
    exact for ints/strings/bools and exact-state aggregates, tight
    float tolerance otherwise, drifting tolerance for avg/sum/stdev."""
    assert len(actual) == len(expected), context
    # Aggregate output fields are named "{function}{attribute}", so
    # the field name says which comparison contract applies.
    drifting = tuple(
        field.name.startswith(("avg", "sum", "stdev")) for field in out_schema
    )
    for row, (actual_tuple, expected_tuple) in enumerate(zip(actual, expected)):
        for field, drifts, a, e in zip(
            out_schema, drifting, actual_tuple.values, expected_tuple.values
        ):
            if isinstance(e, float):
                rel, abso = (1e-6, 1e-4) if drifts else (1e-9, 1e-12)
                if field.name.startswith("stdev") and e == 0.0:
                    # Constant windows: the incremental state snaps
                    # its variance to an exact zero (suffix-run
                    # detection), so no drift allowance applies —
                    # this is the ~8e-7-vs-0.0 case the first long
                    # run caught, now pinned exact.
                    rel, abso = (0.0, 0.0)
                assert math.isclose(a, e, rel_tol=rel, abs_tol=abso), (
                    f"{context}\nrow {row} field {field.name}: {a!r} != {e!r}"
                )
            else:
                assert a == e, (
                    f"{context}\nrow {row} field {field.name}: {a!r} != {e!r}"
                )


def run_differential(seed: int, n_queries: int, n_tuples: int) -> Tuple[int, int]:
    """Fuzz *n_queries* scripts at *seed*; returns (queries, outputs) counts."""
    rng = random.Random(seed)
    fuzzer = StreamSQLFuzzer(rng)
    total_outputs = 0
    for query_index in range(n_queries):
        schema = fuzzer.schema()
        script = fuzzer.query(schema)
        records = fuzzer.records(schema, n_tuples)

        compiled = StreamEngine()
        reference = StreamEngine.reference()
        try:
            compiled_handle = compiled.register_streamsql(script)
            reference_handle = reference.register_streamsql(script)
        except Exception as error:  # pragma: no cover - generator bug trap
            pytest.fail(
                f"seed={seed} query={query_index}: generated script failed "
                f"to register: {error}\n{script}"
            )

        cursor = 0
        for size in fuzzer.partitions(len(records)):
            compiled.push_batch("sensor", records[cursor:cursor + size])
            cursor += size
        for record in records:
            reference.push("sensor", record)

        expected = reference.read(reference_handle)
        actual = compiled.read(compiled_handle)
        context = f"seed={seed} query={query_index}\n{script}"
        out_schema = compiled.lookup(compiled_handle).output_schema
        assert out_schema == reference.lookup(reference_handle).output_schema
        assert_rows_match(out_schema, actual, expected, context)
        total_outputs += len(expected)
    return n_queries, total_outputs


def run_multiquery_differential(
    seed: int, n_rounds: int, n_variants: int, n_tuples: int
) -> Tuple[int, int]:
    """Shared-prefix fan-out under churn: each round registers a family
    of scripts sharing one WHERE prefix on a **single** engine pair —
    the default (shared-plan) engine fed via random batch partitions
    against the seed per-query interpreted engine fed tuple-at-a-time —
    withdraws ~1/3 of the family at random batch boundaries, and
    compares every query's full drained output.  After each round all
    surviving queries withdraw and the shared plan must have released
    every DAG node.  Returns (total shared-plan node merges, outputs).
    """
    rng = random.Random(seed)
    fuzzer = StreamSQLFuzzer(rng)
    total_outputs = 0
    total_shared = 0
    for round_index in range(n_rounds):
        schema = fuzzer.schema()
        scripts = fuzzer.shared_prefix_scripts(schema, n_variants)
        records = fuzzer.records(schema, n_tuples)

        shared = StreamEngine()
        reference = StreamEngine.reference()
        queries = []
        for script in scripts:
            shared_handle = shared.register_streamsql(script)
            reference_handle = reference.register_streamsql(script)
            queries.append(
                {
                    "script": script,
                    "schema": shared.lookup(shared_handle).output_schema,
                    "handles": (shared_handle, reference_handle),
                    "subs": (
                        shared.subscribe(shared_handle),
                        reference.subscribe(reference_handle),
                    ),
                }
            )

        sizes = fuzzer.partitions(len(records))
        withdraw_after: Dict[int, List[int]] = {}
        for query_index in rng.sample(
            range(len(queries)), k=max(1, len(queries) // 3)
        ):
            withdraw_after.setdefault(
                rng.randint(0, len(sizes)), []
            ).append(query_index)

        cursor = 0
        for batch_index, size in enumerate(sizes + [0]):
            for query_index in withdraw_after.get(batch_index, ()):
                for engine, handle in zip(
                    (shared, reference), queries[query_index]["handles"]
                ):
                    engine.withdraw(handle)
            batch = records[cursor:cursor + size]
            cursor += size
            shared.push_batch("sensor", batch)
            for record in batch:
                reference.push("sensor", record)

        withdrawn = {qi for group in withdraw_after.values() for qi in group}
        for query_index, query in enumerate(queries):
            context = (
                f"seed={seed} round={round_index} variant={query_index} "
                f"withdrawn={query_index in withdrawn}\n{query['script']}"
            )
            actual = query["subs"][0].drain()
            expected = query["subs"][1].drain()
            assert_rows_match(query["schema"], actual, expected, context)
            total_outputs += len(expected)

        for query_index, query in enumerate(queries):
            if query_index in withdrawn:
                continue
            for engine, handle in zip((shared, reference), query["handles"]):
                engine.withdraw(handle)
        (stats,) = shared.plan_stats().values()
        assert stats["queries"] == 0, f"seed={seed} round={round_index}"
        assert stats["live_nodes"] == 0, f"seed={seed} round={round_index}"
        total_shared += stats["nodes_shared"]
    return total_shared, total_outputs


class TestStreamSQLFuzz:
    """Seeded, bounded tier-1 passes (deterministic)."""

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_fuzz_compiled_matches_reference(self, seed):
        queries, outputs = run_differential(seed, n_queries=25, n_tuples=80)
        # A silent fuzzer is a broken fuzzer: the random workloads must
        # actually produce output tuples to compare.
        assert queries == 25
        assert outputs > 100

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_fuzz_multiquery_shared_matches_reference(self, seed):
        shared_nodes, outputs = run_multiquery_differential(
            seed, n_rounds=5, n_variants=6, n_tuples=60
        )
        assert outputs > 50
        # The family generator must actually produce prefix sharing,
        # or the differential is not testing the shared plan at all.
        assert shared_nodes > 0

    def test_generator_emits_every_stage_shape(self):
        """The grammar must cover filters, maps, tuple AND time windows."""
        rng = random.Random(7)
        fuzzer = StreamSQLFuzzer(rng)
        seen = set()
        for _ in range(200):
            script = fuzzer.query(fuzzer.schema())
            if "WHERE" in script.upper():
                seen.add("filter")
            if "[w_" in script:
                seen.add("window")
            if "TUPLES" in script.upper():
                seen.add("tuple-window")
            if "SECONDS" in script.upper():
                seen.add("time-window")
            upper = script.upper()
            if ", " in upper.split("INTO")[0] and "(" not in upper.split("FROM")[0].split("SELECT")[-1]:
                seen.add("map")
        assert {"filter", "window", "tuple-window", "time-window", "map"} <= seen


@pytest.mark.skipif(
    not os.environ.get("FUZZ_LONG"),
    reason="long randomized pass; set FUZZ_LONG=1 (CI nightly/manual fuzz job)",
)
class TestStreamSQLFuzzLong:
    """The nightly/manual deep pass: many more queries, longer streams,
    and a freely chosen seed so successive nights cover new ground."""

    def test_fuzz_long(self):
        seed = int(os.environ.get("FUZZ_SEED", random.SystemRandom().randint(0, 2**31)))
        print(f"FUZZ_SEED={seed} (set FUZZ_SEED to reproduce)")
        run_differential(seed, n_queries=200, n_tuples=400)

    def test_fuzz_long_multiquery(self):
        seed = int(os.environ.get("FUZZ_SEED", random.SystemRandom().randint(0, 2**31)))
        print(f"FUZZ_SEED={seed} (set FUZZ_SEED to reproduce)")
        run_multiquery_differential(seed, n_rounds=40, n_variants=12, n_tuples=200)
