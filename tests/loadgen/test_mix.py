"""Seeded-reproducibility and distribution pins for the op-mix
generator — the property the harness's "two runs with the same seed
generate identical op sequences" claim rests on."""

import dataclasses

from repro.loadgen.config import LoadgenConfig, MixWeights
from repro.loadgen.mix import OpMixStream, ZipfSampler, derive_seed, op_kind
from repro.serving.wire import EvaluateOp, IngestOp, LoadOp, RevokeOp, UpdateOp

import random

CONFIG = LoadgenConfig(seed=7, streams=3, subjects_per_stream=8)


class TestReproducibility:
    def test_same_seed_same_worker_same_connection_identical_sequence(self):
        first = OpMixStream(CONFIG, worker_id=1, connection_id=2).take(500)
        second = OpMixStream(CONFIG, worker_id=1, connection_id=2).take(500)
        # Wire ops are frozen dataclasses: equality is field-by-field,
        # XML payloads included.
        assert first == second

    def test_different_seeds_diverge(self):
        base = OpMixStream(CONFIG, 0, 0).take(200)
        other_seed = OpMixStream(
            dataclasses.replace(CONFIG, seed=8), 0, 0
        ).take(200)
        assert base != other_seed

    def test_different_connections_diverge(self):
        assert (
            OpMixStream(CONFIG, 0, 0).take(200)
            != OpMixStream(CONFIG, 0, 1).take(200)
        )
        assert (
            OpMixStream(CONFIG, 0, 0).take(200)
            != OpMixStream(CONFIG, 1, 0).take(200)
        )

    def test_derive_seed_is_stable_and_order_sensitive(self):
        assert derive_seed(7, 1, 2) == derive_seed(7, 1, 2)
        assert derive_seed(7, 1, 2) != derive_seed(7, 2, 1)
        assert derive_seed(7, 1, 2) != derive_seed(8, 1, 2)


class TestMixShape:
    def test_mix_covers_every_op_kind_with_positive_weight(self):
        ops = OpMixStream(CONFIG, 0, 0).take(3000)
        kinds = {op_kind(op) for op in ops}
        assert kinds == {
            "EvaluateOp", "IngestOp", "LoadOp", "UpdateOp", "RevokeOp",
        }

    def test_zero_weight_kinds_never_appear(self):
        config = dataclasses.replace(
            CONFIG, mix=MixWeights(evaluate=1.0, ingest=0.0, load=0.0,
                                   update=0.0, revoke=0.0)
        )
        ops = OpMixStream(config, 0, 0).take(300)
        assert all(isinstance(op, EvaluateOp) for op in ops)

    def test_evaluate_fraction_tracks_the_weight(self):
        ops = OpMixStream(CONFIG, 0, 0).take(5000)
        evaluates = sum(isinstance(op, EvaluateOp) for op in ops)
        weight = dict(CONFIG.mix.normalized())["evaluate"]
        assert abs(evaluates / len(ops) - weight) < 0.05

    def test_churn_is_self_priming_and_namespaced(self):
        """Revoke/update before any load degrade to loads; every churn
        policy id carries the (worker, connection) namespace."""
        config = dataclasses.replace(
            CONFIG, mix=MixWeights(evaluate=0.0, ingest=0.0, load=0.2,
                                   update=0.4, revoke=0.4)
        )
        stream = OpMixStream(config, worker_id=3, connection_id=5)
        ops = stream.take(400)
        assert isinstance(ops[0], LoadOp)
        live = set()
        for op in ops:
            if isinstance(op, LoadOp):
                pass  # ids are inside the XML; tracked via RevokeOp below
            elif isinstance(op, RevokeOp):
                assert op.policy_id.startswith("churn:3:5:")
                assert op.policy_id not in live  # never revoked twice
                live.add(op.policy_id)
            else:
                assert isinstance(op, UpdateOp)


class TestZipfSampler:
    def test_skew_prefers_low_ranks(self):
        sampler = ZipfSampler(population=100, alpha=1.1)
        rng = random.Random(3)
        draws = [sampler.sample(rng) for _ in range(20_000)]
        assert all(0 <= rank < 100 for rank in draws)
        top = sum(1 for rank in draws if rank == 0)
        bottom = sum(1 for rank in draws if rank == 99)
        assert top > bottom * 5

    def test_alpha_zero_is_uniform_ish(self):
        sampler = ZipfSampler(population=10, alpha=0.0)
        rng = random.Random(4)
        draws = [sampler.sample(rng) for _ in range(10_000)]
        for rank in range(10):
            share = sum(1 for draw in draws if draw == rank) / len(draws)
            assert 0.05 < share < 0.15


class TestMixWeights:
    def test_parse_round_trip(self):
        mix = MixWeights.parse("evaluate=0.5,ingest=0.5")
        normalized = dict(mix.normalized())
        assert normalized == {"evaluate": 0.5, "ingest": 0.5}

    def test_parse_rejects_unknown_kinds(self):
        import pytest

        with pytest.raises(ValueError, match="unknown op kind"):
            MixWeights.parse("select=1.0")

    def test_all_zero_mix_is_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            MixWeights(0, 0, 0, 0, 0).normalized()
