"""Loopback end-to-end smoke of the closed-loop harness.

One short self-served run (real spawned worker process, real loopback
sockets) must produce a well-shaped report: non-zero achieved QPS,
ordered per-op percentiles, coherent counters, and the JSON artifact
on disk.  Kept small — the full-scale run lives in
``benchmarks/bench_loadgen.py`` and the ``loadgen-smoke`` CI job.
"""

import json
from pathlib import Path

import pytest

from repro.loadgen.config import LoadgenConfig
from repro.loadgen.driver import run_loadgen


@pytest.fixture(scope="module")
def report_and_path(tmp_path_factory):
    output = tmp_path_factory.mktemp("loadgen") / "BENCH_loadgen.json"
    config = LoadgenConfig(
        duration=2.0,
        warmup=0.5,
        target_qps=300.0,
        seed=11,
        processes=1,
        connections=2,
        streams=2,
        subjects_per_stream=10,
        report_interval=60.0,  # no live ticks needed
        output=str(output),
    )
    return run_loadgen(config), output


class TestEndToEnd:
    def test_achieved_qps_is_positive(self, report_and_path):
        report, _ = report_and_path
        achieved = report["achieved"]
        assert achieved["qps"] > 0
        assert achieved["measured_completions"] > 0
        assert 0 < achieved["attainment"] <= 2.0
        assert achieved["target_qps"] == 300.0

    def test_percentiles_are_present_and_ordered(self, report_and_path):
        report, _ = report_and_path
        latency = report["latency_ms"]
        assert "EvaluateOp" in latency
        for op, stats in latency.items():
            assert stats["count"] > 0, op
            assert (
                stats["p50_ms"] <= stats["p90_ms"]
                <= stats["p99_ms"] <= stats["max_ms"]
            ), op

    def test_counters_are_coherent(self, report_and_path):
        report, _ = report_and_path
        assert report["completed"] > 0
        assert report["completed"] <= report["issued"] + report["retries"]
        assert report["timeouts"] == 0
        assert report["errors"] == {}
        # Every measured sample is a completed op.
        measured = sum(s["count"] for s in report["latency_ms"].values())
        assert measured <= report["completed"]

    def test_report_echoes_the_config(self, report_and_path):
        report, _ = report_and_path
        config = report["config"]
        assert config["seed"] == 11
        assert config["target_qps"] == 300.0
        assert config["processes"] == 1
        assert report["model"] == "measured"

    def test_artifact_written_and_loadable(self, report_and_path):
        report, output = report_and_path
        assert Path(output).exists()
        from_disk = json.loads(Path(output).read_text())
        assert from_disk["achieved"]["measured_completions"] == (
            report["achieved"]["measured_completions"]
        )
        assert "table" in from_disk

    def test_self_served_run_includes_server_side_latency(self, report_and_path):
        report, _ = report_and_path
        assert "server_side_latency_ms" in report
        assert report["server_side_latency_ms"].get("EvaluateOp", {}).get("count")


class TestConfigValidation:
    def test_warmup_must_fit_inside_duration(self):
        with pytest.raises(ValueError, match="warmup"):
            LoadgenConfig(duration=1.0, warmup=1.0).validate()

    def test_target_qps_must_be_positive(self):
        with pytest.raises(ValueError, match="target_qps"):
            LoadgenConfig(target_qps=0).validate()
