"""Tests for the ``python -m repro`` command-line front end."""

import pytest

from repro.__main__ import build_parser, main


class TestCli:
    def test_version(self, capsys):
        assert main(["version"]) == 0
        assert "eXACML+" in capsys.readouterr().out

    def test_fig6a_reduced(self, capsys):
        assert main(["fig6a", "--requests", "40", "--policies", "40"]) == 0
        out = capsys.readouterr().out
        assert "direct" in out and "exacml+" in out
        assert "network share" in out

    def test_fig6b_reduced(self, capsys):
        assert main(["fig6b", "--requests", "60", "--policies", "60"]) == 0
        out = capsys.readouterr().out
        assert "cache on" in out and "hit rate" in out

    def test_fig7_reduced(self, capsys):
        assert main(["fig7", "--requests", "30", "--policies", "30"]) == 0
        out = capsys.readouterr().out
        assert "pdp" in out and "PDP mean" in out

    def test_policy_load_reduced(self, capsys):
        assert main(["policy-load", "--requests", "30", "--policies", "30"]) == 0
        assert "mean" in capsys.readouterr().out

    def test_attack(self, capsys):
        assert main(["attack", "--tuples", "40"]) == 0
        out = capsys.readouterr().out
        assert "attack blocked" in out

    def test_seed_flag_changes_nothing_structural(self, capsys):
        assert main(["--seed", "5", "policy-load",
                     "--requests", "20", "--policies", "20"]) == 0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
