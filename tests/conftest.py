"""Shared fixtures for the eXACML+ reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core import UserQuery, XacmlPlusInstance, stream_policy
from repro.streams.graph import QueryGraph
from repro.streams.operators import (
    AggregateOperator,
    AggregationSpec,
    FilterOperator,
    MapOperator,
    WindowSpec,
    WindowType,
)
from repro.streams.schema import WEATHER_SCHEMA
from repro.streams.sources import WeatherSource


@pytest.fixture
def weather_schema():
    return WEATHER_SCHEMA


@pytest.fixture
def weather_records():
    """300 seeded weather records (plenty of rainy tuples)."""
    return WeatherSource(seed=3).records(300)


def build_nea_policy_graph() -> QueryGraph:
    """The paper's Example 1 policy graph (Figure 1)."""
    graph = QueryGraph("weather", name="nea-policy")
    graph.append(FilterOperator("rainrate > 5"))
    graph.append(MapOperator(["samplingtime", "rainrate", "windspeed"]))
    graph.append(
        AggregateOperator(
            WindowSpec(WindowType.TUPLE, 5, 2),
            [
                AggregationSpec.parse("samplingtime:lastval"),
                AggregationSpec.parse("rainrate:avg"),
                AggregationSpec.parse("windspeed:max"),
            ],
        )
    )
    return graph


def build_lta_user_query() -> UserQuery:
    """The paper's Figure 4(a) customised query."""
    return UserQuery(
        "weather",
        filter_condition="RainRate > 50",
        map_attributes=["RainRate"],
        window=WindowSpec(WindowType.TUPLE, 10, 2),
        aggregations=["avg(RainRate)"],
    )


@pytest.fixture
def nea_policy_graph():
    return build_nea_policy_graph()


@pytest.fixture
def lta_user_query():
    return build_lta_user_query()


@pytest.fixture
def nea_instance(nea_policy_graph):
    """An XACML+ instance with the weather stream and Example 1 policy."""
    instance = XacmlPlusInstance(allow_partial_results=True)
    instance.engine.register_input_stream("weather", WEATHER_SCHEMA)
    instance.load_policy(
        stream_policy("nea:weather:lta", "weather", nea_policy_graph, subject="LTA")
    )
    return instance
