"""Property tests for the serving wire codec (`repro.serving.wire`).

Round-trip: every registered message type survives encode → arbitrary
re-chunking → decode bit-identically, with its sequence number.
Adversarial: truncated frames, oversized length prefixes and garbage
payloads all surface as :class:`TransportError` — and a live server
connection survives a garbage payload (the loop answers it in order
and keeps serving).
"""

import asyncio
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TransportError
from repro.serving.wire import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    MESSAGE_TYPES,
    AckReply,
    ErrorReply,
    EvaluateOp,
    EvaluateReply,
    FrameDecoder,
    IngestOp,
    LoadOp,
    PingOp,
    RevokeOp,
    UpdateOp,
    decode_message,
    encode_frame,
    encode_message,
)

from serving_helpers import TIMEOUT, make_data_server

# -- strategies ----------------------------------------------------------------------

text = st.text(max_size=40)
opt_text = st.none() | text
json_scalar = (
    st.none() | st.booleans() | st.integers(-10**6, 10**6) | st.floats(
        allow_nan=False, allow_infinity=False, width=32
    ) | text
)
records = st.lists(
    st.dictionaries(text, json_scalar, max_size=4), max_size=4
)

MESSAGE_STRATEGIES = {
    EvaluateOp: st.builds(EvaluateOp, text, opt_text, st.booleans()),
    LoadOp: st.builds(LoadOp, text),
    UpdateOp: st.builds(UpdateOp, text),
    RevokeOp: st.builds(RevokeOp, text),
    IngestOp: st.builds(IngestOp, text, records),
    PingOp: st.just(PingOp()),
    EvaluateReply: st.builds(
        EvaluateReply, st.booleans(), opt_text, opt_text, opt_text, opt_text, opt_text
    ),
    AckReply: st.builds(AckReply, text, opt_text, st.integers(0, 10**9)),
    ErrorReply: st.builds(ErrorReply, text, text),
}

any_message = st.one_of(*MESSAGE_STRATEGIES.values())


def test_every_registered_type_has_a_strategy():
    # The round-trip property really does cover the whole protocol.
    assert set(MESSAGE_STRATEGIES) == set(MESSAGE_TYPES.values())


class TestRoundTrip:
    @given(any_message, st.integers(0, 2**31 - 1), st.randoms())
    @settings(max_examples=300, deadline=None)
    def test_roundtrip_through_arbitrary_chunking(self, message, seq, rng):
        frame = encode_message(seq, message)
        decoder = FrameDecoder()
        payloads = []
        position = 0
        while position < len(frame):
            step = rng.randint(1, len(frame) - position)
            payloads.extend(decoder.feed(frame[position:position + step]))
            position += step
        decoder.eof()
        assert len(payloads) == 1
        got_seq, got = decode_message(payloads[0])
        assert got_seq == seq
        assert got == message
        assert type(got) is type(message)

    @given(st.lists(st.tuples(st.integers(0, 999), any_message), max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_concatenated_frames_decode_in_order(self, items):
        stream = b"".join(encode_message(seq, m) for seq, m in items)
        decoder = FrameDecoder()
        decoded = [decode_message(p) for p in decoder.feed(stream)]
        decoder.eof()
        assert decoded == items


class TestMalformedInput:
    @given(any_message, st.integers(0, 999), st.integers(min_value=1))
    @settings(max_examples=100, deadline=None)
    def test_truncated_frame_raises_on_eof(self, message, seq, cut):
        frame = encode_message(seq, message)
        cut = min(cut, len(frame) - 1)
        decoder = FrameDecoder()
        assert decoder.feed(frame[:cut]) == []
        with pytest.raises(TransportError):
            decoder.eof()

    @given(st.integers(MAX_FRAME_BYTES + 1, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_oversized_length_prefix_rejected_before_buffering(self, length):
        decoder = FrameDecoder()
        with pytest.raises(TransportError):
            decoder.feed(struct.pack("!I", length))

    def test_oversized_payload_rejected_at_encode(self):
        with pytest.raises(TransportError):
            encode_frame(b"x" * (MAX_FRAME_BYTES + 1))

    @given(st.binary(max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_garbage_payload_raises_transport_error(self, payload):
        # Any leading byte that cannot start a JSON object envelope is
        # guaranteed garbage; JSON-shaped payloads may legitimately
        # decode, so force the non-JSON case.
        try:
            seq_message = decode_message(b"\xff" + payload)
        except TransportError:
            return
        pytest.fail(f"garbage decoded as {seq_message!r}")

    @pytest.mark.parametrize(
        "payload",
        [
            b"not json",
            b"[1, 2, 3]",                                 # non-object envelope
            b'{"op": "evaluate", "body": {}}',            # missing seq
            b'{"seq": true, "op": "ping", "body": {}}',   # bool is not a seq
            b'{"seq": 1, "op": "warp", "body": {}}',      # unknown op
            b'{"seq": 1, "op": "ping", "body": []}',      # non-object body
            b'{"seq": 1, "op": "revoke", "body": {}}',    # missing field
            b'{"seq": 1, "op": "ping", "body": {"x": 1}}',  # unknown field
        ],
    )
    def test_malformed_envelopes_raise_transport_error(self, payload):
        with pytest.raises(TransportError):
            decode_message(payload)


class TestServerSurvivesGarbage:
    def test_garbage_payload_does_not_kill_the_connection_loop(self):
        async def scenario():
            from repro.serving import AsyncClient, AsyncDataServer

            async with AsyncDataServer(make_data_server()) as front:
                async with await AsyncClient.connect(
                    "127.0.0.1", front.port
                ) as client:
                    # Intact frame, garbage payload: answered in order...
                    client._writer.write(encode_frame(b"\xffgarbage"))
                    await client._writer.drain()
                    reply = await client._read_reply(0)
                    assert isinstance(reply, ErrorReply)
                    assert reply.error_kind == "TransportError"
                    # ...and the connection still serves.
                    assert (await client.ping()).op == "ping"
                assert front.protocol_errors == 0

        asyncio.run(asyncio.wait_for(scenario(), TIMEOUT))

    def test_oversized_length_prefix_drops_only_that_connection(self):
        async def scenario():
            from repro.serving import AsyncClient, AsyncDataServer

            async with AsyncDataServer(make_data_server()) as front:
                bad = await AsyncClient.connect("127.0.0.1", front.port)
                good = await AsyncClient.connect("127.0.0.1", front.port)
                bad._writer.write(struct.pack("!I", MAX_FRAME_BYTES + 1))
                await bad._writer.drain()
                with pytest.raises(TransportError):
                    # The server cuts the connection without replying.
                    await bad._read_reply(0)
                assert (await good.ping()).op == "ping"
                assert front.protocol_errors == 1
                await bad.aclose()
                await good.aclose()

        asyncio.run(asyncio.wait_for(scenario(), TIMEOUT))
