"""Differential suite: served-concurrent ≡ in-process-serial decisions.

N async clients fire seeded mixed evaluate/load/update/revoke/ingest
scripts at one :class:`AsyncDataServer` concurrently (pipelined, over
real sockets); the same scripts replayed serially against an identical
in-process deployment must produce identical decision streams.

Equivalence holds because each client works a disjoint namespace
(its own stream, subjects and policy ids), which makes cross-client
interleavings commutative, while per-connection pipelining preserves
each client's own order — exactly the guarantee the server documents.
Handle URIs are excluded from the comparison (the engine's global
query counter interleaves nondeterministically); everything the PDP
and PEP decide — ok, decision, deciding policy, error kind, ingest
count — must match exactly, under continuous mutation churn.
"""

import asyncio
import random

import pytest

from repro.core import stream_policy
from repro.serving import AsyncClient, AsyncDataServer
from repro.serving.wire import (
    AckReply,
    ErrorReply,
    EvaluateOp,
    EvaluateReply,
    IngestOp,
    LoadOp,
    RevokeOp,
    UpdateOp,
)
from repro.xacml.request import Request
from repro.xacml.xml_io import policy_to_xml, request_to_xml

from serving_helpers import TIMEOUT, make_data_server, weather_graph

N_CLIENTS = 4
SCRIPT_LENGTH = 60
PIPELINE_CHUNK = 7
SEED = 20120917  # the paper's conference year/month, stable across runs


def client_stream(client_id: int) -> str:
    return f"weather_c{client_id}"


def build_script(client_id: int, rng: random.Random, length: int = SCRIPT_LENGTH):
    """One client's seeded op sequence, confined to its namespace."""
    stream = client_stream(client_id)
    subjects = [f"c{client_id}:s{j}" for j in range(4)]
    live = []
    next_policy = 0
    ops = []

    def policy_for(pid: str, subject: str, threshold: int):
        return stream_policy(
            pid, stream, weather_graph(threshold, stream=stream), subject=subject
        )

    def load_op():
        nonlocal next_policy
        pid = f"c{client_id}:p{next_policy}"
        next_policy += 1
        live.append(pid)
        return LoadOp(
            policy_to_xml(policy_for(pid, rng.choice(subjects), rng.randint(1, 9)))
        )

    # Two policies up front so early evaluates can permit.
    ops.append(load_op())
    ops.append(load_op())
    for _ in range(length):
        kind = rng.choice(
            ["evaluate"] * 4 + ["load", "update", "revoke", "ingest"]
        )
        if kind == "evaluate":
            subject = rng.choice(subjects + [f"c{client_id}:stranger"])
            ops.append(
                EvaluateOp(
                    request_to_xml(Request.simple(subject, stream)),
                    None,
                    rng.random() < 0.5,
                )
            )
        elif kind == "load":
            ops.append(load_op())
        elif kind == "update":
            # Mostly live policies; sometimes a dead/unknown id (the
            # resulting error must be identical on both paths too).
            pid = rng.choice(live) if live and rng.random() < 0.8 else (
                f"c{client_id}:ghost"
            )
            ops.append(
                UpdateOp(
                    policy_to_xml(
                        policy_for(pid, rng.choice(subjects), rng.randint(1, 9))
                    )
                )
            )
        elif kind == "revoke":
            if live and rng.random() < 0.8:
                pid = live.pop(rng.randrange(len(live)))
            else:
                pid = f"c{client_id}:ghost"
            ops.append(RevokeOp(pid))
        else:
            records = [
                {
                    "samplingtime": i,
                    "temperature": rng.uniform(20, 35),
                    "humidity": rng.uniform(40, 95),
                    "solarradiation": rng.uniform(0, 800),
                    "rainrate": rng.uniform(0, 12),
                    "windspeed": rng.uniform(0, 20),
                    "winddirection": rng.randrange(360),
                    "barometer": rng.uniform(980, 1040),
                }
                for i in range(rng.randint(1, 5))
            ]
            ops.append(IngestOp(stream, records))
    return ops


def build_scripts(seed: int = SEED):
    return [
        build_script(client_id, random.Random((seed, client_id).__hash__()))
        for client_id in range(N_CLIENTS)
    ]


def signature(reply):
    """The decision-relevant projection of one reply (no handle URIs)."""
    if isinstance(reply, EvaluateReply):
        return (
            "evaluate",
            reply.ok,
            reply.decision,
            reply.policy_id,
            reply.error_kind,
            reply.handle_uri is not None,
        )
    if isinstance(reply, AckReply):
        return ("ack", reply.op, reply.detail, reply.count)
    assert isinstance(reply, ErrorReply)
    return ("error", reply.error_kind)


def make_env(pdp_shards):
    return make_data_server(
        subjects=(),
        streams=tuple(client_stream(i) for i in range(N_CLIENTS)),
        pdp_shards=pdp_shards,
    )


async def run_served_concurrent(scripts, pdp_shards):
    server = make_env(pdp_shards)
    async with AsyncDataServer(server) as front:
        async def drive(script):
            async with await AsyncClient.connect("127.0.0.1", front.port) as client:
                replies = []
                for start in range(0, len(script), PIPELINE_CHUNK):
                    replies.extend(
                        await client.pipeline(script[start:start + PIPELINE_CHUNK])
                    )
                return replies
        outcomes = await asyncio.gather(*(drive(script) for script in scripts))
        assert front.connections_total == len(scripts)
    return [[signature(reply) for reply in replies] for replies in outcomes]


async def run_inprocess_serial(scripts, pdp_shards):
    server = make_env(pdp_shards)
    # A never-started front-end: using its execute() directly replays
    # the exact served op semantics in-process, one op at a time.
    reference = AsyncDataServer(server)
    outcomes = []
    for script in scripts:
        outcomes.append([signature(await reference.execute(op)) for op in script])
    return outcomes


@pytest.mark.parametrize("pdp_shards", [None, 4])
def test_served_concurrent_equals_inprocess_serial(pdp_shards):
    scripts = build_scripts()
    # The scripts really do churn: every mutating op kind is present.
    kinds = {type(op).__name__ for script in scripts for op in script}
    assert kinds == {"EvaluateOp", "LoadOp", "UpdateOp", "RevokeOp", "IngestOp"}

    async def scenario():
        served = await run_served_concurrent(scripts, pdp_shards)
        serial = await run_inprocess_serial(scripts, pdp_shards)
        return served, serial

    served, serial = asyncio.run(asyncio.wait_for(scenario(), TIMEOUT * 4))
    assert served == serial
    # The comparison is meaningful: permits, denials and errors all occur.
    flat = [sig for replies in served for sig in replies]
    evaluates = [sig for sig in flat if sig[0] == "evaluate"]
    assert any(sig[1] for sig in evaluates), "no permit ever granted"
    assert any(not sig[1] for sig in evaluates), "no denial ever produced"
    assert any(sig[0] == "error" for sig in flat), "no ghost-mutation errors"


def test_seeded_scripts_are_reproducible():
    first, second = build_scripts(), build_scripts()
    assert first == second
