"""Shared builders for the serving-layer tests.

Everything here is loopback-only and time-bounded: tier-1 must never
hang on a socket (`asyncio.wait_for` with :data:`TIMEOUT` wraps every
awaited stage in the tests).
"""

from __future__ import annotations

from repro.core import stream_policy
from repro.framework.network import SimulatedNetwork
from repro.framework.server import DataServer
from repro.streams.engine import StreamEngine
from repro.streams.graph import QueryGraph
from repro.streams.operators import FilterOperator
from repro.streams.schema import WEATHER_SCHEMA

#: Generous against CI jitter, far below any human-noticeable hang.
TIMEOUT = 30.0


def weather_graph(threshold: int = 5, stream: str = "weather") -> QueryGraph:
    return QueryGraph(stream).append(FilterOperator(f"rainrate > {threshold}"))


def make_data_server(
    subjects=("LTA",), streams=("weather",), pdp_shards=None
) -> DataServer:
    """A real DataServer over the simulated network, with one permissive
    stream policy per subject on the first stream."""
    network = SimulatedNetwork()
    engine = StreamEngine()
    for stream in streams:
        engine.register_input_stream(stream, WEATHER_SCHEMA)
    server = DataServer(
        network,
        engine=engine,
        enforce_single_access=False,
        allow_partial_results=True,
        pdp_shards=pdp_shards,
    )
    for subject in subjects:
        server.load_policy(
            stream_policy(
                f"p:{subject}",
                streams[0],
                weather_graph(stream=streams[0]),
                subject=subject,
            )
        )
    return server
