"""Pins for :class:`repro.serving.stats.LatencyRecorder`.

The snapshot-atomicity regression (ISSUE 9): ``snapshot()`` used to
take the lock once per op (``ops`` + one ``summary()`` each), so a
mid-run snapshot could mix counts from different instants — an op
recorded *after* an earlier row was summarized still showed up in a
later row.  The fix copies every op's samples under a single lock
acquisition.
"""

import threading

from repro.serving.stats import LatencyRecorder


class CountingLock:
    """A context-manager lock that counts acquisitions."""

    def __init__(self):
        self._lock = threading.Lock()
        self.acquisitions = 0

    def __enter__(self):
        self._lock.acquire()
        self.acquisitions += 1
        return self

    def __exit__(self, *exc_info):
        self._lock.release()


class TestSnapshotAtomicity:
    def test_snapshot_takes_the_lock_exactly_once(self):
        recorder = LatencyRecorder()
        for op in ("EvaluateOp", "IngestOp", "LoadOp", "RevokeOp"):
            for i in range(5):
                recorder.record(op, 0.001 * (i + 1))
        lock = CountingLock()
        recorder._lock = lock
        recorder.snapshot()
        # Pre-fix: 1 (ops) + one per op via summary() = 5 acquisitions.
        assert lock.acquisitions == 1
        lock.acquisitions = 0
        recorder.to_dict()
        assert lock.acquisitions == 1

    def test_snapshot_is_consistent_under_a_concurrent_recorder(self):
        """A writer always records op "a" strictly before op "b"; an
        atomic snapshot can therefore never report more "b" samples
        than "a" samples.  (The per-op-lock implementation summarized
        "a" first, then let the writer complete pairs before "b" was
        summarized — count_b > count_a was observable.)"""
        recorder = LatencyRecorder()

        def writer():
            # Bounded: an open-ended writer would grow the sample lists
            # by millions while each snapshot re-copies and re-sorts
            # them — O(n^2) into gigabytes.
            for _ in range(50_000):
                recorder.record("a", 0.001)
                recorder.record("b", 0.001)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            def check():
                summaries = recorder.snapshot()
                count_a = summaries["a"].count if "a" in summaries else 0
                count_b = summaries["b"].count if "b" in summaries else 0
                assert count_b <= count_a <= count_b + 1

            while thread.is_alive():
                check()
        finally:
            thread.join(timeout=30)
        check()
        assert recorder.snapshot()["a"].count == 50_000

    def test_snapshot_matches_per_op_summaries_when_quiescent(self):
        recorder = LatencyRecorder()
        recorder.record("EvaluateOp", 0.002)
        recorder.record_many("EvaluateOp", [0.004, 0.006])
        recorder.record("IngestOp", 0.010)
        summaries = recorder.snapshot()
        assert set(summaries) == {"EvaluateOp", "IngestOp"}
        assert summaries["EvaluateOp"] == recorder.summary("EvaluateOp")
        assert summaries["EvaluateOp"].count == 3
        assert summaries["IngestOp"] == recorder.summary("IngestOp")

    def test_record_many_is_a_noop_on_empty_batches(self):
        recorder = LatencyRecorder()
        recorder.record_many("EvaluateOp", [])
        assert recorder.count() == 0
        assert recorder.snapshot() == {}
