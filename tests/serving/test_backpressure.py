"""Backpressure, pipelining-order and cancellation tests for the
serving front-end.

The knobs make the effects observable at test scale: tiny kernel
buffers (``sndbuf``/``rcvbuf``) so the network path absorbs only a few
KB, a low write watermark so ``drain()`` blocks early, and a shallow
pipeline queue so the reader pause (``read_pauses``) is the visible
symptom of the responder being backed up.
"""

import asyncio

from repro.serving import AsyncClient, AsyncDataServer
from repro.serving.wire import EvaluateOp, PingOp
from repro.xacml.request import Request
from repro.xacml.xml_io import request_to_xml

from serving_helpers import TIMEOUT, make_data_server


def evaluate_op(subject="LTA", stream="weather", decide_only=True):
    return EvaluateOp(
        request_to_xml(Request.simple(subject, stream)), None, decide_only
    )


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT))


class TestBackpressure:
    def test_slow_reader_pauses_the_read_loop_at_the_watermark(self):
        async def scenario():
            server = make_data_server()
            front = AsyncDataServer(
                server,
                pipeline_depth=4,
                write_high_water=1024,
                sndbuf=4096,
                max_in_flight=1024,  # the queue, not the semaphore, pauses
            )
            async with front:
                client = await AsyncClient.connect(
                    "127.0.0.1", front.port, rcvbuf=4096
                )
                async with client:
                    # Pipeline far more responses than the kernel buffers
                    # + watermark can absorb, without reading any.
                    n = 400
                    seqs = [client.send_nowait(evaluate_op()) for _ in range(n)]
                    await client._writer.drain()
                    # The responder's drain() must block, the pipeline
                    # queue fill, and the reader stall.
                    deadline = asyncio.get_running_loop().time() + TIMEOUT
                    while front.read_pauses == 0:
                        assert asyncio.get_running_loop().time() < deadline
                        await asyncio.sleep(0.01)
                    # Releasing the reader (by reading) completes every
                    # reply, in exact request order.
                    replies = [await client._read_reply(seq) for seq in seqs]
                    assert all(r.ok and r.policy_id == "p:LTA" for r in replies)
            assert front.read_pauses > 0

        run(scenario())

    def test_in_flight_semaphore_pauses_the_reader(self):
        async def scenario():
            server = make_data_server()
            front = AsyncDataServer(
                server,
                max_in_flight=2,
                pipeline_depth=64,
                write_high_water=1024,
                sndbuf=4096,
            )
            async with front:
                async with await AsyncClient.connect(
                    "127.0.0.1", front.port, rcvbuf=4096
                ) as client:
                    seqs = [client.send_nowait(evaluate_op()) for _ in range(300)]
                    await client._writer.drain()
                    deadline = asyncio.get_running_loop().time() + TIMEOUT
                    while front.read_pauses == 0:
                        assert asyncio.get_running_loop().time() < deadline
                        await asyncio.sleep(0.01)
                    replies = [await client._read_reply(seq) for seq in seqs]
                    assert all(r.ok for r in replies)

        run(scenario())


class TestPipelineOrdering:
    def test_no_response_reordering_within_a_connection(self):
        async def scenario():
            server = make_data_server()
            async with AsyncDataServer(server) as front:
                async with await AsyncClient.connect(
                    "127.0.0.1", front.port
                ) as client:
                    # Alternate cheap pings with expensive registering
                    # evaluates: any out-of-order completion would trip
                    # the client's echoed-sequence check.
                    ops = []
                    for i in range(40):
                        ops.append(
                            PingOp() if i % 2 else evaluate_op(decide_only=False)
                        )
                    replies = await client.pipeline(ops)
                    for i, reply in enumerate(replies):
                        if i % 2:
                            assert reply.op == "ping"
                        else:
                            assert reply.ok and reply.handle_uri is not None

        run(scenario())


class TestCancellationMidPipeline:
    def test_aborted_client_leaves_other_connections_served(self):
        async def scenario():
            server = make_data_server(subjects=("LTA", "NEA"))
            front = AsyncDataServer(server, max_in_flight=6)
            async with front:
                doomed = await AsyncClient.connect("127.0.0.1", front.port)
                healthy = await AsyncClient.connect("127.0.0.1", front.port)
                # Fill the pipeline, confirm the server is mid-stream
                # (first reply back), then vanish without reading the
                # rest.
                seqs = [doomed.send_nowait(evaluate_op()) for _ in range(30)]
                await doomed._writer.drain()
                first = await doomed._read_reply(seqs[0])
                assert first.ok
                doomed._writer.transport.abort()
                # The healthy connection must keep working — and must be
                # able to push more ops than max_in_flight, proving the
                # aborted pipeline's permits were all released.
                async with healthy:
                    replies = await healthy.pipeline(
                        [evaluate_op("NEA") for _ in range(30)]
                    )
                    assert all(r.ok and r.policy_id == "p:NEA" for r in replies)
                deadline = asyncio.get_running_loop().time() + TIMEOUT
                while front.active_connections > 0:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.01)

        run(scenario())

    def test_server_close_with_live_pipelines_is_clean(self):
        async def scenario():
            server = make_data_server()
            front = AsyncDataServer(server)
            await front.start()
            clients = [
                await AsyncClient.connect("127.0.0.1", front.port)
                for _ in range(3)
            ]
            for client in clients:
                for _ in range(10):
                    client.send_nowait(evaluate_op())
                await client._writer.drain()
            await front.aclose()  # must not hang or error
            for client in clients:
                await client.aclose()

        run(scenario())
