"""Client-side resilience pins: per-call deadlines, typed timeouts,
and retry-on-retryable semantics (PR 7).

A scripted wire-speaking stub server stands in for the real one where
reply content must be forced (retryable errors on demand, a server
that never answers); the end-to-end retry-through-restart case runs
against a real :class:`AsyncDataServer` over a supervised pool.
"""

import asyncio

import pytest

from repro.errors import ClientTimeoutError, TransportError
from repro.serving import AsyncClient, AsyncDataServer
from repro.serving.client import RETRYABLE_OPS
from repro.serving.wire import (
    HEADER_BYTES,
    AckReply,
    ErrorReply,
    EvaluateOp,
    EvaluateReply,
    LoadOp,
    PingOp,
    _HEADER,
    decode_message,
    encode_message,
)
from repro.xacml.request import Request
from repro.xacml.sharding import ProcessShardPool
from repro.xacml.xml_io import request_to_xml

from serving_helpers import TIMEOUT, make_data_server


async def start_scripted_server(reply_for):
    """A loopback server speaking the wire protocol whose replies come
    from ``reply_for(call_index, op) -> reply | None`` (None: stay
    silent — the hung-server shape)."""
    state = {"calls": 0}

    async def handler(reader, writer):
        try:
            while True:
                header = await reader.readexactly(HEADER_BYTES)
                (length,) = _HEADER.unpack(header)
                payload = await reader.readexactly(length)
                seq, op = decode_message(payload)
                index = state["calls"]
                state["calls"] += 1
                reply = reply_for(index, op)
                if reply is None:
                    continue  # swallow the op: never answer
                writer.write(encode_message(seq, reply))
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
            pass
        finally:
            writer.close()

    server = await asyncio.start_server(handler, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1], state


def evaluate_op():
    return EvaluateOp(request_to_xml(Request.simple("u", "weather")), None, True)


class TestDeadlines:
    def test_hung_server_raises_typed_timeout_not_transport_error(self):
        async def scenario():
            server, port, _ = await start_scripted_server(lambda i, op: None)
            try:
                client = await AsyncClient.connect(
                    "127.0.0.1", port, timeout=0.2, max_retries=0
                )
                async with client:
                    with pytest.raises(ClientTimeoutError):
                        await client.ping()
                    assert client.timeouts == 1
                    # The positional protocol is desynchronized: the
                    # connection refuses further calls fast, telling
                    # the caller to reconnect.
                    with pytest.raises(TransportError, match="desynchronized"):
                        await client.ping()
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(asyncio.wait_for(scenario(), TIMEOUT))

    def test_timeout_type_is_distinct_from_transport_errors(self):
        assert not issubclass(ClientTimeoutError, TransportError)
        assert not issubclass(TransportError, ClientTimeoutError)

    def test_per_call_timeout_overrides_the_default(self):
        async def scenario():
            server, port, _ = await start_scripted_server(lambda i, op: None)
            try:
                # Default would wait 30 s; the per-call override trips
                # in a fraction of that.
                client = await AsyncClient.connect("127.0.0.1", port)
                async with client:
                    started = asyncio.get_running_loop().time()
                    with pytest.raises(ClientTimeoutError):
                        await client.ping(timeout=0.2)
                    assert asyncio.get_running_loop().time() - started < 5.0
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(asyncio.wait_for(scenario(), TIMEOUT))


class TestRetryPolicy:
    def test_idempotent_op_retries_until_success(self):
        def reply_for(index, op):
            if index < 2:
                return ErrorReply("ShardUnavailableError", "mid-restart",
                                  retryable=True)
            return EvaluateReply(ok=True, decision="Permit", policy_id="p")

        async def scenario():
            server, port, _ = await start_scripted_server(reply_for)
            try:
                client = await AsyncClient.connect(
                    "127.0.0.1", port,
                    max_retries=5, retry_base_delay=0.01, retry_max_delay=0.05,
                )
                async with client:
                    reply = await client.call(evaluate_op())
                    assert isinstance(reply, EvaluateReply) and reply.ok
                    assert client.retries_performed == 2
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(asyncio.wait_for(scenario(), TIMEOUT))

    def test_mutations_are_never_auto_retried(self):
        assert LoadOp not in RETRYABLE_OPS

        def reply_for(index, op):
            return ErrorReply("ShardUnavailableError", "mid-restart",
                              retryable=True)

        async def scenario():
            server, port, state = await start_scripted_server(reply_for)
            try:
                client = await AsyncClient.connect(
                    "127.0.0.1", port, max_retries=5, retry_base_delay=0.01
                )
                async with client:
                    reply = await client.call(LoadOp("<not-even-parsed/>"))
                    # The retryable refusal is surfaced, not resent:
                    # whether to replay a mutation is the caller's call.
                    assert isinstance(reply, ErrorReply) and reply.retryable
                    assert client.retries_performed == 0
                    assert state["calls"] == 1
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(asyncio.wait_for(scenario(), TIMEOUT))

    def test_non_retryable_errors_are_not_retried(self):
        def reply_for(index, op):
            return ErrorReply("PolicyStoreError", "no such policy")

        async def scenario():
            server, port, state = await start_scripted_server(reply_for)
            try:
                client = await AsyncClient.connect(
                    "127.0.0.1", port, max_retries=5, retry_base_delay=0.01
                )
                async with client:
                    reply = await client.call(evaluate_op())
                    assert isinstance(reply, ErrorReply)
                    assert not reply.retryable
                    assert client.retries_performed == 0
                    assert state["calls"] == 1
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(asyncio.wait_for(scenario(), TIMEOUT))

    def test_exhausted_retries_surface_the_last_error(self):
        def reply_for(index, op):
            return ErrorReply("ShardUnavailableError", "still down",
                              retryable=True)

        async def scenario():
            server, port, state = await start_scripted_server(reply_for)
            try:
                client = await AsyncClient.connect(
                    "127.0.0.1", port,
                    max_retries=3, retry_base_delay=0.01, retry_max_delay=0.02,
                )
                async with client:
                    reply = await client.call(PingOp())
                    assert isinstance(reply, ErrorReply) and reply.retryable
                    assert client.retries_performed == 3
                    assert state["calls"] == 4  # 1 original + 3 retries
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(asyncio.wait_for(scenario(), TIMEOUT))


class TestRetryDeadlineBudget:
    """The whole retry loop — attempts *and* backoff sleeps — is
    bounded by one overall deadline (ISSUE 9).  Pre-fix, every attempt
    got a fresh per-call deadline, so ``timeout=T`` could block for
    ~``max_retries × (T + backoff)``."""

    def test_retry_loop_is_bounded_by_one_overall_deadline(self):
        def reply_for(index, op):
            return ErrorReply("ShardUnavailableError", "still down",
                              retryable=True)

        async def scenario():
            server, port, _ = await start_scripted_server(reply_for)
            try:
                # Pre-fix budget: up to 1000 jittered sleeps of ≤ 0.2 s
                # (~100 s expected).  Post-fix: the loop returns the
                # last retryable error within ~timeout.
                client = await AsyncClient.connect(
                    "127.0.0.1", port,
                    max_retries=1000,
                    retry_base_delay=0.2, retry_max_delay=0.2,
                )
                async with client:
                    loop = asyncio.get_running_loop()
                    started = loop.time()
                    reply = await client.call(PingOp(), timeout=0.5)
                    elapsed = loop.time() - started
                    assert isinstance(reply, ErrorReply) and reply.retryable
                    assert elapsed < 2.0
                    # The budget allowed real retries before expiring.
                    assert client.retries_performed >= 1
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(asyncio.wait_for(scenario(), TIMEOUT))

    def test_hang_after_retryable_error_times_out_at_the_call_deadline(self):
        def reply_for(index, op):
            if index == 0:
                return ErrorReply("ShardUnavailableError", "mid-restart",
                                  retryable=True)
            return None  # the retry attempt hangs

        async def scenario():
            server, port, _ = await start_scripted_server(reply_for)
            try:
                client = await AsyncClient.connect(
                    "127.0.0.1", port,
                    max_retries=5, retry_base_delay=0.01, retry_max_delay=0.02,
                )
                async with client:
                    loop = asyncio.get_running_loop()
                    started = loop.time()
                    with pytest.raises(ClientTimeoutError):
                        await client.call(PingOp(), timeout=0.4)
                    # The hung retry shares the original 0.4 s budget —
                    # it does not get a fresh 0.4 s of its own.
                    assert loop.time() - started < 1.5
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(asyncio.wait_for(scenario(), TIMEOUT))

    def test_unbounded_calls_still_retry_without_a_deadline(self):
        def reply_for(index, op):
            if index < 2:
                return ErrorReply("ShardUnavailableError", "mid-restart",
                                  retryable=True)
            return AckReply("ping")

        async def scenario():
            server, port, _ = await start_scripted_server(reply_for)
            try:
                client = await AsyncClient.connect(
                    "127.0.0.1", port, timeout=None,
                    max_retries=5, retry_base_delay=0.01, retry_max_delay=0.02,
                )
                async with client:
                    reply = await client.call(PingOp())
                    assert isinstance(reply, AckReply)
                    assert client.retries_performed == 2
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(asyncio.wait_for(scenario(), TIMEOUT))


class TestConnectCleanup:
    def test_failed_rcvbuf_connect_closes_the_raw_socket(self, monkeypatch):
        """The rcvbuf path creates the socket by hand; a failed
        ``sock_connect`` must close it instead of leaking the fd
        (ISSUE 9)."""
        import socket as socket_module

        created = []
        real_socket = socket_module.socket

        def tracking_socket(*args, **kwargs):
            sock = real_socket(*args, **kwargs)
            created.append(sock)
            return sock

        # Reserve a loopback port with no listener behind it.
        probe = real_socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()

        monkeypatch.setattr(socket_module, "socket", tracking_socket)

        async def scenario():
            with pytest.raises(OSError):
                await AsyncClient.connect("127.0.0.1", dead_port, rcvbuf=4096)

        asyncio.run(asyncio.wait_for(scenario(), TIMEOUT))
        # The event loop creates AF_UNIX self-pipe sockets through the
        # same constructor; only the AF_INET one is the client's.
        inet = [s for s in created if s.family == socket_module.AF_INET]
        assert len(inet) == 1
        assert inet[0].fileno() == -1, "raw socket leaked on failed connect"


class TestServedShardUnavailable:
    def test_server_maps_shard_unavailable_to_retryable_wire_error(self):
        server = make_data_server(pdp_shards=4)
        store = server.instance.store
        request_xml = request_to_xml(Request.simple("LTA", "weather"))
        (shard_id,) = store.shards_for_request(Request.simple("LTA", "weather"))

        async def scenario(pool):
            async with AsyncDataServer(server, pool=pool) as front:
                client = await AsyncClient.connect(
                    "127.0.0.1", front.port, max_retries=0
                )
                async with client:
                    reply = await client.call(
                        EvaluateOp(request_xml, None, True)
                    )
                    assert isinstance(reply, EvaluateReply) and reply.ok
                    pool.kill_worker(shard_id)
                    deadline = asyncio.get_running_loop().time() + 10.0
                    while asyncio.get_running_loop().time() < deadline:
                        reply = await client.call(
                            EvaluateOp(request_xml, None, True)
                        )
                        if isinstance(reply, ErrorReply):
                            break
                    assert isinstance(reply, ErrorReply)
                    assert reply.error_kind == "ShardUnavailableError"
                    assert reply.retryable
                    # The connection survived the mapped error.
                    assert isinstance(await client.ping(), AckReply)

        with ProcessShardPool(
            store, on_unavailable="error", restart_backoff=30.0
        ) as pool:
            asyncio.run(asyncio.wait_for(scenario(pool), TIMEOUT))

    def test_degraded_shard_maps_to_fatal_wire_error(self):
        server = make_data_server(pdp_shards=4)
        store = server.instance.store
        request_xml = request_to_xml(Request.simple("LTA", "weather"))
        (shard_id,) = store.shards_for_request(Request.simple("LTA", "weather"))

        async def scenario(pool):
            async with AsyncDataServer(server, pool=pool) as front:
                client = await AsyncClient.connect(
                    "127.0.0.1", front.port, max_retries=0
                )
                async with client:
                    pool.kill_worker(shard_id)
                    deadline = asyncio.get_running_loop().time() + 10.0
                    while (
                        pool.health()["statuses"][shard_id] != "degraded"
                        and asyncio.get_running_loop().time() < deadline
                    ):
                        await asyncio.sleep(0.01)
                    reply = await client.call(
                        EvaluateOp(request_xml, None, True)
                    )
                    assert isinstance(reply, ErrorReply)
                    assert reply.error_kind == "ShardUnavailableError"
                    assert not reply.retryable  # degraded: retry won't help

        with ProcessShardPool(
            store, on_unavailable="error", max_restarts=0
        ) as pool:
            asyncio.run(asyncio.wait_for(scenario(pool), TIMEOUT))

    def test_client_retries_ride_through_a_supervised_restart(self):
        server = make_data_server(pdp_shards=4)
        store = server.instance.store
        request_xml = request_to_xml(Request.simple("LTA", "weather"))
        (shard_id,) = store.shards_for_request(Request.simple("LTA", "weather"))

        async def scenario(pool):
            async with AsyncDataServer(server, pool=pool) as front:
                client = await AsyncClient.connect(
                    "127.0.0.1", front.port,
                    max_retries=40, retry_base_delay=0.02,
                    retry_max_delay=0.25,
                )
                async with client:
                    pool.kill_worker(shard_id)
                    # One logical call: the retry loop rides through
                    # death detection, backoff and catch-up, and comes
                    # back with the correct decision.
                    reply = await client.call(
                        EvaluateOp(request_xml, None, True)
                    )
                    assert isinstance(reply, EvaluateReply)
                    assert reply.ok and reply.policy_id == "p:LTA"
            assert pool.health()["worker_restarts"] >= 1

        with ProcessShardPool(
            store, on_unavailable="error", restart_backoff=0.3
        ) as pool:
            asyncio.run(asyncio.wait_for(scenario(pool), TIMEOUT))
