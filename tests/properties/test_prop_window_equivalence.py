"""Differential tests: columnar-incremental window aggregation ≡ seed.

The columnar path (per-attribute ring buffers + incremental
:class:`~repro.streams.operators.aggregate.AggregateState` objects,
with the two-stacks trick for min/max and reverse-Welford for stdev)
must be output-equivalent to the seed row-oriented
recompute-per-window path (``use_compiled=False`` /
``StreamEngine.reference()``) over hypothesis-generated streams and
window specs — tuple and time windows, step < size (overlapping,
where the incremental states actually engage), step = size and
step > size (gaps), random batch partitions, and out-of-order
timestamps for the time-window scan fallback.

Comparison discipline: **exact** equality for min/max/count/first/
last/median, for every aggregate over int columns (running int sums
are arbitrary-precision), and for all time windows (their columnar
path recomputes from column slices, which reassociates nothing);
**float tolerance** for avg/sum/stdev over double columns on
overlapping tuple windows, where incremental eviction legitimately
drifts from a fresh recomputation by a few ulps.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.streams.engine import StreamEngine
from repro.streams.graph import QueryGraph
from repro.streams.operators import (
    AggregateOperator,
    AggregationSpec,
    WindowSpec,
    WindowType,
)
from repro.streams.schema import DataType, Field, Schema
from repro.streams.tuples import StreamTuple

SCHEMA = Schema(
    "w",
    [
        Field("t", DataType.TIMESTAMP),
        Field("x", DataType.DOUBLE),
        Field("i", DataType.INT),
    ],
)

#: Every built-in aggregate, over the double and the int column.
AGG_POOL = [
    "x:avg", "x:sum", "x:count", "x:min", "x:max",
    "x:firstval", "x:lastval", "x:stdev", "x:median",
    "i:sum", "i:min", "i:max", "i:avg",
]

#: Aggregations whose incremental state does float arithmetic that can
#: drift from recomputation (running add/subtract, reverse-Welford).
DRIFTING = {"avg", "sum", "stdev"}

values_strategy = st.lists(
    st.floats(min_value=-50, max_value=50, allow_nan=False, width=32),
    min_size=0,
    max_size=60,
)


def make_tuples(values, timestamps=None):
    if timestamps is None:
        timestamps = [float(index) for index in range(len(values))]
    return [
        StreamTuple(SCHEMA, (float(ts), float(v), int(v)))
        for ts, v in zip(timestamps, values)
    ]


def build_graph(window_type, size, step, agg_texts):
    specs = [AggregationSpec.parse(text) for text in agg_texts]
    return QueryGraph("w").append(
        AggregateOperator(
            WindowSpec(window_type, size, step),
            specs,
            time_attribute="t" if window_type is WindowType.TIME else None,
        )
    )


def partition(items, cuts):
    batches, last = [], 0
    for cut in sorted(set(cuts)):
        batches.append(items[last:cut])
        last = cut
    batches.append(items[last:])
    return batches


def assert_equivalent(got, expected, output_schema, specs):
    """Per-field comparison: exact, except float tolerance where the
    incremental state legitimately reassociates float arithmetic.
    Constant-window stdev is carved back out of the tolerance: the
    reverse-Welford state detects all-equal windows (suffix run) and
    answers an exact 0.0, so a zero expectation admits zero drift."""
    assert len(got) == len(expected)
    field_rules = [
        (field.dtype is DataType.DOUBLE and spec.function.name in DRIFTING, spec)
        for field, spec in zip(output_schema, specs)
    ]
    for got_tuple, expected_tuple in zip(got, expected):
        for (tolerant, spec), g, e in zip(
            field_rules, got_tuple.values, expected_tuple.values
        ):
            if tolerant and not (spec.function.name == "stdev" and e == 0.0):
                assert math.isclose(g, e, rel_tol=1e-6, abs_tol=1e-4), (g, e)
            else:
                assert g == e, (g, e)


def run_pair(graph, tuples, cuts):
    """(columnar outputs over a random batch partition, seed outputs)."""
    columnar = graph.instantiate(SCHEMA)
    got = []
    for batch in partition(tuples, cuts):
        got.extend(columnar.process_many(batch))
    reference = graph.instantiate(SCHEMA, compiled=False)
    expected = []
    for tup in tuples:
        expected.extend(reference.process(tup))
    return got, expected, columnar.output_schema


class TestTupleWindowEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(
        values=values_strategy,
        size=st.integers(min_value=1, max_value=8),
        step=st.integers(min_value=1, max_value=8),
        aggs=st.lists(st.sampled_from(AGG_POOL), min_size=1, max_size=5, unique=True),
        cuts=st.lists(st.integers(min_value=0, max_value=60), max_size=5),
    )
    def test_columnar_matches_seed(self, values, size, step, aggs, cuts):
        graph = build_graph(WindowType.TUPLE, size, step, aggs)
        tuples = make_tuples(values)
        got, expected, output_schema = run_pair(graph, tuples, cuts)
        assert_equivalent(
            got, expected, output_schema, graph.aggregate_operator.aggregations
        )

    @settings(max_examples=100, deadline=None)
    @given(
        values=values_strategy,
        size=st.integers(min_value=2, max_value=10),
        aggs=st.lists(st.sampled_from(AGG_POOL), min_size=1, max_size=4, unique=True),
    )
    def test_fully_overlapping_window(self, values, size, aggs):
        """step=1 is the maximum-overlap stress for the state machinery
        (every tuple triggers one insert and one evict per spec)."""
        graph = build_graph(WindowType.TUPLE, size, 1, aggs)
        tuples = make_tuples(values)
        got, expected, output_schema = run_pair(graph, tuples, [7, 8, 23])
        assert_equivalent(
            got, expected, output_schema, graph.aggregate_operator.aggregations
        )


class TestTimeWindowEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(
        values=values_strategy,
        deltas=st.lists(
            st.floats(min_value=0, max_value=5, allow_nan=False, width=16),
            min_size=0,
            max_size=60,
        ),
        size=st.integers(min_value=1, max_value=10),
        step=st.integers(min_value=1, max_value=10),
        aggs=st.lists(st.sampled_from(AGG_POOL), min_size=1, max_size=4, unique=True),
        cuts=st.lists(st.integers(min_value=0, max_value=60), max_size=4),
    )
    def test_monotonic_timestamps(self, values, deltas, size, step, aggs, cuts):
        """Monotonic timestamps (the pointer-eviction fast path):
        the columnar path recomputes from slices, so equality is exact."""
        n = min(len(values), len(deltas))
        timestamps, now = [], 0.0
        for delta in deltas[:n]:
            now += delta
            timestamps.append(now)
        graph = build_graph(WindowType.TIME, size, step, aggs)
        tuples = make_tuples(values[:n], timestamps)
        got, expected, output_schema = run_pair(graph, tuples, cuts)
        assert [t.values for t in got] == [t.values for t in expected]

    @settings(max_examples=150, deadline=None)
    @given(
        values=values_strategy,
        timestamps=st.lists(
            st.floats(min_value=0, max_value=60, allow_nan=False, width=16),
            min_size=0,
            max_size=60,
        ),
        size=st.integers(min_value=1, max_value=10),
        step=st.integers(min_value=1, max_value=10),
        aggs=st.lists(st.sampled_from(AGG_POOL), min_size=1, max_size=4, unique=True),
        cuts=st.lists(st.integers(min_value=0, max_value=60), max_size=4),
    )
    def test_out_of_order_timestamps(self, values, timestamps, size, step, aggs, cuts):
        """Arbitrary (possibly non-monotonic) timestamps exercise the
        scan fallback and the monotonic→scan mid-stream transition."""
        n = min(len(values), len(timestamps))
        graph = build_graph(WindowType.TIME, size, step, aggs)
        tuples = make_tuples(values[:n], timestamps[:n])
        got, expected, output_schema = run_pair(graph, tuples, cuts)
        assert [t.values for t in got] == [t.values for t in expected]


class TestEngineLevelEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        values=values_strategy,
        size=st.integers(min_value=1, max_value=6),
        step=st.integers(min_value=1, max_value=6),
        cuts=st.lists(st.integers(min_value=0, max_value=60), max_size=3),
    )
    def test_compiled_engine_matches_reference_engine(self, values, size, step, cuts):
        """Acceptance criterion: the default engine path is
        output-identical (modulo float drift) to StreamEngine.reference()."""
        aggs = ["x:avg", "x:min", "x:max", "x:count", "i:sum"]
        recs = make_tuples(values)
        outputs = {}
        for mode in ("reference", "compiled"):
            engine = (
                StreamEngine.reference() if mode == "reference" else StreamEngine()
            )
            engine.register_input_stream("w", SCHEMA)
            handle = engine.register_query(
                build_graph(WindowType.TUPLE, size, step, aggs)
            )
            if mode == "reference":
                for tup in recs:
                    engine.push("w", tup)
            else:
                for batch in partition(recs, cuts):
                    engine.push_batch("w", batch)
            outputs[mode] = engine.read(handle)
            output_schema = engine.lookup(handle).output_schema
        assert_equivalent(
            outputs["compiled"],
            outputs["reference"],
            output_schema,
            [AggregationSpec.parse(text) for text in aggs],
        )
