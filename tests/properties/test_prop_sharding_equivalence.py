"""Differential tests: ShardedPDP ≡ reference single-store PDP.

The sharded engine (`repro.xacml.sharding`) hash-partitions policies by
their target's literal resource-id keys, replicates wildcard /
non-indexable targets to every shard, routes each request to the owning
shard's PDP (scattering across shards when a request's resource values
span several) and fans invalidation through a bus.  All of that must be
*decision- and obligation-identical* to one
``PolicyDecisionPoint.reference()`` over a single store — across shard
counts {1, 2, 8}, every built-in combining algorithm, and interleaved
load/update/remove mutations, with equivalence re-checked after every
single mutation so cache-invalidation interleavings are covered.

Policy/request strategies are shared with the PR 1 harness
(``test_prop_pdp_equivalence``); this module widens the request shapes
with multi-valued resources (the scatter path) and resource-less
requests (the wildcard-only route).
"""

import pytest
from hypothesis import given, settings, strategies as st

from test_prop_pdp_equivalence import (
    ACTIONS,
    COMBINING,
    RESOURCES,
    SUBJECTS,
    build_policy,
    mutations,
    policy_specs,
)

from repro.errors import PolicyStoreError
from repro.xacml.attributes import (
    RESOURCE_ID,
    Attribute,
    AttributeCategory,
    AttributeValue,
)
from repro.xacml.pdp import PolicyDecisionPoint
from repro.xacml.policy import Policy, Rule, Target
from repro.xacml.request import Request
from repro.xacml.response import Effect
from repro.xacml.sharding import ShardedPDP, ShardedPolicyStore, shard_of
from repro.xacml.store import PolicyStore

SHARD_COUNTS = (1, 2, 8)


def make_sharded_pair(n_shards, combining="first-applicable", cache_size=8):
    """A sharded PDP and a single-store reference PDP.

    Unlike the PR 1 harness the two sides cannot share a store, so
    ``apply`` mirrors every mutation into both.
    """
    sharded_store = ShardedPolicyStore(n_shards)
    sharded = ShardedPDP(sharded_store, combining, cache_size=cache_size)
    reference_store = PolicyStore()
    reference = PolicyDecisionPoint.reference(reference_store, combining)

    def apply(kind, *args):
        getattr(sharded_store, kind)(*args)
        getattr(reference_store, kind)(*args)

    return sharded, reference, apply


def assert_equivalent(sharded, reference, request):
    expected = reference.evaluate(request)
    actual = sharded.evaluate(request)
    assert actual.decision is expected.decision
    assert actual.policy_id == expected.policy_id
    assert actual.obligations == expected.obligations
    assert actual.status_message == expected.status_message


# -- request shapes ----------------------------------------------------------------
#
# The base shape plus the two routing edge cases the single-store engine
# never distinguishes: several resource-id values (may span shards →
# scatter path) and no resource-id at all (wildcard-only → shard 0).

@st.composite
def sharding_requests(draw):
    shape = draw(st.sampled_from(("simple", "multi-resource", "no-resource")))
    if shape == "no-resource":
        request = Request()
        request.add(
            Attribute(
                AttributeCategory.SUBJECT,
                "urn:oasis:names:tc:xacml:1.0:subject:subject-id",
                AttributeValue.string(draw(st.sampled_from(SUBJECTS))),
            )
        )
        return request
    request = Request.simple(
        draw(st.sampled_from(SUBJECTS + ("eve",))),
        draw(st.sampled_from(RESOURCES + ("other",))),
        draw(st.sampled_from(ACTIONS)),
        environment={"clearance": draw(st.integers(min_value=0, max_value=5))},
    )
    if shape == "multi-resource":
        request.add(
            Attribute(
                AttributeCategory.RESOURCE,
                RESOURCE_ID,
                AttributeValue.string(draw(st.sampled_from(RESOURCES))),
            )
        )
    return request


class TestShardingEquivalence:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    @settings(max_examples=40, deadline=None)
    @given(
        specs=st.lists(policy_specs, min_size=0, max_size=8),
        request_list=st.lists(sharding_requests(), min_size=1, max_size=6),
        combining=st.sampled_from(COMBINING),
        ops=mutations,
    )
    def test_sharded_pdp_matches_reference(
        self, n_shards, specs, request_list, combining, ops
    ):
        sharded, reference, apply = make_sharded_pair(n_shards, combining)
        for i, spec in enumerate(specs):
            apply("load", build_policy(f"p{i}", spec))

        # Twice, so the second pass is served from shard decision caches.
        for request in request_list + request_list:
            assert_equivalent(sharded, reference, request)

        # Interleaved mutations: equivalence must hold after *every*
        # store event, not just at the end — this is what pins the
        # shard-cache invalidation and replica-migration interleavings.
        next_id = len(specs)
        for kind, index, spec in ops:
            loaded = [p.policy_id for p in reference.store.policies()]
            if kind == "load":
                apply("load", build_policy(f"p{next_id}", spec))
                next_id += 1
            elif not loaded:
                continue
            elif kind == "update":
                apply("update", build_policy(loaded[index % len(loaded)], spec))
            else:
                apply("remove", loaded[index % len(loaded)])
            for request in request_list + request_list:
                assert_equivalent(sharded, reference, request)


# -- deterministic pins over the sharding mechanics --------------------------------

def permit_policy(policy_id, resource=None, subject=None, regex_resource=None):
    """A single-PERMIT policy targeting *resource* (or a regex, or any)."""
    target = Target.for_ids(subject=subject, resource=resource)
    if regex_resource is not None:
        from repro.xacml.functions import STRING_REGEXP_MATCH
        from repro.xacml.policy import Match

        target.resources = [[
            Match(
                AttributeCategory.RESOURCE,
                RESOURCE_ID,
                AttributeValue.string(regex_resource),
                function_id=STRING_REGEXP_MATCH,
            )
        ]]
    return Policy(policy_id, target=target, rules=[Rule(f"{policy_id}:r", Effect.PERMIT)])


def distinct_shard_resources(n_shards, count):
    """Resource names hashing to *count* pairwise distinct shards."""
    chosen, seen = [], set()
    i = 0
    while len(chosen) < count:
        name = f"res{i}"
        shard = shard_of(name, n_shards)
        if shard not in seen:
            seen.add(shard)
            chosen.append(name)
        i += 1
    return chosen


class TestShardingMechanics:
    def test_literal_targets_placed_by_hash_and_wildcards_replicated(self):
        store = ShardedPolicyStore(4)
        store.load(permit_policy("lit", resource="weather0"))
        store.load(permit_policy("any"))                       # any-resource
        store.load(permit_policy("rex", regex_resource="we.*"))  # non-indexable
        assert store.placement_of("lit") == frozenset({shard_of("weather0", 4)})
        assert store.placement_of("any") == frozenset(range(4))
        assert store.placement_of("rex") == frozenset(range(4))
        assert store.replicated == 2
        stats = store.stats()
        assert stats["per_shard"][shard_of("weather0", 4)] == 3
        assert sorted(p.policy_id for p in store.policies()) == ["any", "lit", "rex"]

    def test_one_logical_event_per_mutation_despite_replication(self):
        store = ShardedPolicyStore(8)
        events = []
        store.add_listener(lambda event, policy: events.append((event, policy.policy_id)))
        store.load(permit_policy("w"))            # replicated to all 8 shards
        store.update(permit_policy("w", resource="res0"))  # shrinks to 1 shard
        store.remove("w")
        assert events == [("loaded", "w"), ("updated", "w"), ("removed", "w")]
        assert store.bus.published == 3

    def test_update_migration_preserves_first_applicable_order(self):
        # p0 loads before p1, both end up on the same shard — but p0 gets
        # there *last*, via update-migration through a different shard.
        # The pinned global sequence must keep p0 first-applicable.
        n_shards = 4
        res_a, res_b = distinct_shard_resources(n_shards, 2)
        sharded, reference, apply = make_sharded_pair(n_shards)
        apply("load", permit_policy("p0", resource=res_a))
        apply("load", permit_policy("p1", resource=res_a))
        apply("update", permit_policy("p0", resource=res_b))   # migrate away
        apply("update", permit_policy("p0", resource=res_a))   # migrate back
        request = Request.simple("alice", res_a)
        assert_equivalent(sharded, reference, request)
        assert sharded.evaluate(request).policy_id == "p0"

    def test_multi_resource_request_takes_scatter_path(self):
        n_shards = 4
        res_a, res_b = distinct_shard_resources(n_shards, 2)
        sharded, reference, apply = make_sharded_pair(n_shards)
        apply("load", permit_policy("pa", resource=res_a))
        apply("load", permit_policy("pb", resource=res_b))
        request = Request.simple("alice", res_a)
        request.add(
            Attribute(AttributeCategory.RESOURCE, RESOURCE_ID, AttributeValue.string(res_b))
        )
        assert len(sharded.store.shards_for_request(request)) == 2
        assert_equivalent(sharded, reference, request)
        assert sharded.scatter_evaluations == 1
        # Scatter candidates are de-duplicated and globally ordered.
        candidates = sharded.store.policies_for(request)
        assert [p.policy_id for p in candidates] == ["pa", "pb"]

    def test_no_resource_request_routes_to_shard_zero(self):
        sharded, reference, apply = make_sharded_pair(8)
        apply("load", permit_policy("lit", resource="res1"))
        apply("load", permit_policy("any"))
        request = Request()
        request.add(
            Attribute(
                AttributeCategory.SUBJECT,
                "urn:oasis:names:tc:xacml:1.0:subject:subject-id",
                AttributeValue.string("alice"),
            )
        )
        assert sharded.store.shards_for_request(request) == (0,)
        assert_equivalent(sharded, reference, request)
        assert sharded.evaluate(request).policy_id == "any"

    def test_cross_shard_cache_invalidation_on_update_and_remove(self):
        n_shards = 4
        res_a, res_b = distinct_shard_resources(n_shards, 2)
        sharded, reference, apply = make_sharded_pair(n_shards, cache_size=32)
        apply("load", permit_policy("pa", resource=res_a, subject="alice"))
        apply("load", permit_policy("pb", resource=res_b))
        request_a = Request.simple("alice", res_a)
        request_b = Request.simple("alice", res_b)
        for request in (request_a, request_b, request_a, request_b):
            assert_equivalent(sharded, reference, request)
        assert sharded.cache_stats()["hits"] == 2
        # Re-targeting pa to res_b must flip request_a to NotApplicable
        # (replica leaves res_a's shard) and request_b to pa (arrives on
        # res_b's shard *before* pb in global order) — both served
        # correctly straight after the mutation, not from stale cache.
        apply("update", permit_policy("pa", resource=res_b, subject="alice"))
        assert_equivalent(sharded, reference, request_a)
        assert_equivalent(sharded, reference, request_b)
        assert sharded.evaluate(request_b).policy_id == "pa"
        apply("remove", "pa")
        assert_equivalent(sharded, reference, request_b)
        assert sharded.evaluate(request_b).policy_id == "pb"

    def test_combining_change_flushes_shard_caches(self):
        sharded, reference, apply = make_sharded_pair(2, cache_size=32)
        apply("load", permit_policy("pp", resource="res0"))
        deny = Policy(
            "pd",
            target=Target.for_ids(resource="res0"),
            rules=[Rule("pd:r", Effect.DENY)],
        )
        apply("load", deny)
        request = Request.simple("alice", "res0")
        assert_equivalent(sharded, reference, request)  # first-applicable → permit
        sharded.combining = "deny-overrides"
        reference.combining = "deny-overrides"
        assert_equivalent(sharded, reference, request)
        assert sharded.evaluate(request).policy_id == "pd"

    def test_store_facade_rejects_duplicates_and_unknown(self):
        store = ShardedPolicyStore(2)
        store.load(permit_policy("p", resource="res0"))
        with pytest.raises(PolicyStoreError):
            store.load(permit_policy("p", resource="res0"))
        with pytest.raises(PolicyStoreError):
            store.update(permit_policy("q", resource="res0"))
        with pytest.raises(PolicyStoreError):
            store.remove("q")
        assert "p" in store and len(store) == 1
        assert store.get("p").policy_id == "p"
