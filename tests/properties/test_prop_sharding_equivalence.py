"""Differential tests: ShardedPDP ≡ reference single-store PDP.

The sharded engine (`repro.xacml.sharding`) hash-partitions policies by
a pluggable strategy (resource keys, subject keys, or the per-policy
composite), replicates wildcard / non-indexable targets to every shard,
routes each request to the owning shard's PDP (scattering — through the
cached single-flight scatter path — when a request's partitioned values
span several shards) and fans invalidation through a bus.  All of that
must be *decision- and obligation-identical* to one
``PolicyDecisionPoint.reference()`` over a single store — across shard
counts {1, 2, 8}, every partitioner, every built-in combining
algorithm, and interleaved load/update/remove mutations, with
equivalence re-checked after every single mutation so
cache-invalidation interleavings (shard caches AND the scatter cache)
are covered.  A :class:`ProcessShardPool` over real worker processes
must match too — in-process and worker-pool are pinned against the
same reference below.

Policy/request strategies are shared with the PR 1 harness
(``test_prop_pdp_equivalence``); this module widens the request shapes
with multi-valued resources and subjects (the scatter paths) and
resource-less requests (the wildcard-only route under resource keys,
the routed fast path under subject keys).
"""

import time

import pytest
from hypothesis import given, settings, strategies as st

from test_prop_pdp_equivalence import (
    ACTIONS,
    COMBINING,
    RESOURCES,
    SUBJECTS,
    build_policy,
    mutations,
    policy_specs,
)

from repro.errors import PolicyStoreError
from repro.xacml.attributes import (
    RESOURCE_ID,
    SUBJECT_ID,
    Attribute,
    AttributeCategory,
    AttributeValue,
)
from repro.xacml.pdp import PolicyDecisionPoint
from repro.xacml.policy import Policy, Rule, Target
from repro.xacml.request import Request
from repro.xacml.response import Effect
from repro.xacml.sharding import (
    CompositeKeyPartitioner,
    ProcessShardPool,
    ShardedPDP,
    ShardedPolicyStore,
    SubjectKeyPartitioner,
    shard_of,
)
from repro.xacml.store import PolicyStore

SHARD_COUNTS = (1, 2, 8)
PARTITIONERS = ("resource", "subject", "composite")


def make_sharded_pair(
    n_shards, combining="first-applicable", cache_size=8, partitioner=None
):
    """A sharded PDP and a single-store reference PDP.

    Unlike the PR 1 harness the two sides cannot share a store, so
    ``apply`` mirrors every mutation into both.
    """
    sharded_store = ShardedPolicyStore(n_shards, partitioner=partitioner)
    sharded = ShardedPDP(sharded_store, combining, cache_size=cache_size)
    reference_store = PolicyStore()
    reference = PolicyDecisionPoint.reference(reference_store, combining)

    def apply(kind, *args):
        getattr(sharded_store, kind)(*args)
        getattr(reference_store, kind)(*args)

    return sharded, reference, apply


def assert_equivalent(sharded, reference, request):
    expected = reference.evaluate(request)
    actual = sharded.evaluate(request)
    assert actual.decision is expected.decision
    assert actual.policy_id == expected.policy_id
    assert actual.obligations == expected.obligations
    assert actual.status_message == expected.status_message


# -- request shapes ----------------------------------------------------------------
#
# The base shape plus the routing edge cases the single-store engine
# never distinguishes: several resource-id or subject-id values (may
# span shards → scatter path, on the partitioner's own dimension) and
# no resource-id at all (wildcard-only → shard 0 under resource keys,
# subject-routed under subject keys).

@st.composite
def sharding_requests(draw):
    shape = draw(
        st.sampled_from(
            ("simple", "multi-resource", "multi-subject", "no-resource")
        )
    )
    if shape == "no-resource":
        request = Request()
        request.add(
            Attribute(
                AttributeCategory.SUBJECT,
                SUBJECT_ID,
                AttributeValue.string(draw(st.sampled_from(SUBJECTS))),
            )
        )
        return request
    request = Request.simple(
        draw(st.sampled_from(SUBJECTS + ("eve",))),
        draw(st.sampled_from(RESOURCES + ("other",))),
        draw(st.sampled_from(ACTIONS)),
        environment={"clearance": draw(st.integers(min_value=0, max_value=5))},
    )
    if shape == "multi-resource":
        request.add(
            Attribute(
                AttributeCategory.RESOURCE,
                RESOURCE_ID,
                AttributeValue.string(draw(st.sampled_from(RESOURCES))),
            )
        )
    elif shape == "multi-subject":
        request.add(
            Attribute(
                AttributeCategory.SUBJECT,
                SUBJECT_ID,
                AttributeValue.string(draw(st.sampled_from(SUBJECTS))),
            )
        )
    return request


class TestShardingEquivalence:
    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    @settings(max_examples=25, deadline=None)
    @given(
        specs=st.lists(policy_specs, min_size=0, max_size=8),
        request_list=st.lists(sharding_requests(), min_size=1, max_size=6),
        combining=st.sampled_from(COMBINING),
        ops=mutations,
    )
    def test_sharded_pdp_matches_reference(
        self, n_shards, partitioner, specs, request_list, combining, ops
    ):
        sharded, reference, apply = make_sharded_pair(
            n_shards, combining, partitioner=partitioner
        )
        for i, spec in enumerate(specs):
            apply("load", build_policy(f"p{i}", spec))

        # Twice, so the second pass is served from the shard decision
        # caches (routed requests) and the scatter cache (spanning ones).
        for request in request_list + request_list:
            assert_equivalent(sharded, reference, request)

        # Interleaved mutations: equivalence must hold after *every*
        # store event, not just at the end — this is what pins the
        # shard-cache + scatter-cache invalidation and the
        # replica-migration interleavings.
        next_id = len(specs)
        for kind, index, spec in ops:
            loaded = [p.policy_id for p in reference.store.policies()]
            if kind == "load":
                apply("load", build_policy(f"p{next_id}", spec))
                next_id += 1
            elif not loaded:
                continue
            elif kind == "update":
                apply("update", build_policy(loaded[index % len(loaded)], spec))
            else:
                apply("remove", loaded[index % len(loaded)])
            for request in request_list + request_list:
                assert_equivalent(sharded, reference, request)

        # The counter invariant holds however the requests routed, and
        # the stats snapshot is pure (repeatable, not double-counting).
        stats = sharded.cache_stats()
        assert stats["evaluations"] == stats["routed"] + stats["scattered"]
        assert sharded.cache_stats() == stats


# -- deterministic pins over the sharding mechanics --------------------------------

def permit_policy(policy_id, resource=None, subject=None, regex_resource=None):
    """A single-PERMIT policy targeting *resource* (or a regex, or any)."""
    target = Target.for_ids(subject=subject, resource=resource)
    if regex_resource is not None:
        from repro.xacml.functions import STRING_REGEXP_MATCH
        from repro.xacml.policy import Match

        target.resources = [[
            Match(
                AttributeCategory.RESOURCE,
                RESOURCE_ID,
                AttributeValue.string(regex_resource),
                function_id=STRING_REGEXP_MATCH,
            )
        ]]
    return Policy(policy_id, target=target, rules=[Rule(f"{policy_id}:r", Effect.PERMIT)])


def distinct_shard_resources(n_shards, count):
    """Resource names hashing to *count* pairwise distinct shards."""
    chosen, seen = [], set()
    i = 0
    while len(chosen) < count:
        name = f"res{i}"
        shard = shard_of(name, n_shards)
        if shard not in seen:
            seen.add(shard)
            chosen.append(name)
        i += 1
    return chosen


class TestShardingMechanics:
    def test_literal_targets_placed_by_hash_and_wildcards_replicated(self):
        store = ShardedPolicyStore(4)
        store.load(permit_policy("lit", resource="weather0"))
        store.load(permit_policy("any"))                       # any-resource
        store.load(permit_policy("rex", regex_resource="we.*"))  # non-indexable
        assert store.placement_of("lit") == frozenset({shard_of("weather0", 4)})
        assert store.placement_of("any") == frozenset(range(4))
        assert store.placement_of("rex") == frozenset(range(4))
        assert store.replicated == 2
        stats = store.stats()
        assert stats["per_shard"][shard_of("weather0", 4)] == 3
        assert sorted(p.policy_id for p in store.policies()) == ["any", "lit", "rex"]

    def test_one_logical_event_per_mutation_despite_replication(self):
        store = ShardedPolicyStore(8)
        events = []
        store.add_listener(lambda event, policy: events.append((event, policy.policy_id)))
        store.load(permit_policy("w"))            # replicated to all 8 shards
        store.update(permit_policy("w", resource="res0"))  # shrinks to 1 shard
        store.remove("w")
        assert events == [("loaded", "w"), ("updated", "w"), ("removed", "w")]
        assert store.bus.published == 3

    def test_update_migration_preserves_first_applicable_order(self):
        # p0 loads before p1, both end up on the same shard — but p0 gets
        # there *last*, via update-migration through a different shard.
        # The pinned global sequence must keep p0 first-applicable.
        n_shards = 4
        res_a, res_b = distinct_shard_resources(n_shards, 2)
        sharded, reference, apply = make_sharded_pair(n_shards)
        apply("load", permit_policy("p0", resource=res_a))
        apply("load", permit_policy("p1", resource=res_a))
        apply("update", permit_policy("p0", resource=res_b))   # migrate away
        apply("update", permit_policy("p0", resource=res_a))   # migrate back
        request = Request.simple("alice", res_a)
        assert_equivalent(sharded, reference, request)
        assert sharded.evaluate(request).policy_id == "p0"

    def test_multi_resource_request_takes_scatter_path(self):
        n_shards = 4
        res_a, res_b = distinct_shard_resources(n_shards, 2)
        sharded, reference, apply = make_sharded_pair(n_shards)
        apply("load", permit_policy("pa", resource=res_a))
        apply("load", permit_policy("pb", resource=res_b))
        request = Request.simple("alice", res_a)
        request.add(
            Attribute(AttributeCategory.RESOURCE, RESOURCE_ID, AttributeValue.string(res_b))
        )
        assert len(sharded.store.shards_for_request(request)) == 2
        assert_equivalent(sharded, reference, request)
        assert sharded.scatter_evaluations == 1
        # Scatter candidates are de-duplicated and globally ordered.
        candidates = sharded.store.policies_for(request)
        assert [p.policy_id for p in candidates] == ["pa", "pb"]

    def test_no_resource_request_routes_to_shard_zero(self):
        sharded, reference, apply = make_sharded_pair(8)
        apply("load", permit_policy("lit", resource="res1"))
        apply("load", permit_policy("any"))
        request = Request()
        request.add(
            Attribute(
                AttributeCategory.SUBJECT,
                "urn:oasis:names:tc:xacml:1.0:subject:subject-id",
                AttributeValue.string("alice"),
            )
        )
        assert sharded.store.shards_for_request(request) == (0,)
        assert_equivalent(sharded, reference, request)
        assert sharded.evaluate(request).policy_id == "any"

    def test_cross_shard_cache_invalidation_on_update_and_remove(self):
        n_shards = 4
        res_a, res_b = distinct_shard_resources(n_shards, 2)
        sharded, reference, apply = make_sharded_pair(n_shards, cache_size=32)
        apply("load", permit_policy("pa", resource=res_a, subject="alice"))
        apply("load", permit_policy("pb", resource=res_b))
        request_a = Request.simple("alice", res_a)
        request_b = Request.simple("alice", res_b)
        for request in (request_a, request_b, request_a, request_b):
            assert_equivalent(sharded, reference, request)
        assert sharded.cache_stats()["hits"] == 2
        # Re-targeting pa to res_b must flip request_a to NotApplicable
        # (replica leaves res_a's shard) and request_b to pa (arrives on
        # res_b's shard *before* pb in global order) — both served
        # correctly straight after the mutation, not from stale cache.
        apply("update", permit_policy("pa", resource=res_b, subject="alice"))
        assert_equivalent(sharded, reference, request_a)
        assert_equivalent(sharded, reference, request_b)
        assert sharded.evaluate(request_b).policy_id == "pa"
        apply("remove", "pa")
        assert_equivalent(sharded, reference, request_b)
        assert sharded.evaluate(request_b).policy_id == "pb"

    def test_combining_change_flushes_shard_caches(self):
        sharded, reference, apply = make_sharded_pair(2, cache_size=32)
        apply("load", permit_policy("pp", resource="res0"))
        deny = Policy(
            "pd",
            target=Target.for_ids(resource="res0"),
            rules=[Rule("pd:r", Effect.DENY)],
        )
        apply("load", deny)
        request = Request.simple("alice", "res0")
        assert_equivalent(sharded, reference, request)  # first-applicable → permit
        sharded.combining = "deny-overrides"
        reference.combining = "deny-overrides"
        assert_equivalent(sharded, reference, request)
        assert sharded.evaluate(request).policy_id == "pd"

    def test_store_facade_rejects_duplicates_and_unknown(self):
        store = ShardedPolicyStore(2)
        store.load(permit_policy("p", resource="res0"))
        with pytest.raises(PolicyStoreError):
            store.load(permit_policy("p", resource="res0"))
        with pytest.raises(PolicyStoreError):
            store.update(permit_policy("q", resource="res0"))
        with pytest.raises(PolicyStoreError):
            store.remove("q")
        assert "p" in store and len(store) == 1
        assert store.get("p").policy_id == "p"


# -- partitioning strategies -------------------------------------------------------

class TestPartitionStrategies:
    def test_subject_keys_spread_subject_policies(self):
        # The Table-3 shape: per-subject grants over wildcard resources.
        # Resource keys would replicate all of these to every shard;
        # subject keys spread them and keep requests routed.
        store = ShardedPolicyStore(4, partitioner="subject")
        for i in range(16):
            store.load(permit_policy(f"p{i}", subject=f"user{i}"))
        stats = store.stats()
        assert stats["partitioner"] == "subject"
        assert stats["replicated"] == 0
        assert sum(stats["per_shard"]) == 16  # one replica each, no copies
        sharded = ShardedPDP(store)
        response = sharded.evaluate(Request.simple("user3", "weather0"))
        assert response.policy_id == "p3"
        assert sharded.routed_evaluations == 1
        assert sharded.scatter_evaluations == 0

    def test_subject_partitioner_replicates_resource_only_targets(self):
        store = ShardedPolicyStore(4, partitioner="subject")
        store.load(permit_policy("r-only", resource="weather0"))
        assert store.placement_of("r-only") == frozenset(range(4))
        assert store.replicated == 1

    def test_composite_picks_dimension_per_policy(self):
        store = ShardedPolicyStore(4, partitioner="composite")
        store.load(permit_policy("by-res", resource="weather0", subject="alice"))
        store.load(permit_policy("by-subj", subject="bob"))
        store.load(permit_policy("wild"))
        assert store.placement_of("by-res") == frozenset(
            {shard_of("weather0", 4)}
        )
        assert store.placement_of("by-subj") == frozenset({shard_of("bob", 4)})
        assert store.placement_of("wild") == frozenset(range(4))
        assert store.partitioner.stats() == {"resource": 1, "subject": 1}

    def test_composite_routing_narrows_with_the_population(self):
        # With only subject-placed policies live, requests route on the
        # subject value alone — single shard, no scatter — and start
        # consulting resource shards only once a resource-keyed policy
        # exists.
        store = ShardedPolicyStore(4, partitioner="composite")
        store.load(permit_policy("s", subject="alice"))
        request = Request.simple("alice", "weather0")
        assert store.shards_for_request(request) == (shard_of("alice", 4),)
        store.load(permit_policy("r", resource="weather0"))
        expected = tuple(
            sorted({shard_of("alice", 4), shard_of("weather0", 4)})
        )
        assert store.shards_for_request(request) == expected
        store.remove("r")
        assert store.shards_for_request(request) == (shard_of("alice", 4),)

    def test_composite_update_can_flip_dimension(self):
        n_shards = 4
        sharded, reference, apply = make_sharded_pair(
            n_shards, partitioner="composite"
        )
        apply("load", permit_policy("p", resource="weather0"))
        apply("update", permit_policy("p", subject="alice"))  # res → subj
        assert sharded.store.placement_of("p") == frozenset(
            {shard_of("alice", n_shards)}
        )
        assert sharded.store.partitioner.stats() == {"resource": 0, "subject": 1}
        request = Request.simple("alice", "weather0")
        assert_equivalent(sharded, reference, request)
        assert sharded.evaluate(request).policy_id == "p"

    def test_unknown_partitioner_name_rejected(self):
        with pytest.raises(PolicyStoreError):
            ShardedPolicyStore(2, partitioner="no-such-strategy")

    def test_strategy_instances_accepted(self):
        store = ShardedPolicyStore(2, partitioner=SubjectKeyPartitioner())
        assert store.partitioner.name == "subject"
        store = ShardedPolicyStore(2, partitioner=CompositeKeyPartitioner())
        assert store.partitioner.name == "composite"


# -- worker-pool parity ------------------------------------------------------------

def pool_request_set():
    """Routed, scatter, multi-subject and attribute-less shapes."""
    requests = [
        Request.simple(subject, resource)
        for subject in ("alice", "bob", "eve")
        for resource in ("weather0", "weather1", "gps0", "other")
    ]
    spanning = Request.simple("alice", "weather0")
    spanning.add(
        Attribute(
            AttributeCategory.RESOURCE, RESOURCE_ID, AttributeValue.string("gps0")
        )
    )
    requests.append(spanning)
    two_subjects = Request.simple("carol", "weather1")
    two_subjects.add(
        Attribute(
            AttributeCategory.SUBJECT, SUBJECT_ID, AttributeValue.string("dave")
        )
    )
    requests.append(two_subjects)
    no_resource = Request()
    no_resource.add(
        Attribute(
            AttributeCategory.SUBJECT, SUBJECT_ID, AttributeValue.string("bob")
        )
    )
    requests.append(no_resource)
    return requests


def pool_policy_script():
    """A mutation script covering literal, subject-keyed, wildcard and
    regex targets plus migrating updates and removals."""
    from repro.xacml.functions import STRING_REGEXP_MATCH
    from repro.xacml.policy import Match

    regex = Policy(
        "rex",
        target=Target(
            resources=[[
                Match(
                    AttributeCategory.RESOURCE,
                    RESOURCE_ID,
                    AttributeValue.string("wea.*"),
                    function_id=STRING_REGEXP_MATCH,
                )
            ]]
        ),
        rules=[Rule("rex:r", Effect.DENY)],
    )
    loads = [
        permit_policy("p0", resource="weather0"),
        permit_policy("p1", resource="weather1", subject="alice"),
        permit_policy("p2", subject="bob"),
        permit_policy("p3"),
        regex,
        permit_policy("p4", resource="gps0"),
    ]
    mutations = [
        ("update", permit_policy("p0", resource="gps0")),       # migrate
        ("update", permit_policy("p2", subject="carol")),
        ("remove", "p3"),
        ("load", permit_policy("p5", subject="dave")),
        ("update", permit_policy("p1", subject="alice")),       # res → subj
        ("remove", "rex"),
    ]
    return loads, mutations


class _BoomRequest(Request):
    """Routes normally in the parent, blows up inside the worker (the
    worker-side PDP calls ``fingerprint`` first)."""

    @classmethod
    def make(cls, resource):
        request = cls()
        request.add(
            Attribute(
                AttributeCategory.RESOURCE,
                RESOURCE_ID,
                AttributeValue.string(resource),
            )
        )
        return request

    def fingerprint(self):
        raise RuntimeError("injected worker-side failure")


class TestWorkerPoolParity:
    """ProcessShardPool ≡ reference PDP ≡ in-process ShardedPDP, across
    partitioners and shard counts, re-checked after every mutation that
    fans out to the workers."""

    @pytest.mark.parametrize("partitioner", ("resource", "composite"))
    @pytest.mark.parametrize("n_shards", (1, 2, 4))
    def test_pool_matches_reference_through_mutations(
        self, n_shards, partitioner
    ):
        loads, script = pool_policy_script()
        store = ShardedPolicyStore(n_shards, partitioner=partitioner)
        reference_store = PolicyStore()
        reference = PolicyDecisionPoint.reference(reference_store)
        for policy in loads:
            store.load(policy)
            reference_store.load(policy)
        requests = pool_request_set()
        with ProcessShardPool(store, batch_size=4) as pool:
            got = pool.evaluate_many(requests + requests)  # 2nd pass cached
            expected = [reference.evaluate(r) for r in requests + requests]
            for actual, want in zip(got, expected):
                assert actual.decision is want.decision
                assert actual.policy_id == want.policy_id
                assert actual.obligations == want.obligations
            for kind, payload in script:
                getattr(store, kind)(payload)
                getattr(reference_store, kind)(payload)
                got = pool.evaluate_many(requests)
                expected = [reference.evaluate(r) for r in requests]
                for actual, want in zip(got, expected):
                    assert actual.decision is want.decision
                    assert actual.policy_id == want.policy_id
            stats = pool.cache_stats()
            assert stats["evaluations"] == stats["routed"] + stats["scattered"]
            assert stats["hits"] > 0  # the worker caches really engaged

    def test_pool_matches_in_process_sharded_pdp(self):
        loads, script = pool_policy_script()
        pool_store = ShardedPolicyStore(4)
        inproc_store = ShardedPolicyStore(4)
        inproc = ShardedPDP(inproc_store)
        for policy in loads:
            pool_store.load(policy)
            inproc_store.load(policy)
        requests = pool_request_set()
        with ProcessShardPool(pool_store) as pool:
            for kind, payload in script:
                getattr(pool_store, kind)(payload)
                getattr(inproc_store, kind)(payload)
            got = pool.evaluate_many(requests)
            expected = [inproc.evaluate(r) for r in requests]
            for actual, want in zip(got, expected):
                assert actual.decision is want.decision
                assert actual.policy_id == want.policy_id
            # Same routing split: the pool routes with the same store.
            assert pool.routed_evaluations == inproc.routed_evaluations
            assert pool.scatter_evaluations == inproc.scatter_evaluations

    def test_pool_single_evaluate_and_close_semantics(self):
        store = ShardedPolicyStore(2)
        store.load(permit_policy("p", resource="weather0"))
        pool = ProcessShardPool(store)
        response = pool.evaluate(Request.simple("alice", "weather0"))
        assert response.policy_id == "p"
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(PolicyStoreError):
            pool.evaluate_many([Request.simple("alice", "weather0")])
        # A closed pool stops observing the store: mutations still work.
        store.load(permit_policy("q", resource="weather1"))
        assert "q" in store

    def test_worker_error_does_not_desync_the_protocol(self):
        # A request that fails *inside* the worker (fingerprint raises
        # during the worker-side evaluate) surfaces as an error — and
        # the very next call still returns correct, correctly-matched
        # responses: batch tags are never reused and every expected
        # response is drained before the error propagates.
        store = ShardedPolicyStore(2)
        store.load(permit_policy("p", resource="weather0"))
        good = [Request.simple(f"u{i}", "weather0") for i in range(6)]
        with ProcessShardPool(store, batch_size=2) as pool:
            with pytest.raises(PolicyStoreError, match="failed on"):
                pool.evaluate_many(good[:3] + [_BoomRequest.make("weather0")])
            responses = pool.evaluate_many(good)
            assert [r.policy_id for r in responses] == ["p"] * 6

    def test_rejected_mutation_fanout_heals_the_worker_not_the_pool(self):
        # A worker that rejects its mirrored op has a diverged replica.
        # PR 6 poisoned the whole pool; supervision instead kills just
        # that worker and rebuilds it from authoritative parent state —
        # the pool object stays usable throughout, no reconstruction.
        store = ShardedPolicyStore(2)
        store.load(permit_policy("p", resource="weather0"))
        request = Request.simple("alice", "weather0")
        with ProcessShardPool(store, restart_backoff=0.01) as pool:
            # Drive the shard listener with an op the worker must
            # reject (its mirrored store has no such policy).  The
            # fan-out must not raise: the store already applied its
            # side, and the worker repair is supervision's job.
            pool._on_shard_op(0, "remove", "no-such-policy", None)
            assert not pool._closed
            deadline = time.perf_counter() + 15.0
            while (
                pool.health()["worker_restarts"] < 1
                and time.perf_counter() < deadline
            ):
                time.sleep(0.01)
            assert pool.health()["worker_restarts"] >= 1
            # The same pool serves correct decisions again (fallback
            # covers any residual restart window), and the store stayed
            # consistent and fully usable.
            assert pool.evaluate(request).policy_id == "p"
            store.load(permit_policy("q", resource="weather1"))
            assert "q" in store and "p" in store
            assert pool.evaluate(request).policy_id == "p"

    def test_sharded_pdp_rejects_partitioner_with_existing_store(self):
        store = ShardedPolicyStore(2)
        with pytest.raises(PolicyStoreError):
            ShardedPDP(store, partitioner="subject")

    def test_pool_cache_stats_pure_snapshot_across_close_cycles(self):
        # Re-registering a fresh pool over the same store must not
        # double-count anything: each snapshot aggregates only the live
        # workers' counters.
        store = ShardedPolicyStore(2)
        store.load(permit_policy("p", resource="weather0"))
        request = Request.simple("alice", "weather0")
        with ProcessShardPool(store) as pool:
            pool.evaluate_many([request, request])
            first = pool.cache_stats()
            assert first["hits"] == 1 and first["misses"] == 1
            assert pool.cache_stats() == first
        with ProcessShardPool(store) as pool:
            pool.evaluate_many([request, request])
            stats = pool.cache_stats()
            assert stats["hits"] == 1 and stats["misses"] == 1
            assert stats["evaluations"] == 2
